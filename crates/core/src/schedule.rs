//! Analytic schedule costing: estimated parallel response time of a
//! [`ParallelPlan`], in the §4.3 cost unit ("one action on one tuple").
//!
//! Phase 1 minimizes *total* work, which cannot rank parallelizations —
//! every regular-query tree costs 44N. What distinguishes the four
//! strategies is the *schedule*: how per-operation work divides over
//! processors, how pipelines overlap, and the two §3.5 overheads (serial
//! process startup, per-stream handshakes). This module estimates a
//! makespan for any plan from exactly those ingredients, so a planner can
//! cost all four strategies and pick the cheapest — without running the
//! discrete-event simulator (which lives downstream in `mj-sim` and would
//! invert the crate layering).
//!
//! The model is deliberately as crude as the paper's cost function: per-op
//! time is `work / degree`, a live pipeline lets a consumer finish one
//! *tail* after its slowest producer, process initializations are strictly
//! serial (§2.2), and every point-to-point stream costs one handshake at
//! each endpoint. "Parallelization itself perturbs true costs, so
//! precision would be illusory."

use mj_relalg::JoinAlgorithm;

use crate::plan_ir::{OperandSource, ParallelPlan};
use mj_plan::cost::TreeCosts;

/// Coefficients of the schedule model, all in §4.3 cost units. Defaults
/// are the `mj-sim` machine constants divided by its per-tuple action cost
/// (0.45 ms), so analytic estimates and simulated times agree in shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleModel {
    /// Serial scheduler cost to initialize one operation process
    /// (sim: t_init 12 ms / 0.45 ms).
    pub startup_per_process: f64,
    /// Handshake per point-to-point tuple stream, charged to each endpoint
    /// instance (sim: t_handshake 15 ms / 0.45 ms).
    pub handshake_per_stream: f64,
    /// Work multiplier of the symmetric pipelining join (inserts *and*
    /// probes every tuple).
    pub pipelining_work_factor: f64,
    /// Fraction of a consumer's own work that trails its slowest live
    /// producer: a pipelined consumer cannot finish before the last input
    /// tuple arrives, plus the time to process the final batch.
    pub pipeline_tail: f64,
}

impl Default for ScheduleModel {
    fn default() -> Self {
        ScheduleModel {
            startup_per_process: 12.0e-3 / 0.45e-3,
            handshake_per_stream: 15.0e-3 / 0.45e-3,
            pipelining_work_factor: 1.4,
            pipeline_tail: 0.1,
        }
    }
}

impl ScheduleModel {
    /// A model with zero overheads: pure `work / degree` with pipeline
    /// overlap — the idealized diagrams of Figs. 3–7.
    pub fn idealized() -> Self {
        ScheduleModel {
            startup_per_process: 0.0,
            handshake_per_stream: 0.0,
            pipelining_work_factor: 1.0,
            pipeline_tail: 0.0,
        }
    }
}

/// The estimated schedule of one plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleEstimate {
    /// Estimated response time in cost units (the planner's objective).
    pub makespan: f64,
    /// Serial startup spent initializing operation processes.
    pub startup: f64,
    /// Total handshake cost over all tuple streams (coordination driver).
    pub coordination: f64,
    /// Sum of per-join work (phase 1's objective, for reference).
    pub total_work: f64,
    /// Estimated finish time per op (indexed by op id).
    pub per_op_finish: Vec<f64>,
}

/// Estimated extra makespan of one post-join pipeline stage (residual
/// filter, partitioned aggregation, limit) fed by a live stream from
/// `producers` instances: the stage's own per-instance work trails the
/// producer's finish by the pipeline-tail fraction, plus its serial
/// process startups and per-stream handshakes — the same ingredients the
/// join schedule is costed from, so filter selectivities folded into
/// `input_card` flow straight into the planner's objective.
pub fn stage_tail_cost(
    input_card: f64,
    degree: usize,
    producers: usize,
    model: &ScheduleModel,
) -> f64 {
    let degree = degree.max(1) as f64;
    let per_instance_work = input_card.max(0.0) / degree;
    let streams_per_instance = producers as f64;
    model.pipeline_tail * per_instance_work
        + streams_per_instance * model.handshake_per_stream
        + degree * model.startup_per_process
}

/// Estimates the makespan of `plan` given the per-join work in `costs`
/// (from [`mj_plan::cost::tree_costs`] over the same tree).
pub fn estimate_schedule(
    plan: &ParallelPlan,
    costs: &TreeCosts,
    model: &ScheduleModel,
) -> ScheduleEstimate {
    let n = plan.ops.len();
    let mut finish = vec![0.0f64; n];
    // The scheduler initializes processes one at a time (§2.2): op i's
    // instances may not start before every earlier-submitted op's
    // instances (plus its own) have been initialized.
    let mut init_done = 0.0f64;
    let mut coordination = 0.0f64;

    // Who consumes each op's output, and how (for handshake accounting).
    let mut consumer_degree = vec![0usize; n];
    for op in &plan.ops {
        for operand in [&op.left, &op.right] {
            if let Some(from) = operand.producer() {
                consumer_degree[from] = op.degree();
            }
        }
    }

    for op in &plan.ops {
        let degree = op.degree().max(1) as f64;
        init_done += op.degree() as f64 * model.startup_per_process;

        let algo_factor = match op.algorithm {
            JoinAlgorithm::Pipelining => model.pipelining_work_factor,
            JoinAlgorithm::Simple => 1.0,
        };
        // Per-instance handshakes: one per stream this instance touches
        // (degree-of-peer streams per remote operand, plus its output fan).
        let mut streams_per_instance = consumer_degree[op.id] as f64;
        for operand in [&op.left, &op.right] {
            if let Some(from) = operand.producer() {
                streams_per_instance += plan.ops[from].degree() as f64;
            }
        }
        coordination += streams_per_instance * degree * model.handshake_per_stream;

        let t_op = costs.per_join[op.join] / degree * algo_factor
            + streams_per_instance * model.handshake_per_stream;

        // Earliest start: scheduler init, plus completed dependencies.
        let mut start = init_done;
        for &d in &op.start_after {
            start = start.max(finish[d]);
        }
        let mut t_finish = start + t_op;
        // A live pipeline: the consumer trails its slowest producer.
        for operand in [&op.left, &op.right] {
            if let OperandSource::Stream { from } = operand {
                t_finish = t_finish.max(finish[*from] + model.pipeline_tail * t_op);
            }
        }
        finish[op.id] = t_finish;
    }

    ScheduleEstimate {
        makespan: finish.iter().fold(0.0f64, |a, &b| a.max(b)),
        startup: init_done,
        coordination,
        total_work: costs.total,
        per_op_finish: finish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorInput};
    use crate::strategy::Strategy;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::shapes::{build, Shape};

    fn estimate(shape: Shape, strategy: Strategy, n: u64, procs: usize) -> ScheduleEstimate {
        let tree = build(shape, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, procs);
        let plan = generate(strategy, &input).unwrap();
        estimate_schedule(&plan, &costs, &ScheduleModel::default())
    }

    #[test]
    fn idealized_sp_is_work_over_processors() {
        let tree = build(Shape::WideBushy, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 1000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, 20);
        let plan = generate(Strategy::SP, &input).unwrap();
        let est = estimate_schedule(&plan, &costs, &ScheduleModel::idealized());
        // SP runs joins one after another on all processors: the idealized
        // makespan is exactly total work / processors.
        assert!((est.makespan - costs.total / 20.0).abs() < 1e-6);
        assert_eq!(est.startup, 0.0);
        assert_eq!(est.coordination, 0.0);
    }

    #[test]
    fn sp_startup_overhead_bites_at_scale() {
        // The paper's central SP finding: startup (serial process inits,
        // 10 joins x 80 processors = 800 of them) overwhelms the shrinking
        // per-join work, so more processors eventually *hurt*.
        let at_20 = estimate(Shape::WideBushy, Strategy::SP, 5000, 20).makespan;
        let at_80 = estimate(Shape::WideBushy, Strategy::SP, 5000, 80).makespan;
        assert!(
            at_80 > at_20,
            "SP must degrade 20 -> 80 procs at 5K: {at_20} vs {at_80}"
        );
    }

    #[test]
    fn fp_beats_sp_on_bushy_trees_at_scale() {
        let sp = estimate(Shape::WideBushy, Strategy::SP, 40_000, 80).makespan;
        let fp = estimate(Shape::WideBushy, Strategy::FP, 40_000, 80).makespan;
        assert!(fp < sp, "FP {fp} must beat SP {sp} on a wide bushy tree");
    }

    #[test]
    fn pipelined_consumer_trails_its_producer() {
        let tree = build(Shape::RightLinear, 3).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 1000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, 4);
        let plan = generate(Strategy::FP, &input).unwrap();
        let est = estimate_schedule(&plan, &costs, &ScheduleModel::idealized());
        // Ops are topologically ordered: op 1 consumes op 0's stream.
        assert!(est.per_op_finish[1] > est.per_op_finish[0]);
        assert_eq!(est.total_work, costs.total);
    }

    #[test]
    fn makespan_is_finite_and_positive_for_all_strategies() {
        for strategy in Strategy::ALL {
            for shape in Shape::ALL {
                let est = estimate(shape, strategy, 1000, 10);
                assert!(est.makespan.is_finite() && est.makespan > 0.0, "{strategy}");
            }
        }
    }
}
