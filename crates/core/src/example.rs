//! The paper's running example: the 5-way join tree of Fig. 2.
//!
//! Five relations, four joins. The joins are labeled with their *relative
//! work*: the top join has weight 1, the join below it weight 5 ("the
//! second join operation from the top needs five times the computation
//! time of the top join operation"), and the two bottom joins weights 3
//! and 4. Figures 3, 4, 6 and 7 show idealized 10-processor utilization
//! diagrams for this tree under SP, SE, RD and FP; the reproduction
//! regenerates them from this module plus the zero-overhead simulator.

use std::collections::HashMap;

use mj_plan::tree::{JoinTree, NodeId};

/// Builds the Fig. 2 example tree:
///
/// ```text
///        J1 (weight 1)
///       /  \
///     Ra    J5 (weight 5)
///          /  \
///        J4    J3 (weight 3)
///       /  \     \
///     Rb    Rc   Rd, Re
/// ```
///
/// i.e. `J1 = Ra ⋈ J5`, `J5 = J4 ⋈ J3`, `J4 = Rb ⋈ Rc`, `J3 = Rd ⋈ Re`.
/// This orientation reproduces every schedule the paper draws: SP runs
/// 4, 3, 5, 1 sequentially (Fig. 3); SE runs {3 ∥ 4}, then 5, then 1
/// (Fig. 4); RD finds the segments `[4]` and `[3, 5, 1]` (Fig. 6); FP runs
/// everything at once (Fig. 7).
pub fn example_tree() -> (JoinTree, ExampleJoins) {
    let mut b = JoinTree::builder();
    let ra = b.leaf("Ra");
    let rb = b.leaf("Rb");
    let rc = b.leaf("Rc");
    let rd = b.leaf("Rd");
    let re = b.leaf("Re");
    let j4 = b.join(rb, rc);
    let j3 = b.join(rd, re);
    let j5 = b.join(j4, j3);
    let j1 = b.join(ra, j5);
    let tree = b.build(j1).expect("example tree is valid");
    (tree, ExampleJoins { j1, j3, j4, j5 })
}

/// Node ids of the example joins, named as in the paper.
#[derive(Clone, Copy, Debug)]
pub struct ExampleJoins {
    /// Top join (weight 1).
    pub j1: NodeId,
    /// Lower-right join (weight 3).
    pub j3: NodeId,
    /// Lower-left join (weight 4).
    pub j4: NodeId,
    /// Middle join (weight 5).
    pub j5: NodeId,
}

impl ExampleJoins {
    /// The paper's label (1, 3, 4, 5) for a join node id, if it is one of
    /// the example joins.
    pub fn label(&self, node: NodeId) -> Option<u32> {
        if node == self.j1 {
            Some(1)
        } else if node == self.j3 {
            Some(3)
        } else if node == self.j4 {
            Some(4)
        } else if node == self.j5 {
            Some(5)
        } else {
            None
        }
    }
}

/// The relative work of each example join, keyed by node id — the numbers
/// printed next to the joins in Fig. 2. (The labels double as weights.)
pub fn example_weights() -> HashMap<NodeId, f64> {
    let (_, joins) = example_tree();
    HashMap::from([
        (joins.j1, 1.0),
        (joins.j3, 3.0),
        (joins.j4, 4.0),
        (joins.j5, 5.0),
    ])
}

/// Per-node cardinalities that make each join's *consumed volume* (the sum
/// of its operand cardinalities — what the backends actually charge time
/// for) proportional to its Fig. 2 label, in units of `scale` tuples.
///
/// The labels fix four equations over the operand sizes:
///
/// ```text
/// J4:  |Rb| + |Rc|          = 4        Rb = Rc = 2
/// J3:  |Rd| + |Re|          = 3        Rd = Re = 1.5
/// J5:  |out4| + |out3|      = 5        out4 = out3 = 2.5
/// J1:  |Ra| + |out5|        = 1        Ra = out5 = 0.5
/// ```
///
/// With these cardinalities the zero-overhead simulator regenerates the
/// paper's idealized utilization diagrams: SP's phases have widths 4:3:5:1
/// (Fig. 3) and FP's per-join durations are nearly equal because the
/// allocator hands each join processors proportional to its weight
/// (Fig. 7).
pub fn example_cards(scale: u64) -> Vec<u64> {
    let (tree, joins) = example_tree();
    let mut cards = vec![0u64; tree.nodes().len()];
    let u = |x: f64| (x * scale as f64).round() as u64;
    let (ra, _) = tree.children(joins.j1).expect("J1 is a join");
    let (rb, rc) = tree.children(joins.j4).expect("J4 is a join");
    let (rd, re) = tree.children(joins.j3).expect("J3 is a join");
    cards[ra] = u(0.5);
    cards[rb] = u(2.0);
    cards[rc] = u(2.0);
    cards[rd] = u(1.5);
    cards[re] = u(1.5);
    cards[joins.j4] = u(2.5);
    cards[joins.j3] = u(2.5);
    cards[joins.j5] = u(0.5);
    cards[joins.j1] = u(0.5);
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_plan::segment::segments;

    #[test]
    fn tree_shape_matches_figure_2() {
        let (tree, joins) = example_tree();
        assert_eq!(tree.join_count(), 4);
        assert_eq!(tree.leaf_count(), 5);
        assert_eq!(tree.root(), joins.j1);
        let (l, r) = tree.children(joins.j1).unwrap();
        assert!(tree.is_leaf(l), "J1's left operand is the base relation Ra");
        assert_eq!(r, joins.j5);
        let (l5, r5) = tree.children(joins.j5).unwrap();
        assert_eq!(l5, joins.j4);
        assert_eq!(r5, joins.j3);
    }

    #[test]
    fn segmentation_matches_figure_6() {
        let (tree, joins) = example_tree();
        let seg = segments(&tree);
        assert_eq!(seg.segments.len(), 2);
        // The root segment pipelines 3 -> 5 -> 1; J4 is its own segment.
        let root_seg = seg.seg_of[joins.j1].unwrap();
        assert_eq!(
            seg.segments[root_seg].joins,
            vec![joins.j3, joins.j5, joins.j1]
        );
        let j4_seg = seg.seg_of[joins.j4].unwrap();
        assert_eq!(seg.segments[j4_seg].joins, vec![joins.j4]);
        // J4's segment runs first (Fig. 6: all processors on join 4).
        assert_eq!(seg.waves(), vec![vec![j4_seg], vec![root_seg]]);
    }

    #[test]
    fn weights_match_labels() {
        let (_, joins) = example_tree();
        let w = example_weights();
        assert_eq!(w[&joins.j1], 1.0);
        assert_eq!(w[&joins.j3], 3.0);
        assert_eq!(w[&joins.j4], 4.0);
        assert_eq!(w[&joins.j5], 5.0);
        assert_eq!(joins.label(joins.j5), Some(5));
        assert_eq!(joins.label(0), None, "leaves have no label");
    }

    #[test]
    fn example_cards_reproduce_the_weights() {
        // A join's consumed volume (left card + right card) must be
        // proportional to its Fig. 2 label.
        let (tree, joins) = example_tree();
        let cards = example_cards(1000);
        let consumed = |j: NodeId| {
            let (l, r) = tree.children(j).unwrap();
            cards[l] + cards[r]
        };
        assert_eq!(consumed(joins.j1), 1000);
        assert_eq!(consumed(joins.j3), 3000);
        assert_eq!(consumed(joins.j4), 4000);
        assert_eq!(consumed(joins.j5), 5000);
    }
}
