//! The four parallel execution strategies (§3).

use serde::{Deserialize, Serialize};
use std::fmt;

use mj_relalg::JoinAlgorithm;

/// A parallelization strategy for a multi-join query tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Sequential Parallel: joins run one after another, each on *all*
    /// processors. No inter-operator parallelism, no pipelining, no cost
    /// function needed. (§3.1)
    SP,
    /// Synchronous Execution: independent subtrees run concurrently on
    /// processor subsets sized proportionally to subtree work, so that
    /// operands become ready at the same time \[CYW92\]. (§3.2)
    SE,
    /// Segmented Right-Deep: the tree is decomposed into right-deep
    /// segments; within a segment all hash tables build concurrently and a
    /// probe pipeline runs bottom-up; independent segments run concurrently
    /// \[CLY92\]. (§3.3)
    RD,
    /// Full Parallel: every join gets a private processor subset sized
    /// proportionally to its work and all joins run at once, pipelining
    /// along both operands via the pipelining hash join \[WiA91\]. (§3.4)
    FP,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [Strategy::SP, Strategy::SE, Strategy::RD, Strategy::FP];

    /// The hash-join algorithm the strategy mandates (§3): FP needs the
    /// pipelining join; the others use the simple join.
    pub fn join_algorithm(&self) -> JoinAlgorithm {
        match self {
            Strategy::FP => JoinAlgorithm::Pipelining,
            _ => JoinAlgorithm::Simple,
        }
    }

    /// Whether the strategy requires a cost function to allocate
    /// processors. "SP … does not need a cost function to estimate the
    /// costs of the individual join operations." (§3.1)
    pub fn needs_cost_function(&self) -> bool {
        !matches!(self, Strategy::SP)
    }

    /// Short name as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::SP => "SP",
            Strategy::SE => "SE",
            Strategy::RD => "RD",
            Strategy::FP => "FP",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_match_the_paper() {
        assert_eq!(Strategy::SP.join_algorithm(), JoinAlgorithm::Simple);
        assert_eq!(Strategy::SE.join_algorithm(), JoinAlgorithm::Simple);
        assert_eq!(Strategy::RD.join_algorithm(), JoinAlgorithm::Simple);
        assert_eq!(Strategy::FP.join_algorithm(), JoinAlgorithm::Pipelining);
    }

    #[test]
    fn only_sp_skips_the_cost_function() {
        assert!(!Strategy::SP.needs_cost_function());
        assert!(Strategy::SE.needs_cost_function());
        assert!(Strategy::RD.needs_cost_function());
        assert!(Strategy::FP.needs_cost_function());
    }

    #[test]
    fn labels() {
        let labels: Vec<&str> = Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["SP", "SE", "RD", "FP"]);
        assert_eq!(Strategy::FP.to_string(), "FP");
    }
}
