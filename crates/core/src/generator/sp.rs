//! Sequential Parallel (SP) plan generation (§3.1).
//!
//! "The constituent joins are executed sequentially in parallel, using all
//! available processors for each join operation." No inter-operator
//! parallelism, no pipelining, and no cost function: every join gets the
//! whole machine, one after another, in bottom-up dependency order.
//! Intermediates are materialized and refragmented between joins — which is
//! exactly what makes SP pay `joins × P` process startups and `P × P`
//! streams per redistribution at scale.

use mj_relalg::Result;

use crate::plan_ir::{ParallelPlan, ProcId};
use crate::strategy::Strategy;

use super::{GeneratorInput, PlanBuilder};

pub(crate) fn generate(input: &GeneratorInput<'_>) -> Result<ParallelPlan> {
    let mut b = PlanBuilder::new(input);
    let all_procs: Vec<ProcId> = (0..input.processors).collect();
    let algorithm = Strategy::SP.join_algorithm();

    let mut prev = None;
    for join in input.tree.joins_bottom_up() {
        let (l, r) = input.tree.children(join).expect("join node");
        // Children are materialized (never pipelined) under SP.
        let left = b.operand(l, false);
        let right = b.operand(r, false);
        // A strict chain: each join starts only when the previous finished.
        let start_after = prev.map(|p| vec![p]).unwrap_or_default();
        let id = b.push_op(join, algorithm, all_procs.clone(), left, right, start_after);
        prev = Some(id);
    }
    Ok(b.finish(Strategy::SP))
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::super::{generate as gen, GeneratorInput};
    use crate::plan_ir::OperandSource;
    use crate::strategy::Strategy;
    use mj_plan::shapes::Shape;
    use mj_relalg::JoinAlgorithm;

    #[test]
    fn every_join_uses_all_processors_sequentially() {
        let (tree, cards, costs) = fixture(Shape::LeftLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 80);
        let plan = gen(Strategy::SP, &input).unwrap();
        assert_eq!(plan.ops.len(), 9);
        for (i, op) in plan.ops.iter().enumerate() {
            assert_eq!(op.degree(), 80);
            assert_eq!(op.algorithm, JoinAlgorithm::Simple);
            if i == 0 {
                assert!(op.start_after.is_empty());
            } else {
                assert_eq!(op.start_after, vec![i - 1], "strict chain");
            }
            // SP never pipelines.
            assert!(!matches!(op.left, OperandSource::Stream { .. }));
            assert!(!matches!(op.right, OperandSource::Stream { .. }));
        }
    }

    #[test]
    fn startup_and_stream_counts_match_the_paper() {
        // §4.4: "for the 80 processor case, 800 operation processes need to
        // be initialized" (10-join tree in the paper counts the store op;
        // our 9 joins x 80 = 720) and "the refragmentation of one operand
        // generates 6400 tuple streams".
        let (tree, cards, costs) = fixture(Shape::LeftLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 80);
        let plan = gen(Strategy::SP, &input).unwrap();
        let stats = plan.stats();
        assert_eq!(stats.operation_processes, 9 * 80);
        // Left-linear: 8 joins consume one materialized operand each.
        assert_eq!(stats.tuple_streams, 8 * 80 * 80);
        assert_eq!(stats.pipeline_edges, 0);
    }

    #[test]
    fn shape_insensitive_process_counts() {
        // SP's structure is the same for every shape: the paper observes
        // its curves barely move across Figs. 9-13.
        let mut counts = Vec::new();
        for shape in Shape::ALL {
            let (tree, cards, costs) = fixture(shape, 10, 100);
            let input = GeneratorInput::new(&tree, &cards, &costs, 40);
            let plan = gen(Strategy::SP, &input).unwrap();
            counts.push(plan.stats().operation_processes);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn works_on_one_processor() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 5, 10);
        let input = GeneratorInput::new(&tree, &cards, &costs, 1);
        let plan = gen(Strategy::SP, &input).unwrap();
        assert!(plan.ops.iter().all(|op| op.degree() == 1));
        crate::validate::validate_plan(&plan).unwrap();
    }
}
