//! Synchronous Execution (SE) plan generation (§3.2, \[CYW92\]).
//!
//! "The idea is to execute independent subtrees in the join tree
//! independently in parallel. A join operation is started only after its
//! operands are ready. … allocating a number of processors to a subtree
//! that produces an operand, that is proportional to the total amount of
//! work in the subtree. In this way, operands are supposed to be available
//! at the same time so that no processors have to wait."
//!
//! For linear trees there are no independent subtrees and SE degenerates to
//! SP — the coincidence visible in Figs. 9 and 13.

use mj_plan::tree::NodeId;
use mj_relalg::Result;

use crate::plan_ir::{OpId, ParallelPlan, ProcId};
use crate::strategy::Strategy;

use super::{allocate_groups, GeneratorInput, PlanBuilder};

pub(crate) fn generate(input: &GeneratorInput<'_>) -> Result<ParallelPlan> {
    let mut b = PlanBuilder::new(input);
    // Total work per subtree, used to balance sibling allocations.
    let subtree_work = compute_subtree_work(input);
    let pool: Vec<ProcId> = (0..input.processors).collect();
    schedule(
        &mut b,
        input.tree.root(),
        &pool,
        &subtree_work,
        &mut Vec::new(),
    )?;
    Ok(b.finish(Strategy::SE))
}

fn compute_subtree_work(input: &GeneratorInput<'_>) -> Vec<f64> {
    let tree = input.tree;
    let mut work = vec![0.0; tree.nodes().len()];
    for (id, _) in tree.nodes().iter().enumerate() {
        if let Some((l, r)) = tree.children(id) {
            work[id] = work[l] + work[r] + input.costs.per_join[id];
        }
    }
    work
}

/// Schedules the subtree rooted at `node` on `pool`, returning the op that
/// produces its result (None for leaves). `barrier` carries ops that must
/// precede anything scheduled by this call (used when sibling subtrees are
/// forced sequential on a too-small pool).
fn schedule(
    b: &mut PlanBuilder<'_>,
    node: NodeId,
    pool: &[ProcId],
    subtree_work: &[f64],
    barrier: &mut Vec<OpId>,
) -> Result<Option<OpId>> {
    let Some((l, r)) = b.input.tree.children(node) else {
        return Ok(None); // leaf
    };
    let l_join = !b.input.tree.is_leaf(l);
    let r_join = !b.input.tree.is_leaf(r);

    let mut deps = barrier.clone();
    match (l_join, r_join) {
        (false, false) => {}
        (true, false) => {
            if let Some(op) = schedule(b, l, pool, subtree_work, barrier)? {
                deps.push(op);
            }
        }
        (false, true) => {
            if let Some(op) = schedule(b, r, pool, subtree_work, barrier)? {
                deps.push(op);
            }
        }
        (true, true) => {
            // Independent subtrees: split the pool proportionally to their
            // total work [CYW92]. With a single processor in the pool the
            // subtrees run sequentially instead.
            if pool.len() >= 2 {
                let (groups, _) =
                    allocate_groups(&[subtree_work[l], subtree_work[r]], pool, false)?;
                if let Some(op) = schedule(b, l, &groups[0], subtree_work, barrier)? {
                    deps.push(op);
                }
                if let Some(op) = schedule(b, r, &groups[1], subtree_work, barrier)? {
                    deps.push(op);
                }
            } else {
                let mut seq_barrier = barrier.clone();
                if let Some(op) = schedule(b, l, pool, subtree_work, &mut seq_barrier)? {
                    seq_barrier.push(op);
                    deps.push(op);
                }
                if let Some(op) = schedule(b, r, pool, subtree_work, &mut seq_barrier)? {
                    deps.push(op);
                }
            }
        }
    }

    // The join itself runs on the whole pool of this call once its operand
    // subtrees are done. Never pipelined: operands are materialized.
    let left = b.operand(l, false);
    let right = b.operand(r, false);
    let algorithm = Strategy::SE.join_algorithm();
    let id = b.push_op(node, algorithm, pool.to_vec(), left, right, deps);
    Ok(Some(id))
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::super::{generate as gen, GeneratorInput};
    use crate::strategy::Strategy;
    use mj_plan::shapes::Shape;

    #[test]
    fn linear_trees_degenerate_to_sp() {
        for shape in [Shape::LeftLinear, Shape::RightLinear] {
            let (tree, cards, costs) = fixture(shape, 10, 100);
            let input = GeneratorInput::new(&tree, &cards, &costs, 40);
            let se = gen(Strategy::SE, &input).unwrap();
            let sp = gen(Strategy::SP, &input).unwrap();
            // Same structure: every op on all processors, strictly chained.
            assert_eq!(se.ops.len(), sp.ops.len(), "{shape}");
            for op in &se.ops {
                assert_eq!(op.degree(), 40, "{shape}");
            }
            assert_eq!(
                se.stats().operation_processes,
                sp.stats().operation_processes
            );
            assert_eq!(se.stats().pipeline_edges, 0);
        }
    }

    #[test]
    fn wide_bushy_splits_processors_between_independent_subtrees() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 40);
        let plan = gen(Strategy::SE, &input).unwrap();
        crate::validate::validate_plan(&plan).unwrap();
        // The root's two child subtrees must be scheduled on disjoint,
        // smaller pools.
        let (l, r) = tree.children(tree.root()).unwrap();
        let l_op = plan.op_for_join(l).unwrap();
        let r_op = plan.op_for_join(r).unwrap();
        assert!(l_op.degree() < 40 && r_op.degree() < 40);
        assert!(
            l_op.procs.iter().all(|p| !r_op.procs.contains(p)),
            "disjoint pools"
        );
        // The root join runs on everything.
        assert_eq!(plan.sink().degree(), 40);
    }

    #[test]
    fn allocation_tracks_subtree_work() {
        // Root of the wide bushy tree over 10 relations: left subtree holds
        // 8 relations (7 joins), right subtree 2 relations (1 join); the
        // left pool must be substantially larger.
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 40);
        let plan = gen(Strategy::SE, &input).unwrap();
        let (l, r) = tree.children(tree.root()).unwrap();
        let l_deg = plan.op_for_join(l).unwrap().degree();
        let r_deg = plan.op_for_join(r).unwrap().degree();
        assert!(l_deg > 2 * r_deg, "left {l_deg} vs right {r_deg}");
    }

    #[test]
    fn single_processor_falls_back_to_sequential_siblings() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 6, 10);
        let input = GeneratorInput::new(&tree, &cards, &costs, 1);
        let plan = gen(Strategy::SE, &input).unwrap();
        crate::validate::validate_plan(&plan).unwrap();
        assert_eq!(plan.ops.len(), 5);
    }

    #[test]
    fn join_starts_only_after_operands_ready() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 20);
        let plan = gen(Strategy::SE, &input).unwrap();
        for op in &plan.ops {
            for operand in [&op.left, &op.right] {
                if let Some(p) = operand.producer() {
                    assert!(
                        op.start_after.contains(&p),
                        "op{} does not wait for producer op{p}",
                        op.id
                    );
                }
            }
        }
    }
}
