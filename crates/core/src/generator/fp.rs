//! Full Parallel (FP) plan generation (§3.4, [WiA91, WAF91]).
//!
//! "The idea behind this strategy is to allocate each join-operation to a
//! private (set of) processors, so that all join-operations in the schedule
//! are executed in parallel. … The available processors are distributed
//! over all join-operations proportionally to the amount of work in each
//! operation. Each join-operation starts working as soon as input is
//! available." Every edge between joins is a live pipeline, in both
//! directions, courtesy of the pipelining hash join.

use mj_relalg::Result;

use crate::plan_ir::{ParallelPlan, ProcId};
use crate::strategy::Strategy;

use super::{allocate_groups, GeneratorInput, PlanBuilder};

pub(crate) fn generate(input: &GeneratorInput<'_>) -> Result<ParallelPlan> {
    let mut b = PlanBuilder::new(input);
    let joins = input.tree.joins_bottom_up();
    let weights: Vec<f64> = joins.iter().map(|&j| input.costs.per_join[j]).collect();
    let pool: Vec<ProcId> = (0..input.processors).collect();
    let (groups, shared) = allocate_groups(&weights, &pool, input.allow_oversubscribe)?;
    b.oversubscribed = shared;
    let algorithm = Strategy::FP.join_algorithm();

    for (&join, procs) in joins.iter().zip(&groups) {
        let (l, r) = input.tree.children(join).expect("join node");
        // Both operands pipeline: intermediates stream live, bases scan.
        let left = b.operand(l, true);
        let right = b.operand(r, true);
        b.push_op(join, algorithm, procs.clone(), left, right, Vec::new());
    }
    Ok(b.finish(Strategy::FP))
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::super::{generate as gen, GeneratorInput};
    use crate::plan_ir::OperandSource;
    use crate::strategy::Strategy;
    use mj_plan::shapes::Shape;
    use mj_relalg::JoinAlgorithm;
    use std::collections::HashSet;

    #[test]
    fn private_disjoint_processor_sets_partition_the_machine() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 40);
        let plan = gen(Strategy::FP, &input).unwrap();
        crate::validate::validate_plan(&plan).unwrap();
        let mut seen = HashSet::new();
        for op in &plan.ops {
            assert!(op.start_after.is_empty(), "everything starts at once");
            assert_eq!(op.algorithm, JoinAlgorithm::Pipelining);
            for &p in &op.procs {
                assert!(seen.insert(p), "processor {p} assigned twice");
            }
        }
        assert_eq!(seen.len(), 40, "all processors used");
    }

    #[test]
    fn all_intermediate_edges_are_live_streams() {
        let (tree, cards, costs) = fixture(Shape::RightBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 20);
        let plan = gen(Strategy::FP, &input).unwrap();
        for op in &plan.ops {
            for operand in [&op.left, &op.right] {
                assert!(
                    !matches!(operand, OperandSource::Materialized { .. }),
                    "FP never materializes"
                );
            }
        }
        // 9 joins, 10 leaves: 8 join-to-join edges, all pipelined.
        assert_eq!(plan.stats().pipeline_edges, 8);
    }

    #[test]
    fn allocation_is_proportional_to_work() {
        // Left-linear: the first join (two base operands) costs 4N; the
        // others (intermediate left operand) cost 5N. Degrees must be
        // within one processor of proportional.
        let (tree, cards, costs) = fixture(Shape::LeftLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 44);
        let plan = gen(Strategy::FP, &input).unwrap();
        let joins = tree.joins_bottom_up();
        let first = plan.op_for_join(joins[0]).unwrap().degree();
        let later = plan.op_for_join(joins[3]).unwrap().degree();
        assert_eq!(first, 4);
        assert_eq!(later, 5);
    }

    #[test]
    fn needs_one_processor_per_join_unless_shared() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let strict = GeneratorInput::new(&tree, &cards, &costs, 5);
        assert!(gen(Strategy::FP, &strict).is_err());
        let mut relaxed = GeneratorInput::new(&tree, &cards, &costs, 5);
        relaxed.allow_oversubscribe = true;
        let plan = gen(Strategy::FP, &relaxed).unwrap();
        assert!(plan.oversubscribed);
        crate::validate::validate_plan(&plan).unwrap();
    }

    #[test]
    fn exactly_nine_processors_gives_one_each() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 9);
        let plan = gen(Strategy::FP, &input).unwrap();
        assert!(plan.ops.iter().all(|op| op.degree() == 1));
    }
}
