//! Parallel-plan generation (§4.3).
//!
//! "A generator was made that can make execution plans using each of the
//! strategies for a specific join tree. The generator takes the join tree,
//! the cardinalities of the operand relations, the parallelization
//! strategy, and the number of processors to be used as input, and yields
//! an execution plan in XRA as output." This module is that generator; the
//! output is a [`ParallelPlan`].

mod fp;
mod rd;
mod se;
mod sp;

use mj_plan::cost::TreeCosts;
use mj_plan::tree::{JoinTree, NodeId};
use mj_relalg::{RelalgError, Result};

use crate::allocation::{carve, proportional_counts};
use crate::plan_ir::{OpId, OperandSource, ParallelPlan, ProcId};
use crate::strategy::Strategy;

/// Inputs to the plan generator.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorInput<'a> {
    /// The phase-1 join tree.
    pub tree: &'a JoinTree,
    /// Estimated cardinality per tree node.
    pub cards: &'a [u64],
    /// The paper's cost function evaluated per join (the work weights).
    pub costs: &'a TreeCosts,
    /// Available processors.
    pub processors: usize,
    /// Permit plans where concurrent operations share processors (needed
    /// only when `processors` is smaller than the number of concurrent
    /// joins; the paper's machine never was). Default-false in
    /// [`GeneratorInput::new`].
    pub allow_oversubscribe: bool,
}

impl<'a> GeneratorInput<'a> {
    /// Creates a generator input with oversubscription disabled.
    pub fn new(
        tree: &'a JoinTree,
        cards: &'a [u64],
        costs: &'a TreeCosts,
        processors: usize,
    ) -> Self {
        GeneratorInput {
            tree,
            cards,
            costs,
            processors,
            allow_oversubscribe: false,
        }
    }

    fn check(&self) -> Result<()> {
        if self.processors == 0 {
            return Err(RelalgError::InvalidPlan(
                "a plan needs >= 1 processor".into(),
            ));
        }
        if self.tree.join_count() == 0 {
            return Err(RelalgError::InvalidPlan(
                "tree has no joins to parallelize".into(),
            ));
        }
        if self.cards.len() != self.tree.nodes().len() {
            return Err(RelalgError::InvalidPlan(
                "cards must cover every tree node".into(),
            ));
        }
        if self.costs.per_join.len() != self.tree.nodes().len() {
            return Err(RelalgError::InvalidPlan(
                "costs must cover every tree node".into(),
            ));
        }
        self.tree.validate()
    }
}

/// Generates a parallel plan for `input.tree` under `strategy`.
pub fn generate(strategy: Strategy, input: &GeneratorInput<'_>) -> Result<ParallelPlan> {
    input.check()?;
    match strategy {
        Strategy::SP => sp::generate(input),
        Strategy::SE => se::generate(input),
        Strategy::RD => rd::generate(input),
        Strategy::FP => fp::generate(input),
    }
}

/// Shared machinery for the per-strategy builders.
pub(crate) struct PlanBuilder<'a> {
    pub input: &'a GeneratorInput<'a>,
    pub ops: Vec<crate::plan_ir::PlanOp>,
    /// Op evaluating each join node.
    pub op_of: Vec<Option<OpId>>,
    pub oversubscribed: bool,
}

impl<'a> PlanBuilder<'a> {
    pub fn new(input: &'a GeneratorInput<'a>) -> Self {
        PlanBuilder {
            input,
            ops: Vec::with_capacity(input.tree.join_count()),
            op_of: vec![None; input.tree.nodes().len()],
            oversubscribed: false,
        }
    }

    /// The operand source for a child node: base relations scan locally;
    /// join children either stream live (`pipelined = true`) or are read
    /// back from materialized fragments.
    pub fn operand(&self, child: NodeId, pipelined: bool) -> OperandSource {
        match &self.input.tree.nodes()[child] {
            mj_plan::tree::TreeNode::Leaf { relation } => OperandSource::Base {
                relation: relation.clone(),
            },
            mj_plan::tree::TreeNode::Join { .. } => {
                let from = self.op_of[child].expect("children scheduled before parents");
                if pipelined {
                    OperandSource::Stream { from }
                } else {
                    OperandSource::Materialized { from }
                }
            }
        }
    }

    /// Appends an op for `join`, wiring cardinalities from the input.
    pub fn push_op(
        &mut self,
        join: NodeId,
        algorithm: mj_relalg::JoinAlgorithm,
        procs: Vec<ProcId>,
        left: OperandSource,
        right: OperandSource,
        start_after: Vec<OpId>,
    ) -> OpId {
        let (l, r) = self.input.tree.children(join).expect("join node");
        let id = self.ops.len();
        self.ops.push(crate::plan_ir::PlanOp {
            id,
            join,
            algorithm,
            procs,
            left,
            right,
            start_after,
            est_left: self.input.cards[l],
            est_right: self.input.cards[r],
            est_out: self.input.cards[join],
        });
        self.op_of[join] = Some(id);
        id
    }

    pub fn finish(self, strategy: Strategy) -> ParallelPlan {
        ParallelPlan {
            strategy,
            processors: self.input.processors,
            ops: self.ops,
            tree: self.input.tree.clone(),
            oversubscribed: self.oversubscribed,
        }
    }
}

/// Allocates processor groups for `weights.len()` concurrent operations
/// from `pool`, proportionally to `weights`. Falls back to round-robin
/// sharing when the pool is too small and sharing is allowed; the boolean
/// reports whether sharing happened.
pub(crate) fn allocate_groups(
    weights: &[f64],
    pool: &[ProcId],
    allow_share: bool,
) -> Result<(Vec<Vec<ProcId>>, bool)> {
    if pool.is_empty() {
        return Err(RelalgError::InvalidPlan("empty processor pool".into()));
    }
    if pool.len() >= weights.len() {
        let counts = proportional_counts(weights, pool.len())?;
        Ok((carve(&counts, pool), false))
    } else if allow_share {
        let groups = (0..weights.len())
            .map(|i| vec![pool[i % pool.len()]])
            .collect();
        Ok((groups, true))
    } else {
        Err(RelalgError::InvalidPlan(format!(
            "{} concurrent operations need at least {} processors, got {} \
             (set allow_oversubscribe to permit sharing)",
            weights.len(),
            weights.len(),
            pool.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::shapes::{build, Shape};

    pub(crate) fn fixture(shape: Shape, k: usize, n: u64) -> (JoinTree, Vec<u64>, TreeCosts) {
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        (tree, cards, costs)
    }

    #[test]
    fn generate_validates_inputs() {
        let (tree, cards, costs) = fixture(Shape::WideBushy, 4, 100);
        let bad_procs = GeneratorInput::new(&tree, &cards, &costs, 0);
        assert!(generate(Strategy::SP, &bad_procs).is_err());

        let short_cards = vec![1u64; 2];
        let bad_cards = GeneratorInput::new(&tree, &short_cards, &costs, 8);
        assert!(generate(Strategy::SP, &bad_cards).is_err());

        let single = JoinTree::single("R");
        let c = vec![1u64];
        let tc = TreeCosts {
            per_join: vec![0.0],
            total: 0.0,
        };
        let no_joins = GeneratorInput::new(&single, &c, &tc, 8);
        assert!(generate(Strategy::FP, &no_joins).is_err());
    }

    #[test]
    fn allocate_groups_shares_only_when_allowed() {
        let pool: Vec<ProcId> = (0..2).collect();
        let weights = [1.0, 1.0, 1.0];
        assert!(allocate_groups(&weights, &pool, false).is_err());
        let (groups, shared) = allocate_groups(&weights, &pool, true).unwrap();
        assert!(shared);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0]);
        assert_eq!(groups[2], vec![0], "round-robin wraps");
    }

    #[test]
    fn every_strategy_generates_for_every_shape() {
        for shape in Shape::ALL {
            let (tree, cards, costs) = fixture(shape, 10, 1000);
            for strategy in Strategy::ALL {
                for procs in [10usize, 20, 80] {
                    let input = GeneratorInput::new(&tree, &cards, &costs, procs);
                    let plan = generate(strategy, &input).unwrap();
                    assert_eq!(plan.ops.len(), 9, "{strategy} {shape} {procs}");
                    assert!(!plan.oversubscribed);
                    crate::validate::validate_plan(&plan).unwrap();
                }
            }
        }
    }
}
