//! Segmented Right-Deep (RD) plan generation (§3.3, \[CLY92\]).
//!
//! The bushy tree is decomposed into right-deep segments
//! ([`mj_plan::segment`]). Within a segment, every join immediately hashes
//! its left operand; then the segment's probe stream pipelines from the
//! bottom join to the top. "Each operation in a segment is assigned a
//! number of processors that is proportional to the estimated amount of
//! work in the join operation. Segments that have a producer-consumer
//! relationship are evaluated sequentially. Independent segments, however,
//! may be evaluated in parallel, using disjoint subsets of the available
//! processors."
//!
//! Degenerate cases reproduce the paper's coincidences: right-linear trees
//! are one segment (RD ≡ FP modulo the join algorithm); left-linear trees
//! are all singleton segments (RD ≡ SP).

use mj_plan::segment::segments;
use mj_relalg::Result;

use crate::plan_ir::{OpId, ParallelPlan, ProcId};
use crate::strategy::Strategy;

use super::{allocate_groups, GeneratorInput, PlanBuilder};

pub(crate) fn generate(input: &GeneratorInput<'_>) -> Result<ParallelPlan> {
    let mut b = PlanBuilder::new(input);
    let segmentation = segments(input.tree);
    let waves = segmentation.waves();
    let pool: Vec<ProcId> = (0..input.processors).collect();
    let algorithm = Strategy::RD.join_algorithm();

    // Ops of the previous wave; every op of the next wave waits for all of
    // them (processors are reallocated wholesale between waves).
    let mut prev_wave_ops: Vec<OpId> = Vec::new();

    for wave in waves {
        // Split the machine across this wave's independent segments,
        // proportionally to total segment work.
        let seg_weights: Vec<f64> = wave
            .iter()
            .map(|&s| {
                segmentation.segments[s]
                    .joins
                    .iter()
                    .map(|&j| input.costs.per_join[j])
                    .sum()
            })
            .collect();
        let (seg_pools, shared) = allocate_groups(&seg_weights, &pool, input.allow_oversubscribe)?;
        b.oversubscribed |= shared;

        let mut this_wave_ops: Vec<OpId> = Vec::new();
        for (&seg_idx, seg_pool) in wave.iter().zip(&seg_pools) {
            let seg = &segmentation.segments[seg_idx];
            // Processors within the segment: proportional to join work.
            let join_weights: Vec<f64> =
                seg.joins.iter().map(|&j| input.costs.per_join[j]).collect();
            let (join_pools, shared) =
                allocate_groups(&join_weights, seg_pool, input.allow_oversubscribe)?;
            b.oversubscribed |= shared;

            // Bottom-up along the segment: the right operand of the bottom
            // join is a base relation (guaranteed by segmentation); higher
            // joins receive the probe stream from the join below.
            let mut lower: Option<OpId> = None;
            for (&join, procs) in seg.joins.iter().zip(&join_pools) {
                let (l, r) = input.tree.children(join).expect("join node");
                let left = b.operand(l, false); // builds read base/materialized
                let right = match lower {
                    None => b.operand(r, false),
                    Some(from) => crate::plan_ir::OperandSource::Stream { from },
                };
                let id = b.push_op(
                    join,
                    algorithm,
                    procs.clone(),
                    left,
                    right,
                    prev_wave_ops.clone(),
                );
                lower = Some(id);
                this_wave_ops.push(id);
            }
        }
        prev_wave_ops = this_wave_ops;
    }
    Ok(b.finish(Strategy::RD))
}

#[cfg(test)]
mod tests {
    use super::super::tests::fixture;
    use super::super::{generate as gen, GeneratorInput};
    use crate::plan_ir::OperandSource;
    use crate::strategy::Strategy;
    use mj_plan::shapes::Shape;
    use mj_relalg::JoinAlgorithm;

    #[test]
    fn right_linear_is_one_pipelined_wave() {
        let (tree, cards, costs) = fixture(Shape::RightLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 40);
        let plan = gen(Strategy::RD, &input).unwrap();
        crate::validate::validate_plan(&plan).unwrap();
        // All 9 joins start immediately, processors partitioned.
        assert!(plan.ops.iter().all(|op| op.start_after.is_empty()));
        let total: usize = plan.ops.iter().map(|op| op.degree()).sum();
        assert_eq!(total, 40);
        // 8 pipeline edges up the spine.
        assert_eq!(plan.stats().pipeline_edges, 8);
        // Like FP, but with the simple join.
        assert!(plan
            .ops
            .iter()
            .all(|op| op.algorithm == JoinAlgorithm::Simple));
    }

    #[test]
    fn left_linear_degenerates_to_sp() {
        let (tree, cards, costs) = fixture(Shape::LeftLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 40);
        let rd = gen(Strategy::RD, &input).unwrap();
        let sp = gen(Strategy::SP, &input).unwrap();
        assert_eq!(rd.ops.len(), sp.ops.len());
        for op in &rd.ops {
            assert_eq!(op.degree(), 40, "every singleton segment gets the machine");
        }
        assert_eq!(rd.stats().pipeline_edges, 0);
        assert_eq!(
            rd.stats().operation_processes,
            sp.stats().operation_processes
        );
    }

    #[test]
    fn example_tree_schedule_matches_figure_6() {
        // Wave 1: all processors on J4's segment; wave 2: the pipeline
        // 3 -> 5 -> 1 with processors split 3:5:1.
        let (tree, joins) = crate::example::example_tree();
        let weights = crate::example::example_weights();
        let mut per_join = vec![0.0; tree.nodes().len()];
        let mut total = 0.0;
        for (id, w) in &weights {
            per_join[*id] = *w;
            total += *w;
        }
        let costs = mj_plan::cost::TreeCosts { per_join, total };
        let cards = crate::example::example_cards(100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 10);
        let plan = gen(Strategy::RD, &input).unwrap();
        crate::validate::validate_plan(&plan).unwrap();

        let op4 = plan.op_for_join(joins.j4).unwrap();
        assert_eq!(op4.degree(), 10, "join 4 gets the whole machine first");
        assert!(op4.start_after.is_empty());

        let op3 = plan.op_for_join(joins.j3).unwrap();
        let op5 = plan.op_for_join(joins.j5).unwrap();
        let op1 = plan.op_for_join(joins.j1).unwrap();
        assert_eq!(op3.degree() + op5.degree() + op1.degree(), 10);
        assert!(op5.degree() > op1.degree(), "5 outweighs 1");
        // The pipeline within the segment: 3 streams into 5 streams into 1.
        assert_eq!(op5.right, OperandSource::Stream { from: op3.id });
        assert_eq!(op1.right, OperandSource::Stream { from: op5.id });
        // J5 builds from J4's materialized output.
        assert_eq!(op5.left, OperandSource::Materialized { from: op4.id });
        // Wave barrier: the second wave waits for J4.
        for op in [op3, op5, op1] {
            assert!(op.start_after.contains(&op4.id));
        }
    }

    #[test]
    fn too_few_processors_errors_without_oversubscribe() {
        let (tree, cards, costs) = fixture(Shape::RightLinear, 10, 100);
        let input = GeneratorInput::new(&tree, &cards, &costs, 4);
        assert!(gen(Strategy::RD, &input).is_err());
        let mut relaxed = GeneratorInput::new(&tree, &cards, &costs, 4);
        relaxed.allow_oversubscribe = true;
        let plan = gen(Strategy::RD, &relaxed).unwrap();
        assert!(plan.oversubscribed);
        assert_eq!(plan.ops.len(), 9);
    }
}
