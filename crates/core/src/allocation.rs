//! Proportional processor allocation with integer discretization.
//!
//! SE, RD and FP all "distribute the available processors over the
//! operations proportionally to the amount of work in each operation"
//! (§3.2–3.4). Processors are discrete, so the distribution is never exact:
//! the paper's candy-and-kids example (§3.5). This module implements the
//! largest-remainder method with a floor of one processor per operation,
//! and exposes the resulting *discretization error* for the ablation
//! benches.

use mj_relalg::{RelalgError, Result};

use crate::plan_ir::ProcId;

/// Splits `total` processors over operations with the given non-negative
/// `weights`, proportionally, every operation receiving at least one
/// processor. Returns counts summing to exactly `total`.
///
/// Errors if `total < weights.len()` (a processor may not work on two
/// concurrent operations, §3) or if weights are empty/negative.
pub fn proportional_counts(weights: &[f64], total: usize) -> Result<Vec<usize>> {
    if weights.is_empty() {
        return Err(RelalgError::InvalidPlan("no operations to allocate".into()));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(RelalgError::InvalidPlan(
            "weights must be finite and non-negative".into(),
        ));
    }
    let n = weights.len();
    if total < n {
        return Err(RelalgError::InvalidPlan(format!(
            "{n} concurrent operations need at least {n} processors, got {total}"
        )));
    }
    let weight_sum: f64 = weights.iter().sum();
    if weight_sum <= 0.0 {
        // Degenerate: equal split.
        return Ok(equal_counts(n, total));
    }

    // Largest-remainder (Hamilton) apportionment of all `total` processors.
    let mut counts: Vec<usize> = vec![0; n];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let ideal = w / weight_sum * total as f64;
        let fl = ideal.floor() as usize;
        counts[i] = fl;
        assigned += fl;
        remainders.push((i, ideal - fl as f64));
    }
    // Hand the leftover processors to the largest remainders; break ties by
    // larger weight, then by index for determinism.
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap()
            .then_with(|| weights[b.0].partial_cmp(&weights[a.0]).unwrap())
            .then_with(|| a.0.cmp(&b.0))
    });
    for k in 0..(total - assigned) {
        counts[remainders[k].0] += 1;
    }
    // Enforce the floor of one processor per operation by taking from the
    // most-provisioned operations (possible because total >= n).
    while let Some(zero) = counts.iter().position(|&c| c == 0) {
        let donor = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty");
        debug_assert!(counts[donor] > 1);
        counts[donor] -= 1;
        counts[zero] += 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    Ok(counts)
}

fn equal_counts(n: usize, total: usize) -> Vec<usize> {
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Carves a pool of processor ids into consecutive disjoint groups of the
/// given sizes. Panics if the pool is too small (callers size pools via
/// [`proportional_counts`]).
pub fn carve(counts: &[usize], pool: &[ProcId]) -> Vec<Vec<ProcId>> {
    let needed: usize = counts.iter().sum();
    assert!(
        pool.len() >= needed,
        "pool {} < needed {needed}",
        pool.len()
    );
    let mut out = Vec::with_capacity(counts.len());
    let mut cursor = 0usize;
    for &c in counts {
        out.push(pool[cursor..cursor + c].to_vec());
        cursor += c;
    }
    out
}

/// The discretization error of an allocation: the maximum relative
/// deviation between an operation's processor share and its work share.
/// Zero means perfectly fair; grows when few processors are spread over
/// many differently-sized operations (§3.5).
pub fn discretization_error(weights: &[f64], counts: &[usize]) -> f64 {
    let weight_sum: f64 = weights.iter().sum();
    let total: usize = counts.iter().sum();
    if weight_sum <= 0.0 || total == 0 {
        return 0.0;
    }
    weights
        .iter()
        .zip(counts)
        .map(|(&w, &c)| {
            let work_share = w / weight_sum;
            let proc_share = c as f64 / total as f64;
            if work_share > 0.0 {
                (proc_share / work_share - 1.0).abs()
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_total_and_respect_floor() {
        let counts = proportional_counts(&[1.0, 5.0, 3.0, 4.0], 10).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c >= 1));
        // Weight 5 gets the most, weight 1 the least.
        assert!(counts[1] >= counts[3] && counts[3] >= counts[2] && counts[2] >= counts[0]);
    }

    #[test]
    fn example_tree_allocation_matches_figure_7() {
        // Fig. 2 weights (J1=1, J5=5, J3=3, J4=4) over 10 processors: the
        // idealized FP allocation of Fig. 7: 1, 4, 2, 3.
        let counts = proportional_counts(&[1.0, 5.0, 3.0, 4.0], 10).unwrap();
        assert_eq!(counts, vec![1, 4, 2, 3]);
    }

    #[test]
    fn candy_example_from_the_paper() {
        // "4 pieces of candy over 3 kids: one gets 2, the others 1."
        let counts = proportional_counts(&[1.0, 1.0, 1.0], 4).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 4);
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 2]);
    }

    #[test]
    fn too_few_processors_is_an_error() {
        assert!(proportional_counts(&[1.0, 1.0, 1.0], 2).is_err());
        assert!(proportional_counts(&[], 5).is_err());
        assert!(proportional_counts(&[1.0, f64::NAN], 5).is_err());
        assert!(proportional_counts(&[1.0, -1.0], 5).is_err());
    }

    #[test]
    fn zero_weights_split_equally() {
        let counts = proportional_counts(&[0.0, 0.0, 0.0], 7).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert_eq!(counts, vec![3, 2, 2]);
    }

    #[test]
    fn exactly_one_each() {
        let counts = proportional_counts(&[9.0, 1.0, 1.0], 3).unwrap();
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn carve_produces_disjoint_consecutive_groups() {
        let pool: Vec<ProcId> = (10..20).collect();
        let groups = carve(&[3, 5, 2], &pool);
        assert_eq!(groups[0], vec![10, 11, 12]);
        assert_eq!(groups[1], vec![13, 14, 15, 16, 17]);
        assert_eq!(groups[2], vec![18, 19]);
    }

    #[test]
    fn discretization_error_shrinks_with_more_processors() {
        let weights = [1.0, 5.0, 3.0, 4.0];
        let few = proportional_counts(&weights, 8).unwrap();
        let many = proportional_counts(&weights, 80).unwrap();
        let e_few = discretization_error(&weights, &few);
        let e_many = discretization_error(&weights, &many);
        assert!(e_many < e_few, "{e_many} !< {e_few}");
    }

    #[test]
    fn perfectly_divisible_has_zero_error() {
        let weights = [1.0, 1.0, 2.0];
        let counts = proportional_counts(&weights, 8).unwrap();
        assert_eq!(counts, vec![2, 2, 4]);
        assert!(discretization_error(&weights, &counts) < 1e-12);
    }

    #[test]
    fn determinism_under_ties() {
        let a = proportional_counts(&[1.0, 1.0, 1.0, 1.0], 6).unwrap();
        let b = proportional_counts(&[1.0, 1.0, 1.0, 1.0], 6).unwrap();
        assert_eq!(a, b);
    }
}
