//! Structural validation of parallel plans.
//!
//! Every generated plan must satisfy the invariants both backends rely on;
//! validation failures indicate generator bugs, so the engine and the
//! simulator validate plans up front rather than misbehaving downstream.

use std::collections::HashSet;

use mj_plan::tree::TreeNode;
use mj_relalg::{RelalgError, Result};

use crate::plan_ir::{OperandSource, ParallelPlan};

/// Checks a plan's structural invariants:
///
/// 1. exactly one op per join node of the tree, topologically ordered;
/// 2. operands wired to the correct children (base names match leaves,
///    producers match join children);
/// 3. materialized producers are in `start_after`;
/// 4. all processor ids are in range and every op has at least one;
/// 5. ops that may run concurrently (neither transitively ordered after
///    the other) use disjoint processors — unless the plan declares
///    oversubscription;
/// 6. `start_after` references earlier ops only.
pub fn validate_plan(plan: &ParallelPlan) -> Result<()> {
    let tree = &plan.tree;
    tree.validate()?;
    if plan.ops.len() != tree.join_count() {
        return Err(RelalgError::InvalidPlan(format!(
            "plan has {} ops for {} joins",
            plan.ops.len(),
            tree.join_count()
        )));
    }

    let deps = plan.transitive_deps();
    let mut join_seen = HashSet::new();
    for (idx, op) in plan.ops.iter().enumerate() {
        if op.id != idx {
            return Err(RelalgError::InvalidPlan(format!(
                "op {idx} has id {}",
                op.id
            )));
        }
        if !join_seen.insert(op.join) {
            return Err(RelalgError::InvalidPlan(format!(
                "join {} scheduled twice",
                op.join
            )));
        }
        let Some((l, r)) = tree.children(op.join) else {
            return Err(RelalgError::InvalidPlan(format!("op {idx} targets a leaf")));
        };
        check_operand(plan, idx, &op.left, l, &deps[idx])?;
        check_operand(plan, idx, &op.right, r, &deps[idx])?;
        if op.procs.is_empty() {
            return Err(RelalgError::InvalidPlan(format!(
                "op {idx} has no processors"
            )));
        }
        if let Some(&bad) = op.procs.iter().find(|&&p| p >= plan.processors) {
            return Err(RelalgError::InvalidPlan(format!(
                "op {idx} uses processor {bad} >= {}",
                plan.processors
            )));
        }
        for &d in &op.start_after {
            if d >= idx {
                return Err(RelalgError::InvalidPlan(format!(
                    "op {idx} starts after non-earlier op {d}"
                )));
            }
        }
    }

    // Concurrency-disjointness.
    if !plan.oversubscribed {
        for a in 0..plan.ops.len() {
            for b in a + 1..plan.ops.len() {
                let ordered = deps[b].contains(&a) || deps[a].contains(&b);
                if ordered {
                    continue;
                }
                let pa: HashSet<_> = plan.ops[a].procs.iter().collect();
                if plan.ops[b].procs.iter().any(|p| pa.contains(p)) {
                    return Err(RelalgError::InvalidPlan(format!(
                        "concurrent ops {a} and {b} share processors"
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_operand(
    plan: &ParallelPlan,
    op_idx: usize,
    operand: &OperandSource,
    child: mj_plan::tree::NodeId,
    transitive_deps: &[usize],
) -> Result<()> {
    let tree = &plan.tree;
    match (operand, &tree.nodes()[child]) {
        (OperandSource::Base { relation }, TreeNode::Leaf { relation: expected }) => {
            if relation != expected {
                return Err(RelalgError::InvalidPlan(format!(
                    "op {op_idx} scans `{relation}` but the tree expects `{expected}`"
                )));
            }
            Ok(())
        }
        (OperandSource::Base { .. }, TreeNode::Join { .. }) => Err(RelalgError::InvalidPlan(
            format!("op {op_idx} scans a base relation where a join feeds in"),
        )),
        (src, TreeNode::Leaf { .. }) => Err(RelalgError::InvalidPlan(format!(
            "op {op_idx} wires {src:?} where the tree has a leaf"
        ))),
        (src, TreeNode::Join { .. }) => {
            let from = src.producer().expect("non-base source has a producer");
            if from >= plan.ops.len() {
                return Err(RelalgError::InvalidPlan(format!(
                    "op {op_idx} consumes unknown op {from}"
                )));
            }
            if plan.ops[from].join != child {
                return Err(RelalgError::InvalidPlan(format!(
                    "op {op_idx} consumes op {from} which evaluates join {}, expected {child}",
                    plan.ops[from].join
                )));
            }
            if matches!(src, OperandSource::Materialized { .. }) && !transitive_deps.contains(&from)
            {
                return Err(RelalgError::InvalidPlan(format!(
                    "op {op_idx} reads materialized op {from} without waiting for it"
                )));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorInput};
    use crate::strategy::Strategy;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::shapes::{build, Shape};

    fn valid_plan() -> ParallelPlan {
        let tree = build(Shape::WideBushy, 6).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 100 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, 12);
        generate(Strategy::FP, &input).unwrap()
    }

    #[test]
    fn generated_plans_validate() {
        validate_plan(&valid_plan()).unwrap();
    }

    #[test]
    fn detects_shared_processors_between_concurrent_ops() {
        let mut plan = valid_plan();
        // Make two concurrent ops share processor 0.
        plan.ops[0].procs = vec![0];
        plan.ops[1].procs = vec![0];
        assert!(validate_plan(&plan).is_err());
        // Declaring oversubscription silences the check.
        plan.oversubscribed = true;
        validate_plan(&plan).unwrap();
    }

    #[test]
    fn detects_wrong_base_relation() {
        let mut plan = valid_plan();
        for op in &mut plan.ops {
            if let OperandSource::Base { relation } = &mut op.left {
                *relation = "WRONG".into();
                break;
            }
        }
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn detects_missing_materialization_barrier() {
        let mut plan = valid_plan();
        // Turn a stream edge into a materialized edge without adding the
        // dependency.
        for op in &mut plan.ops {
            let right = op.right.clone();
            if let OperandSource::Stream { from } = right {
                op.right = OperandSource::Materialized { from };
                op.start_after.retain(|&d| d != from);
                break;
            }
        }
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn detects_out_of_range_processor() {
        let mut plan = valid_plan();
        plan.ops[0].procs.push(10_000);
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn detects_empty_processor_set() {
        let mut plan = valid_plan();
        plan.ops[0].procs.clear();
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn detects_forward_dependency() {
        let mut plan = valid_plan();
        let last = plan.ops.len() - 1;
        plan.ops[0].start_after.push(last);
        assert!(validate_plan(&plan).is_err());
    }
}
