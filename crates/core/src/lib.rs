//! The paper's contribution: phase-2 parallelization of a multi-join tree.
//!
//! Given the minimal-total-cost join tree from phase 1 (`mj-plan`), this
//! crate generates a **parallel execution plan** with one of the four
//! strategies the paper compares (§3):
//!
//! | Strategy | Inter-op parallelism | Pipelining | Join algorithm |
//! |----------|---------------------|------------|----------------|
//! | [`Strategy::SP`] Sequential Parallel | none | none | simple |
//! | [`Strategy::SE`] Synchronous Execution \[CYW92\] | independent subtrees | none | simple |
//! | [`Strategy::RD`] Segmented Right-Deep \[CLY92\] | independent segments | within segments | simple |
//! | [`Strategy::FP`] Full Parallel \[WiA91\] | all joins | both operands | pipelining |
//!
//! The output ([`plan_ir::ParallelPlan`]) is a backend-neutral physical IR
//! — the analogue of the XRA execution plans PRISMA's generator emitted
//! (§4.3) — consumed by both the real threaded engine (`mj-exec`) and the
//! discrete-event simulator (`mj-sim`). Processor allocation follows the
//! paper: proportional to the estimated work of each join under the §4.3
//! cost function, subject to integer *discretization* — one of the four
//! overhead sources the experiments quantify.

#![warn(missing_docs)]

pub mod allocation;
pub mod example;
pub mod generator;
pub mod plan_ir;
pub mod schedule;
pub mod strategy;
pub mod validate;

pub use allocation::{carve, proportional_counts};
pub use example::{example_tree, example_weights};
pub use generator::{generate, GeneratorInput};
pub use plan_ir::{OpId, OperandSource, ParallelPlan, PlanOp, PlanStats, ProcId};
pub use schedule::{estimate_schedule, stage_tail_cost, ScheduleEstimate, ScheduleModel};
pub use strategy::Strategy;
pub use validate::validate_plan;
