//! The parallel plan IR — the analogue of PRISMA's parallelism-annotated
//! XRA programs (§2.2, §4.3).
//!
//! A [`ParallelPlan`] assigns every join of a tree to an explicit set of
//! logical processors, fixes its join algorithm, wires its operands (local
//! base fragments, live streams, or materialized intermediates), and
//! records start dependencies. Both physical backends interpret this IR:
//! `mj-exec` with threads and channels, `mj-sim` with discrete events —
//! which guarantees that a strategy comparison compares *plans*, never
//! backend quirks.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use mj_plan::tree::{JoinTree, NodeId};
use mj_relalg::JoinAlgorithm;

use crate::strategy::Strategy;

/// Identifier of an operation (one parallel join) within a plan.
pub type OpId = usize;

/// Identifier of a logical processor (0-based).
pub type ProcId = usize;

/// Where an operand's tuples come from.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandSource {
    /// A base relation, read from processor-local fragments. The paper
    /// starts every query from its ideal fragmentation (§4.1), so base
    /// operands never cross the network — matching the cost function's
    /// coefficient 1.
    Base {
        /// Catalog name of the relation.
        relation: String,
    },
    /// Live output of another operation, redistributed tuple-by-tuple while
    /// both operations run (pipelining edge).
    Stream {
        /// Producing operation.
        from: OpId,
    },
    /// Output of an operation that completed earlier; stored fragmented on
    /// the producer's processors and redistributed when this operation
    /// runs. Requires `from` in `start_after`.
    Materialized {
        /// Producing operation.
        from: OpId,
    },
}

impl OperandSource {
    /// The producing op for stream/materialized operands.
    pub fn producer(&self) -> Option<OpId> {
        match self {
            OperandSource::Base { .. } => None,
            OperandSource::Stream { from } | OperandSource::Materialized { from } => Some(*from),
        }
    }

    /// True if tuples cross the interconnect (cost coefficient 2).
    pub fn is_remote(&self) -> bool {
        !matches!(self, OperandSource::Base { .. })
    }
}

/// One parallel join operation: `procs.len()` operation processes executing
/// the same binary join over hash-partitioned inputs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanOp {
    /// Plan-wide id (index into [`ParallelPlan::ops`]).
    pub id: OpId,
    /// The join node of the source tree this op evaluates.
    pub join: NodeId,
    /// Hash-join algorithm.
    pub algorithm: JoinAlgorithm,
    /// Processors running this op (one operation process each). Disjoint
    /// from any concurrently-runnable op unless the plan is oversubscribed.
    pub procs: Vec<ProcId>,
    /// Left (build) operand.
    pub left: OperandSource,
    /// Right (probe) operand.
    pub right: OperandSource,
    /// Ops that must complete before this op may be initialized.
    pub start_after: Vec<OpId>,
    /// Estimated operand/result cardinalities (from phase 1), used for
    /// sizing and by the simulator.
    pub est_left: u64,
    /// Estimated right-operand cardinality.
    pub est_right: u64,
    /// Estimated result cardinality.
    pub est_out: u64,
}

impl PlanOp {
    /// Degree of intra-operator parallelism.
    pub fn degree(&self) -> usize {
        self.procs.len()
    }
}

/// A complete parallel execution plan for one multi-join query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParallelPlan {
    /// The strategy that produced the plan.
    pub strategy: Strategy,
    /// Total processors available (`0..processors` are valid [`ProcId`]s).
    pub processors: usize,
    /// Operations, topologically ordered (producers before consumers).
    pub ops: Vec<PlanOp>,
    /// The join tree the plan parallelizes (provenance; node ids in
    /// [`PlanOp::join`] refer to this tree).
    pub tree: JoinTree,
    /// True if concurrently-runnable ops share processors (only possible
    /// when a caller explicitly allows fewer processors than operations;
    /// the paper's experiments never do).
    pub oversubscribed: bool,
}

impl ParallelPlan {
    /// The op evaluating the tree's root join — the plan's sink.
    pub fn sink(&self) -> &PlanOp {
        self.ops
            .iter()
            .find(|op| op.join == self.tree.root())
            .expect("a valid plan evaluates the root join")
    }

    /// The op evaluating tree node `join`, if any.
    pub fn op_for_join(&self, join: NodeId) -> Option<&PlanOp> {
        self.ops.iter().find(|op| op.join == join)
    }

    /// Summary statistics: the drivers of the paper's startup and
    /// coordination overheads (§3.5).
    pub fn stats(&self) -> PlanStats {
        let mut processes = 0usize;
        let mut streams = 0usize;
        let mut pipeline_edges = 0usize;
        for op in &self.ops {
            processes += op.degree();
            for operand in [&op.left, &op.right] {
                match operand {
                    OperandSource::Base { .. } => {}
                    OperandSource::Stream { from } => {
                        streams += self.ops[*from].degree() * op.degree();
                        pipeline_edges += 1;
                    }
                    OperandSource::Materialized { from } => {
                        streams += self.ops[*from].degree() * op.degree();
                    }
                }
            }
        }
        PlanStats {
            operation_processes: processes,
            tuple_streams: streams,
            pipeline_edges,
        }
    }

    /// Groups ops into *concurrency classes*: two ops can run at the same
    /// time iff neither (transitively) depends on the other. Returns, for
    /// every op, the set of ops it is ordered after (its transitive deps).
    pub fn transitive_deps(&self) -> Vec<Vec<OpId>> {
        let n = self.ops.len();
        let mut closed: Vec<Vec<OpId>> = vec![Vec::new(); n];
        // Ops are topologically ordered by construction.
        for id in 0..n {
            let mut set: HashMap<OpId, ()> = HashMap::new();
            for &d in &self.ops[id].start_after {
                set.insert(d, ());
                for &dd in &closed[d] {
                    set.insert(dd, ());
                }
            }
            let mut v: Vec<OpId> = set.into_keys().collect();
            v.sort_unstable();
            closed[id] = v;
        }
        closed
    }
}

/// Aggregate plan statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Total operation processes the scheduler must initialize — the
    /// *startup* overhead driver. SP with 10 joins on 80 processors: 800.
    pub operation_processes: usize,
    /// Total point-to-point tuple streams (n×m per redistribution) — the
    /// *coordination* overhead driver. One 80-way refragmentation: 6400.
    pub tuple_streams: usize,
    /// Number of live pipeline edges (Stream operands).
    pub pipeline_edges: usize,
}

impl fmt::Display for ParallelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} plan on {} processors ({} ops{})",
            self.strategy,
            self.processors,
            self.ops.len(),
            if self.oversubscribed {
                ", oversubscribed"
            } else {
                ""
            }
        )?;
        for op in &self.ops {
            let src = |s: &OperandSource| match s {
                OperandSource::Base { relation } => format!("base({relation})"),
                OperandSource::Stream { from } => format!("stream(op{from})"),
                OperandSource::Materialized { from } => format!("mat(op{from})"),
            };
            writeln!(
                f,
                "  op{} j{} [{}] procs {:?} left={} right={} after={:?}",
                op.id,
                op.join,
                op.algorithm,
                compress_procs(&op.procs),
                src(&op.left),
                src(&op.right),
                op.start_after,
            )?;
        }
        Ok(())
    }
}

/// Renders a processor list as compact ranges for display, e.g. `[0-4, 7]`.
fn compress_procs(procs: &[ProcId]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < procs.len() {
        let start = procs[i];
        let mut end = start;
        while i + 1 < procs.len() && procs[i + 1] == end + 1 {
            end = procs[i + 1];
            i += 1;
        }
        out.push(if start == end {
            format!("{start}")
        } else {
            format!("{start}-{end}")
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_plan::shapes::{build, Shape};

    fn tiny_plan() -> ParallelPlan {
        let tree = build(Shape::RightLinear, 3).unwrap();
        let joins = tree.joins_bottom_up();
        ParallelPlan {
            strategy: Strategy::FP,
            processors: 4,
            ops: vec![
                PlanOp {
                    id: 0,
                    join: joins[0],
                    algorithm: JoinAlgorithm::Pipelining,
                    procs: vec![0, 1, 2],
                    left: OperandSource::Base {
                        relation: "R1".into(),
                    },
                    right: OperandSource::Base {
                        relation: "R2".into(),
                    },
                    start_after: vec![],
                    est_left: 10,
                    est_right: 10,
                    est_out: 10,
                },
                PlanOp {
                    id: 1,
                    join: joins[1],
                    algorithm: JoinAlgorithm::Pipelining,
                    procs: vec![3],
                    left: OperandSource::Base {
                        relation: "R0".into(),
                    },
                    right: OperandSource::Stream { from: 0 },
                    start_after: vec![],
                    est_left: 10,
                    est_right: 10,
                    est_out: 10,
                },
            ],
            tree,
            oversubscribed: false,
        }
    }

    #[test]
    fn stats_count_processes_and_streams() {
        let plan = tiny_plan();
        let stats = plan.stats();
        assert_eq!(stats.operation_processes, 4);
        // One stream operand: 3 producers x 1 consumer.
        assert_eq!(stats.tuple_streams, 3);
        assert_eq!(stats.pipeline_edges, 1);
    }

    #[test]
    fn sink_is_root_join() {
        let plan = tiny_plan();
        assert_eq!(plan.sink().id, 1);
        assert!(plan.op_for_join(plan.tree.root()).is_some());
        assert!(plan.op_for_join(9999).is_none());
    }

    #[test]
    fn operand_source_helpers() {
        let base = OperandSource::Base {
            relation: "R".into(),
        };
        let stream = OperandSource::Stream { from: 3 };
        let mat = OperandSource::Materialized { from: 7 };
        assert_eq!(base.producer(), None);
        assert_eq!(stream.producer(), Some(3));
        assert_eq!(mat.producer(), Some(7));
        assert!(!base.is_remote());
        assert!(stream.is_remote() && mat.is_remote());
    }

    #[test]
    fn transitive_deps_close_over_chains() {
        let mut plan = tiny_plan();
        plan.ops[1].start_after = vec![0];
        let deps = plan.transitive_deps();
        assert!(deps[0].is_empty());
        assert_eq!(deps[1], vec![0]);
    }

    #[test]
    fn display_renders_ops() {
        let s = tiny_plan().to_string();
        assert!(s.contains("FP plan on 4 processors"));
        assert!(s.contains("stream(op0)"));
        assert!(s.contains("base(R0)"));
    }

    #[test]
    fn proc_compression() {
        assert_eq!(compress_procs(&[0, 1, 2, 5, 7, 8]), vec!["0-2", "5", "7-8"]);
        assert!(compress_procs(&[]).is_empty());
    }
}
