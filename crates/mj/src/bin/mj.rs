//! `mj` — command-line front end to the multijoin library.
//!
//! ```text
//! mj sql      "<query>" | -  [--query F --relations K --tuples N --seed X]
//!             [--procs P --workers W] [--explain] [--limit R]
//! mj serve    [--addr A --workers W --conn-workers C --max-clients M]
//!             [--query F --relations K --tuples N --seed X --procs P]
//! mj shapes   [--relations K]
//! mj plan     [--query F] [--strategy auto|ST] [--relations K --tuples N --procs P --seed X]
//! mj plan     --shape S --strategy ST [--relations K --tuples N --procs P]
//! mj simulate --shape S --strategy ST [--relations K --tuples N --procs P] [--gantt]
//! mj sweep    --shape S [--tuples N]
//! mj run      [--query F] [--strategy auto|ST] [--relations K --tuples N --procs P --seed X]
//! mj run      --shape S --strategy ST [--relations K --tuples N --procs P]
//! mj optimize --query chain|skewed|star [--relations K]
//! mj xra print --shape S [--relations K]
//! mj xra eval  [FILE] [--relations K --tuples N]   (plan from FILE or stdin)
//! ```
//!
//! `mj sql` is the session front door: it populates a [`Database`] with a
//! seeded `--query` family (chain/star/skewed), parses and plans the given
//! text query, and *streams* the result — rows print as batches arrive,
//! long before the query finishes. `mj sql -` reads the query from stdin;
//! `--explain` prints the costed plan alternatives instead of executing.
//!
//! Without `--shape`, `mj plan` and `mj run` are **planner-driven**: the
//! cost-based planner picks the join tree, the strategy (unless a concrete
//! `--strategy` overrides it), and the processor allocation for a generated
//! `--query` family instance (chain, star, skewed). With `--shape`, the
//! legacy fixed shape×strategy grid runs unchanged.
//!
//! Shapes: left-linear, left-bushy, wide-bushy, right-bushy, right-linear.
//! Strategies: sp, se, rd, fp (plus `auto` for plan/run without `--shape`).

use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

use multijoin::core::generator::{generate, GeneratorInput};
use multijoin::core::strategy::Strategy;
use multijoin::exec::{
    generate_family, run_plan, Database, DbConfig, ExecConfig, Planner, PlannerOptions,
    QueryBinding, QueryFamily,
};
use multijoin::plan::cardinality::{node_cards, UniformOneToOne};
use multijoin::plan::cost::{tree_costs, CostModel};
use multijoin::plan::optimize::{
    greedy_tree, iterative_improvement, optimize_bushy, optimize_linear, random_tree,
    simulated_annealing, AnnealingOptions, IterativeOptions,
};
use multijoin::plan::query::to_xra;
use multijoin::plan::shapes::{build, Shape};
use multijoin::plan::{render, QueryGraph};
use multijoin::relalg::RelationProvider;
use multijoin::relalg::{text, JoinAlgorithm, Value};
use multijoin::sim::{render_gantt, simulate, SimParams};
use multijoin::storage::{Catalog, WisconsinGenerator};

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that never take a value, so `mj sql --explain "<query>"` does not
/// swallow the query text as the switch's value.
const BOOLEAN_SWITCHES: &[&str] = &["explain", "gantt"];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            // A flag with a value, or a bare switch.
            if !BOOLEAN_SWITCHES.contains(&name)
                && i + 1 < argv.len()
                && !argv[i + 1].starts_with("--")
            {
                flags.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                switches.push(name.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Args {
        positional,
        flags,
        switches,
    })
}

impl Args {
    fn shape(&self) -> Result<Shape, String> {
        let s = self
            .flags
            .get("shape")
            .map(String::as_str)
            .unwrap_or("wide-bushy");
        match s {
            "left-linear" => Ok(Shape::LeftLinear),
            "left-bushy" => Ok(Shape::LeftBushy),
            "wide-bushy" => Ok(Shape::WideBushy),
            "right-bushy" => Ok(Shape::RightBushy),
            "right-linear" => Ok(Shape::RightLinear),
            other => Err(format!(
                "unknown shape `{other}` (expected left-linear, left-bushy, wide-bushy, right-bushy, right-linear)"
            )),
        }
    }

    fn strategy(&self) -> Result<Strategy, String> {
        let s = self
            .flags
            .get("strategy")
            .map(String::as_str)
            .unwrap_or("fp");
        match s.to_ascii_lowercase().as_str() {
            "sp" => Ok(Strategy::SP),
            "se" => Ok(Strategy::SE),
            "rd" => Ok(Strategy::RD),
            "fp" => Ok(Strategy::FP),
            other => Err(format!(
                "unknown strategy `{other}` (expected sp, se, rd, fp)"
            )),
        }
    }

    /// `--strategy` with `auto` support: `None` means let the planner
    /// choose; a concrete value forces that strategy. Defaults to auto.
    fn strategy_or_auto(&self) -> Result<Option<Strategy>, String> {
        match self.flags.get("strategy").map(String::as_str) {
            None | Some("auto") => Ok(None),
            Some(_) => self.strategy().map(Some),
        }
    }

    fn family(&self) -> Result<QueryFamily, String> {
        let f = self
            .flags
            .get("query")
            .map(String::as_str)
            .unwrap_or("chain");
        QueryFamily::parse(f).map_err(|e| e.to_string())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn usage() -> &'static str {
    "usage:
  mj sql      \"<query>\" | -  [--query chain|star|skewed --relations K
              --tuples N --seed X --procs P --workers W] [--explain]
              [--limit R] [--format table|csv|json]
  mj serve    [--addr HOST:PORT] [--workers W --conn-workers C
              --max-clients M] [--query chain|star|skewed --relations K
              --tuples N --seed X --procs P]
  mj shapes   [--relations K]
  mj plan     [--query chain|star|skewed] [--strategy auto|ST]
              [--relations K --tuples N --procs P --seed X]   (planner explain)
  mj plan     --shape S --strategy ST [--relations K --tuples N --procs P]
  mj simulate --shape S --strategy ST [--relations K --tuples N --procs P] [--gantt]
  mj sweep    --shape S [--tuples N]
  mj run      [--query chain|star|skewed] [--strategy auto|ST]
              [--relations K --tuples N --procs P --seed X]   (planner-driven)
  mj run      --shape S --strategy ST [--relations K --tuples N --procs P]
  mj optimize --query chain|skewed|star [--relations K]
  mj xra print --shape S [--relations K]
  mj xra eval [FILE] [--relations K --tuples N]

`mj sql` opens a Database over a seeded --query family (chain relations
have columns a, b, id; star has dims R0..R{K-2} (key, payload) and fact
R{K-1} (fk0.., measure)), then parses, plans, and *streams* the query:

  mj sql \"SELECT * FROM R0 JOIN R1 ON R0.b = R1.a JOIN R2 ON R1.b = R2.a\"
  mj sql \"SELECT R0.b, COUNT(*) FROM R0 JOIN R1 ON R0.b = R1.a
          WHERE R1.id < 500 GROUP BY R0.b LIMIT 10\"
  echo \"SELECT R0.id, R2.id FROM ...\" | mj sql -    (newlines + -- comments ok)
  mj sql --explain \"SELECT ...\"        (costed alternatives, no execution)

Without --shape, plan/run use the cost-based planner (tree, strategy, and
processor allocation chosen from catalog statistics); --strategy with a
concrete value overrides only the strategy. With --shape, the legacy fixed
grid runs.

shapes: left-linear left-bushy wide-bushy right-bushy right-linear
strategies: sp se rd fp (the paper's four parallelization strategies);
`auto` additionally works for plan/run without --shape"
}

/// Plans a `--query` family instance with the cost-based planner.
fn plan_family(
    args: &Args,
) -> Result<
    (
        multijoin::exec::FamilyInstance,
        multijoin::exec::PlannedQuery,
        usize,
    ),
    String,
> {
    let family = args.family()?;
    let k: usize = args.num("relations", 6)?;
    let tuples: usize = args.num("tuples", 2_000)?;
    let procs: usize = args.num("procs", 8)?;
    let seed: u64 = args.num("seed", 42)?;
    let instance = generate_family(family, k, tuples, seed).map_err(|e| e.to_string())?;
    let mut options = PlannerOptions::new(procs);
    options.strategy = args.strategy_or_auto()?;
    let planned = Planner::new(options)
        .plan(&instance.query)
        .map_err(|e| e.to_string())?;
    Ok((instance, planned, procs))
}

/// Plans a (shape, strategy, tuples, procs) configuration.
fn make_plan(
    args: &Args,
) -> Result<(multijoin::core::plan_ir::ParallelPlan, Shape, u64, usize), String> {
    let shape = args.shape()?;
    let strategy = args.strategy()?;
    let k: usize = args.num("relations", 10)?;
    let tuples: u64 = args.num("tuples", 40_000)?;
    let procs: usize = args.num("procs", 40)?;
    let tree = build(shape, k).map_err(|e| e.to_string())?;
    let cards = node_cards(&tree, &UniformOneToOne { n: tuples });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let mut input = GeneratorInput::new(&tree, &cards, &costs, procs);
    input.allow_oversubscribe = procs < tree.join_count();
    let plan = generate(strategy, &input).map_err(|e| e.to_string())?;
    Ok((plan, shape, tuples, procs))
}

/// Output modes of the streaming row printer.
#[derive(Clone, Copy, PartialEq)]
enum OutFormat {
    Table,
    Csv,
    Json,
}

impl OutFormat {
    fn parse(s: &str) -> Result<OutFormat, String> {
        match s {
            "table" => Ok(OutFormat::Table),
            "csv" => Ok(OutFormat::Csv),
            "json" => Ok(OutFormat::Json),
            other => Err(format!(
                "unknown format `{other}` (expected table, csv, json)"
            )),
        }
    }
}

/// One value as a CSV field (RFC-4180-style quoting).
fn csv_field(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
    }
}

/// One value as a JSON literal.
fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => json_string(s),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `mj sql`: the session front door. Populates a [`Database`] with a
/// seeded query family, then parses, plans, and streams the given text
/// query — printing rows incrementally as batches arrive.
fn cmd_sql(args: &Args) -> Result<(), String> {
    use std::io::Write as _;

    let text = match args.positional.get(1).map(String::as_str) {
        None => {
            return Err("usage: mj sql \"<query>\"  (or `mj sql -` to read stdin)".into());
        }
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
        Some(q) => q.to_string(),
    };

    // Data: a seeded family instance registered through the front door.
    let family = args.family()?;
    let k: usize = args.num("relations", 4)?;
    let tuples: usize = args.num("tuples", 2_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let procs: usize = args.num("procs", 8)?;
    let workers: usize = args.num("workers", ExecConfig::default().workers)?;
    let limit: usize = args.num("limit", 20)?;
    let format = OutFormat::parse(
        args.flags
            .get("format")
            .map(String::as_str)
            .unwrap_or("table"),
    )?;

    let instance = generate_family(family, k, tuples, seed).map_err(|e| e.to_string())?;
    let mut config = DbConfig::default();
    config.exec.workers = workers;
    config.planner = PlannerOptions::new(procs);
    let db = Database::open(config).map_err(|e| e.to_string())?;
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        let rel = instance.catalog.relation(name).map_err(|e| e.to_string())?;
        db.register(name, rel).map_err(|e| e.to_string())?;
    }
    db.analyze().map_err(|e| e.to_string())?;
    eprintln!(
        "data: `{family}` family, {k} relations x {tuples} base tuples (seed {seed}); \
         {workers} workers, {procs} logical processors"
    );

    if args.switch("explain") {
        let planned = db.plan(&text).map_err(|e| e.render(&text))?;
        println!("chosen join tree:");
        for line in multijoin::plan::render::render(&planned.tree).lines() {
            println!("  {line}");
        }
        println!("costed alternatives (estimated schedule cost, §4.3 units):");
        print!("{}", planned.explain());
        println!(
            "winner: {} — estimated cost {:.0} (startup {:.0}, coordination {:.0})",
            planned.strategy(),
            planned.estimate.makespan,
            planned.estimate.startup,
            planned.estimate.coordination,
        );
        return Ok(());
    }

    let started = std::time::Instant::now();
    let mut handle = db.query(&text).map_err(|e| e.render(&text))?;
    let mut stream = handle.stream();
    let schema = stream.schema().clone();
    let names: Vec<&str> = schema.attrs().iter().map(|a| a.name.as_str()).collect();
    // JSON object keys must be unique; columns selected from different
    // relations can share a name (R0.id, R2.id), so suffix duplicates.
    let json_keys: Vec<String> = {
        let mut used: Vec<String> = Vec::with_capacity(names.len());
        for &n in &names {
            let mut key = n.to_string();
            let mut suffix = 2;
            while used.contains(&key) {
                key = format!("{n}_{suffix}");
                suffix += 1;
            }
            used.push(key);
        }
        used
    };
    match format {
        OutFormat::Table => println!("{}", names.join(" | ")),
        OutFormat::Csv => println!("{}", names.join(",")),
        OutFormat::Json => {} // every JSON line is self-describing
    }
    let mut first_batch: Option<std::time::Duration> = None;
    let mut rows = 0usize;
    let stdout = std::io::stdout();
    while let Some(mut batch) = stream.next_batch() {
        if first_batch.is_none() {
            first_batch = Some(started.elapsed());
        }
        let mut out = stdout.lock();
        for t in batch.drain() {
            rows += 1;
            if limit == 0 || rows <= limit {
                match format {
                    OutFormat::Table => writeln!(out, "{t}").map_err(|e| e.to_string())?,
                    OutFormat::Csv => {
                        let line = t
                            .values()
                            .iter()
                            .map(csv_field)
                            .collect::<Vec<_>>()
                            .join(",");
                        writeln!(out, "{line}").map_err(|e| e.to_string())?;
                    }
                    OutFormat::Json => {
                        let line = json_keys
                            .iter()
                            .zip(t.values())
                            .map(|(n, v)| format!("{}:{}", json_string(n), json_value(v)))
                            .collect::<Vec<_>>()
                            .join(",");
                        writeln!(out, "{{{line}}}").map_err(|e| e.to_string())?;
                    }
                }
            } else if rows == limit + 1 {
                // Keep machine-readable formats clean: the truncation
                // notice goes to stderr for csv/json.
                let note = "... (further rows counted, not printed; --limit 0 prints all)";
                match format {
                    OutFormat::Table => writeln!(out, "{note}").map_err(|e| e.to_string())?,
                    OutFormat::Csv | OutFormat::Json => eprintln!("{note}"),
                }
            }
        }
        // Flush per batch so the stream is visibly incremental.
        out.flush().map_err(|e| e.to_string())?;
    }
    drop(stream);
    let outcome = handle.outcome().map_err(|e| e.to_string())?;
    let total = started.elapsed();
    eprintln!(
        "{rows} tuples; first batch after {:.1} ms, drained in {:.1} ms \
         (engine response time {:.1} ms, {} processes, {} streams)",
        first_batch.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
        total.as_secs_f64() * 1e3,
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.metrics.processes,
        outcome.metrics.streams,
    );
    Ok(())
}

/// `mj serve`: expose a seeded-family [`Database`] over TCP with the
/// line-delimited JSON protocol of [`multijoin::server`]. Runs until
/// stdin closes or a `quit` line arrives, then drains gracefully
/// (in-flight queries finish; new requests get a typed `overloaded`
/// error; the listener closes).
fn cmd_serve(args: &Args) -> Result<(), String> {
    use multijoin::server::{Server, ServerConfig};

    let family = args.family()?;
    let k: usize = args.num("relations", 4)?;
    let tuples: usize = args.num("tuples", 2_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let procs: usize = args.num("procs", 8)?;
    let workers: usize = args.num("workers", ExecConfig::default().workers)?;
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let conn_workers: usize = args.num("conn-workers", ServerConfig::default().conn_workers)?;
    let max_clients: usize = args.num("max-clients", ServerConfig::default().max_clients)?;

    let instance = generate_family(family, k, tuples, seed).map_err(|e| e.to_string())?;
    let mut config = DbConfig::default();
    config.exec.workers = workers;
    config.planner = PlannerOptions::new(procs);
    let db = Database::open(config).map_err(|e| e.to_string())?;
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        let rel = instance.catalog.relation(name).map_err(|e| e.to_string())?;
        db.register(name, rel).map_err(|e| e.to_string())?;
    }
    db.analyze().map_err(|e| e.to_string())?;

    let db = Arc::new(db);
    let server = Server::start(
        db.clone(),
        ServerConfig {
            addr,
            conn_workers,
            max_clients,
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "serving `{family}` family ({k} relations x {tuples} tuples, seed {seed}) \
         on {} — {} engine workers, {} connection workers, {} clients max",
        server.local_addr(),
        workers,
        conn_workers,
        max_clients,
    );
    eprintln!(
        "protocol: one JSON object per line — {{\"query\": \"SELECT ...\"}}, \
         {{\"prepare\": {{\"query\": \"... ?1 ...\"}}}} / {{\"execute\": {{\"id\": N, \
         \"args\": [...]}}}} / {{\"close\": {{\"id\": N}}}} (add \"format\": \"bin\" \
         for binary columnar batches), or {{\"metrics\": \"json\"|\"prometheus\"}}; \
         HTTP scrapers may GET /metrics. Type `quit` (or close stdin) to drain and stop."
    );

    // Block on stdin: `quit` or EOF triggers the graceful drain. This is
    // the shutdown path — no signal handling needed.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!("draining: in-flight queries finish, new requests are rejected ...");
    server.shutdown();
    let stats = db.stats();
    eprintln!(
        "plan cache: {} hits, {} misses, {} evictions ({} queries served)",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_evictions,
        stats.queries_completed,
    );
    eprintln!("stopped.");
    Ok(())
}

fn cmd_shapes(args: &Args) -> Result<(), String> {
    let k: usize = args.num("relations", 10)?;
    for shape in Shape::ALL {
        let tree = build(shape, k).map_err(|e| e.to_string())?;
        println!(
            "--- {shape} (depth {}, right spine {}) ---",
            tree.depth(),
            tree.right_spine_len()
        );
        println!("{}", render::render(&tree));
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    if args.flags.contains_key("shape") {
        // Legacy fixed path: explicit shape and strategy.
        let (plan, shape, tuples, procs) = make_plan(args)?;
        let stats = plan.stats();
        println!("{plan}");
        println!(
            "shape {shape}, {tuples} tuples/relation, {procs} processors: \
             {} operation processes, {} tuple streams, {} pipeline edges",
            stats.operation_processes, stats.tuple_streams, stats.pipeline_edges
        );
        return Ok(());
    }
    // Planner explain: cost every (strategy, orientation) alternative.
    let (instance, planned, procs) = plan_family(args)?;
    println!(
        "query family `{}` over {} relations, {procs} processors",
        instance.family,
        instance.query.len()
    );
    println!("chosen join tree (phase-1 minimal total cost, winner's orientation):");
    for line in render::render(&planned.tree).lines() {
        println!("  {line}");
    }
    println!("costed alternatives (estimated schedule cost, §4.3 units):");
    print!("{}", planned.explain());
    println!(
        "winner: {} — estimated cost {:.0} (startup {:.0}, coordination {:.0}, total work {:.0})",
        planned.strategy(),
        planned.estimate.makespan,
        planned.estimate.startup,
        planned.estimate.coordination,
        planned.estimate.total_work,
    );
    println!("{}", planned.plan);
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let (plan, shape, tuples, procs) = make_plan(args)?;
    let params = SimParams::default();
    let sim = simulate(&plan, &params).map_err(|e| e.to_string())?;
    println!(
        "{shape} / {} on {procs} processors, {tuples} tuples/relation: \
         response {:.2}s, utilization {:.0}%",
        args.strategy()?,
        sim.response_time,
        100.0 * sim.utilization(procs)
    );
    if args.switch("gantt") {
        print!(
            "{}",
            render_gantt(&plan, &sim, 72, |j| char::from_digit((j % 10) as u32, 10))
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let shape = args.shape()?;
    let tuples: u64 = args.num("tuples", 40_000)?;
    let params = SimParams::default();
    println!("{shape}, {tuples} tuples/relation — simulated response times (s)");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "procs", "SP", "SE", "RD", "FP"
    );
    for procs in [20usize, 30, 40, 50, 60, 70, 80] {
        let mut row = format!("{procs:>6}");
        for strategy in Strategy::ALL {
            let tree = build(shape, 10).map_err(|e| e.to_string())?;
            let cards = node_cards(&tree, &UniformOneToOne { n: tuples });
            let costs = tree_costs(&tree, &cards, &CostModel::default());
            let input = GeneratorInput::new(&tree, &cards, &costs, procs);
            let plan = generate(strategy, &input).map_err(|e| e.to_string())?;
            let sim = simulate(&plan, &params).map_err(|e| e.to_string())?;
            row.push_str(&format!(" {:>8.2}", sim.response_time));
        }
        println!("{row}");
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if !args.flags.contains_key("shape") {
        return cmd_run_planner(args);
    }
    let shape = args.shape()?;
    let strategy = args.strategy()?;
    let k: usize = args.num("relations", 8)?;
    let tuples: usize = args.num("tuples", 2_000)?;
    let procs: usize = args.num("procs", 4)?;

    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(tuples, 42).generate_named("R", k) {
        catalog.register(name, rel);
    }
    let tree = build(shape, k).map_err(|e| e.to_string())?;
    let cards = node_cards(&tree, &UniformOneToOne { n: tuples as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let mut input = GeneratorInput::new(&tree, &cards, &costs, procs);
    input.allow_oversubscribe = true;
    let plan = generate(strategy, &input).map_err(|e| e.to_string())?;
    let binding = QueryBinding::regular(&tree, catalog.as_ref()).map_err(|e| e.to_string())?;
    let outcome = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default())
        .map_err(|e| e.to_string())?;

    let oracle = to_xra(&tree, 3, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .map_err(|e| e.to_string())?;
    let ok = outcome.relation.multiset_eq(&oracle);
    println!(
        "{shape} / {strategy}: {} tuples in {:.1} ms on {procs} logical processors \
         ({} processes, {} streams) — oracle {}",
        outcome.relation.len(),
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.metrics.processes,
        outcome.metrics.streams,
        if ok { "match" } else { "MISMATCH" }
    );
    if !ok {
        return Err("parallel result diverged from the sequential oracle".into());
    }
    Ok(())
}

/// Planner-driven execution: generate a `--query` family, let the planner
/// pick tree/strategy/allocation, run on the real engine, and report
/// estimated-vs-actual cardinalities per operator.
fn cmd_run_planner(args: &Args) -> Result<(), String> {
    let (instance, planned, procs) = plan_family(args)?;
    println!(
        "query family `{}`: planner chose {} on {procs} logical processors \
         (tree depth {}, right spine {}, estimated cost {:.0})",
        instance.family,
        planned.strategy(),
        planned.tree.depth(),
        planned.tree.right_spine_len(),
        planned.estimate.makespan,
    );
    let outcome = run_plan(
        &planned.plan,
        &planned.binding,
        instance.catalog.as_ref(),
        &ExecConfig::default(),
    )
    .map_err(|e| e.to_string())?;

    let oracle = planned
        .lowered
        .to_xra(&planned.tree, JoinAlgorithm::Simple)
        .map_err(|e| e.to_string())?
        .eval(instance.catalog.as_ref())
        .map_err(|e| e.to_string())?;
    let ok = outcome.relation.multiset_eq(&oracle);
    println!(
        "{} tuples in {:.1} ms ({} processes, {} streams) — oracle {}",
        outcome.relation.len(),
        outcome.elapsed.as_secs_f64() * 1e3,
        outcome.metrics.processes,
        outcome.metrics.streams,
        if ok { "match" } else { "MISMATCH" }
    );
    println!("estimated vs actual cardinalities per operator:");
    println!(
        "  {:>4} {:>12} {:>12} {:>8}",
        "op", "estimated", "actual", "q-err"
    );
    for (op, est, actual) in outcome.metrics.cardinality_report() {
        println!(
            "  {:>4} {:>12} {:>12} {:>8.2}",
            format!("op{op}"),
            est,
            actual,
            outcome.metrics.ops[op].q_error()
        );
    }
    println!("max q-error: {:.2}", outcome.metrics.max_q_error());
    if !ok {
        return Err("parallel result diverged from the sequential oracle".into());
    }
    Ok(())
}

fn cmd_optimize(args: &Args) -> Result<(), String> {
    let kind = args
        .flags
        .get("query")
        .map(String::as_str)
        .unwrap_or("chain");
    let k: usize = args.num("relations", 10)?;
    if k < 2 {
        return Err("--relations must be at least 2".into());
    }
    let graph = match kind {
        "chain" => QueryGraph::regular_chain(k, 10_000).map_err(|e| e.to_string())?,
        "skewed" => {
            let mut g = QueryGraph::new();
            for i in 0..k {
                g.add_relation(format!("R{i}"), 10u64.pow(1 + (i % 4) as u32) * 50)
                    .map_err(|e| e.to_string())?;
            }
            for i in 0..k - 1 {
                g.add_edge(i, i + 1, 1e-2).map_err(|e| e.to_string())?;
            }
            g
        }
        "star" => {
            let mut g = QueryGraph::new();
            let fact = g
                .add_relation("fact", 1_000_000)
                .map_err(|e| e.to_string())?;
            for d in 0..k - 1 {
                let dim = g
                    .add_relation(format!("dim{d}"), 100 + 50 * d as u64)
                    .map_err(|e| e.to_string())?;
                g.add_edge(fact, dim, 1e-3).map_err(|e| e.to_string())?;
            }
            g
        }
        other => {
            return Err(format!(
                "unknown query kind `{other}` (chain, skewed, star)"
            ))
        }
    };
    let cm = CostModel::default();
    let mut results: Vec<(&str, f64, Option<String>)> = Vec::new();
    let dp_cost = if k <= 18 {
        let dp = optimize_bushy(&graph, &cm).map_err(|e| e.to_string())?;
        let c = dp.total_cost;
        results.push(("bushy DP (optimum)", c, Some(render::render(&dp.tree))));
        Some(c)
    } else {
        println!("(skipping exhaustive DP above 18 relations)");
        None
    };
    let lin = optimize_linear(&graph, &cm).map_err(|e| e.to_string())?;
    results.push(("linear DP", lin.total_cost, None));
    let gr = greedy_tree(&graph, &cm).map_err(|e| e.to_string())?;
    results.push(("greedy", gr.total_cost, None));
    let ii = iterative_improvement(&graph, &cm, IterativeOptions::default())
        .map_err(|e| e.to_string())?;
    results.push(("iterative improvement", ii.total_cost, None));
    let sa =
        simulated_annealing(&graph, &cm, AnnealingOptions::default()).map_err(|e| e.to_string())?;
    results.push(("simulated annealing", sa.total_cost, None));
    let rnd = random_tree(&graph, &cm, 1).map_err(|e| e.to_string())?;
    results.push(("random tree", rnd.total_cost, None));

    println!("{kind} query over {k} relations (total cost, paper cost model):");
    for (name, cost, tree) in &results {
        match dp_cost {
            Some(opt) => println!("  {name:<22} {cost:>14.3e}  ({:.2}x optimum)", cost / opt),
            None => println!("  {name:<22} {cost:>14.3e}"),
        }
        if let Some(t) = tree {
            for line in t.lines() {
                println!("      {line}");
            }
        }
    }
    Ok(())
}

fn cmd_xra(args: &Args) -> Result<(), String> {
    let sub = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("print");
    match sub {
        "print" => {
            let shape = args.shape()?;
            let k: usize = args.num("relations", 10)?;
            let tree = build(shape, k).map_err(|e| e.to_string())?;
            let plan = to_xra(&tree, 3, JoinAlgorithm::Pipelining);
            println!("{}", text::print(&plan));
            Ok(())
        }
        "eval" => {
            let src = match args.positional.get(2) {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .map_err(|e| format!("cannot read stdin: {e}"))?;
                    buf
                }
            };
            let plan = text::parse(&src).map_err(|e| e.to_string())?;
            let k: usize = args.num("relations", 10)?;
            let tuples: usize = args.num("tuples", 1_000)?;
            let catalog = Arc::new(Catalog::new());
            for (name, rel) in WisconsinGenerator::new(tuples, 42).generate_named("R", k) {
                catalog.register(name, rel);
            }
            let out = plan.eval(catalog.as_ref()).map_err(|e| e.to_string())?;
            println!(
                "evaluated against {k} Wisconsin relations x {tuples} tuples: {} result tuples",
                out.len()
            );
            for t in out.iter().take(10) {
                println!("  {t}");
            }
            if out.len() > 10 {
                println!("  ... ({} more)", out.len() - 10);
            }
            Ok(())
        }
        other => Err(format!("unknown xra subcommand `{other}` (print, eval)")),
    }
}

fn main() -> ExitCode {
    // Exit quietly when stdout closes mid-write (e.g. `mj sweep | head`);
    // print other panics without the default backtrace noise.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{msg}");
    }));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let cmd = args.positional.first().map(String::as_str).unwrap_or("");
    let result = match cmd {
        "sql" => cmd_sql(&args),
        "serve" => cmd_serve(&args),
        "shapes" => cmd_shapes(&args),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        "sweep" => cmd_sweep(&args),
        "run" => cmd_run(&args),
        "optimize" => cmd_optimize(&args),
        "xra" => cmd_xra(&args),
        "" | "help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
