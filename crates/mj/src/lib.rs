//! # multijoin — parallel evaluation of multi-join queries
//!
//! A from-scratch Rust reproduction of **Wilschut, Flokstra & Apers,
//! "Parallel Evaluation of Multi-Join Queries", SIGMOD 1995**: four
//! strategies for parallelizing a multi-join query plan (SP, SE, RD, FP),
//! evaluated on a PRISMA/DB-style shared-nothing main-memory system.
//!
//! The workspace is layered; this facade re-exports every crate under one
//! name:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`relalg`] | `mj-relalg` | schemas, tuples, relations, predicates, XRA logical plans, sequential oracle |
//! | [`storage`] | `mj-storage` | Wisconsin generator, fragmentation, node-memory store, catalog |
//! | [`join`] | `mj-join` | simple and pipelining hash joins, custom join table |
//! | [`plan`] | `mj-plan` | join trees, Fig. 8 shapes, the paper's cost model, phase-1 optimizers, right-deep segmentation, text query parser |
//! | [`core`] | `mj-core` | the four strategies, proportional allocation, parallel plan IR, plan generator |
//! | [`exec`] | `mj-exec` | execution engine: fixed worker pool, generic [`PhysicalOp`](exec::PhysicalOp) operator framework (joins, filter, aggregate, limit), tuple streams, [`Database`](exec::Database) session facade, streaming [`QueryHandle`](exec::QueryHandle)s, cost-based [`Planner`](exec::Planner) with filter pushdown |
//! | [`sim`] | `mj-sim` | discrete-event simulator reproducing the 20–80-processor experiments |
//! | [`server`] | `mj-server` | query server: line-delimited JSON protocol over TCP, fixed acceptor/connection-worker pool, metrics exposition (`mj serve`) |
//!
//! ## Quickstart
//!
//! The session facade is the whole public API: open a
//! [`Database`](exec::Database), register relations, and issue text
//! queries — selections, grouped aggregates, and limits around the
//! parallel join pipeline. The system parses, binds, plans (tree shape,
//! strategy, processor allocation, filter pushdown — §3–§4 of the paper),
//! and streams the result back:
//!
//! ```
//! use multijoin::prelude::*;
//!
//! let db = Database::open(DbConfig::default()).unwrap();
//! for (name, rel) in WisconsinGenerator::new(1000, 7).generate_named("R", 3) {
//!     db.register(name, rel).unwrap();
//! }
//! db.analyze().unwrap();
//!
//! // A plain multi-join: every row survives (unique1 is a key).
//! let result = db
//!     .query("SELECT * FROM R0 JOIN R1 ON R0.unique1 = R1.unique1 \
//!             JOIN R2 ON R1.unique1 = R2.unique1")
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! assert_eq!(result.len(), 1000);
//!
//! // WHERE pushes below the joins (scan-side filtering), GROUP BY runs
//! // as a partitioned hash aggregate above them:
//! let grouped = db
//!     .query("SELECT R0.unique2, COUNT(*), MAX(R2.unique2) \
//!             FROM R0 JOIN R1 ON R0.unique1 = R1.unique1 \
//!             JOIN R2 ON R1.unique1 = R2.unique1 \
//!             WHERE R0.unique2 < 5 GROUP BY R0.unique2")
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! assert_eq!(grouped.len(), 5, "unique2 values 0..5 survive the filter");
//! assert_eq!(grouped.schema().attr(1).unwrap().name, "count");
//! assert!(grouped.iter().all(|t| t.int(1).unwrap() == 1), "unique2 is a key");
//! ```
//!
//! Results stream: take the handle's [`ResultStream`](exec::ResultStream)
//! instead of `collect()` to consume batches while the query runs, poll
//! [`status()`](exec::QueryHandle::status), or
//! [`cancel()`](exec::QueryHandle::cancel) mid-flight — the engine
//! quiesces (every task reports, fragments reclaimed) and stays reusable.
//! A `LIMIT` ends the whole pipeline early through the same machinery:
//! the satisfied limit operator raises the query's early-stop token and
//! every upstream task winds down successfully.
//!
//! ## Advanced: the low-level pipeline
//!
//! Every stage the facade drives is public, for experiments that need to
//! hold the pieces (phase-1 tree choice, strategy costing, manual
//! bindings):
//!
//! ```
//! use multijoin::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Data: five Wisconsin relations of 1 000 tuples.
//! let catalog = Arc::new(Catalog::new());
//! for (name, rel) in WisconsinGenerator::new(1000, 7).generate_named("R", 5) {
//!     catalog.register(name, rel);
//! }
//!
//! // 2. Phase 1: the minimal-total-cost join tree.
//! let graph = QueryGraph::regular_chain(5, 1000).unwrap();
//! let plan1 = optimize_bushy(&graph, &CostModel::default()).unwrap();
//!
//! // 3. Phase 2: parallelize with Full Parallel on 4 processors.
//! let costs = tree_costs(&plan1.tree, &plan1.node_cards, &CostModel::default());
//! let input = GeneratorInput::new(&plan1.tree, &plan1.node_cards, &costs, 4);
//! let plan2 = generate(Strategy::FP, &input).unwrap();
//!
//! // 4. Execute on real threads.
//! let binding = QueryBinding::regular(&plan1.tree, catalog.as_ref()).unwrap();
//! let outcome = run_plan(&plan2, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
//! assert_eq!(outcome.relation.len(), 1000);
//! ```

#![warn(missing_docs)]

pub use mj_core as core;
pub use mj_exec as exec;
pub use mj_join as join;
pub use mj_plan as plan;
pub use mj_relalg as relalg;
pub use mj_server as server;
pub use mj_sim as sim;
pub use mj_storage as storage;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mj_core::{
        estimate_schedule, generate, proportional_counts, validate_plan, GeneratorInput,
        OperandSource, ParallelPlan, PlanOp, ScheduleModel, Strategy,
    };
    pub use mj_exec::{
        generate_family, query_from_catalog, run_plan, Database, DbConfig, Engine, ExecConfig,
        MjError, MjResult, PhysicalOp, PipelineStage, PlannedQuery, Planner, PlannerOptions,
        QueryBinding, QueryFamily, QueryHandle, QueryOutcome, QueryStatus, ResultStream, StageKind,
        WorkerPool,
    };
    pub use mj_join::{pipelining_hash_join, simple_hash_join};
    pub use mj_plan::cost::tree_costs;
    pub use mj_plan::{
        greedy_tree, lower, optimize_bushy, optimize_linear, parse_query, segments, CostModel,
        JoinQuery, JoinTree, ParseError, QueryAst, QueryGraph, Shape, Span, UniformOneToOne,
    };
    pub use mj_relalg::{
        Attribute, DataType, EquiJoin, JoinAlgorithm, Predicate, Projection, Relation,
        RelationProvider, Schema, Tuple, Value, XraNode,
    };
    pub use mj_sim::{run_scenario, simulate, Scenario, SimParams};
    pub use mj_storage::{Catalog, FragmentedRelation, PayloadMode, WisconsinGenerator};
}
