//! Differential test for the query server: N concurrent TCP clients,
//! each running queries over the wire against one shared engine, must
//! return exactly the multiset the sequential XRA oracle computes —
//! on the chain, star, and skewed families, under pipelining, and with
//! rejected/failed requests mixed into the load.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use multijoin::exec::{
    chain_query_sql, generate_family, star_query_sql, Database, DbConfig, QueryFamily,
};
use multijoin::relalg::{JoinAlgorithm, Relation, RelationProvider, Value};
use multijoin::server::{Client, ClientError, Server, ServerConfig};

/// Opens a served Database over a seeded family instance; returns the db
/// handle (for the oracle) and the running server.
fn family_server(
    family: QueryFamily,
    k: usize,
    n: usize,
    seed: u64,
    config: DbConfig,
) -> (Arc<Database>, Server) {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Arc::new(Database::open(config).unwrap());
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    let server = Server::start(db.clone(), ServerConfig::default()).unwrap();
    (db, server)
}

/// Evaluates `text`'s sequential oracle on `db`'s catalog, canonically
/// sorted for multiset comparison.
fn oracle_rows(db: &Database, text: &str) -> Vec<Vec<Value>> {
    let relation: Relation = db
        .plan(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap();
    let mut rows: Vec<Vec<Value>> = relation.iter().map(|t| t.values().to_vec()).collect();
    rows.sort();
    rows
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Runs `clients` concurrent wire clients, each issuing every query in
/// `texts` `rounds` times, and asserts every reply is multiset-identical
/// to the oracle.
fn hammer(addr: SocketAddr, db: &Database, texts: &[String], clients: usize, rounds: usize) {
    let expected: Vec<Vec<Vec<Value>>> = texts.iter().map(|t| oracle_rows(db, t)).collect();
    let texts = Arc::new(texts.to_vec());
    let expected = Arc::new(expected);

    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let texts = texts.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
                for round in 0..rounds {
                    // Rotate the starting query per client so concurrent
                    // traffic mixes different plans at all times.
                    for i in 0..texts.len() {
                        let q = (c + round + i) % texts.len();
                        let reply = client
                            .query(&texts[q])
                            .unwrap_or_else(|e| panic!("client {c} query {q}: {e}"));
                        assert_eq!(
                            sorted(reply.rows),
                            expected[q],
                            "client {c} round {round} query {q} diverged from oracle"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn concurrent_clients_match_oracle_on_chain() {
    let (db, server) = family_server(QueryFamily::Chain, 4, 300, 11, DbConfig::default());
    let texts = vec![
        chain_query_sql(4),
        format!("{} WHERE R1.id < 150", chain_query_sql(4)),
        // No LIMIT here: which rows a limit keeps is execution-order
        // dependent, so it cannot be compared against the oracle.
        "SELECT R0.b, COUNT(*) FROM R0 JOIN R1 ON R0.id = R1.id GROUP BY R0.b".to_string(),
    ];
    hammer(server.local_addr(), &db, &texts, 8, 3);
}

#[test]
fn concurrent_clients_match_oracle_on_star() {
    let (db, server) = family_server(QueryFamily::Star, 4, 250, 13, DbConfig::default());
    let texts = vec![
        star_query_sql(4),
        format!("{} WHERE R0.key < 120", star_query_sql(4)),
    ];
    hammer(server.local_addr(), &db, &texts, 6, 3);
}

#[test]
fn concurrent_clients_match_oracle_on_skewed() {
    let (db, server) = family_server(QueryFamily::Skewed, 4, 300, 17, DbConfig::default());
    let texts = vec![
        chain_query_sql(4),
        format!("{} WHERE R2.a < 200", chain_query_sql(4)),
    ];
    hammer(server.local_addr(), &db, &texts, 6, 3);
}

#[test]
fn pipelined_wire_replies_match_oracle_in_order() {
    let (db, server) = family_server(QueryFamily::Chain, 3, 200, 19, DbConfig::default());
    let texts: Vec<String> = vec![
        chain_query_sql(3),
        format!("{} WHERE R0.id < 60", chain_query_sql(3)),
        format!("{} WHERE R1.id < 140", chain_query_sql(3)),
    ];
    let expected: Vec<_> = texts.iter().map(|t| oracle_rows(&db, t)).collect();

    let mut client = Client::connect(server.local_addr()).unwrap();
    // Fire everything before reading anything; replies must come back in
    // request order, each matching its own oracle.
    for t in &texts {
        client.send_query(t).unwrap();
    }
    for (i, exp) in expected.iter().enumerate() {
        let reply = client.collect_reply().unwrap();
        assert_eq!(&sorted(reply.rows), exp, "pipelined reply {i}");
    }
}

#[test]
fn failures_mixed_into_concurrent_load_do_not_poison_results() {
    let (db, server) = family_server(QueryFamily::Chain, 3, 200, 23, DbConfig::default());
    let addr = server.local_addr();
    let good = chain_query_sql(3);
    let expected = oracle_rows(&db, &good);

    let threads: Vec<_> = (0..6)
        .map(|c| {
            let good = good.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
                for round in 0..4 {
                    if (c + round) % 3 == 0 {
                        // A failing request (bind error) interleaved with
                        // the good ones.
                        match client.query("SELECT * FROM Nope JOIN R1 ON Nope.id = R1.id") {
                            Err(ClientError::Server(e)) => assert_eq!(e.code, "bind"),
                            other => panic!("expected bind error, got {other:?}"),
                        }
                    }
                    let reply = client.query(&good).unwrap();
                    assert_eq!(sorted(reply.rows), expected, "client {c} round {round}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
