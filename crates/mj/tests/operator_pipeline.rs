//! Differential tests for the physical-operator framework: WHERE / GROUP
//! BY / LIMIT queries executed by the parallel engine versus the
//! sequential XRA reference ([`PlannedQuery::oracle_xra`]), on the seeded
//! chain/star/skewed families — plus the LIMIT early-termination
//! quiescence contract (engine reusable, fragments reclaimed).

use multijoin::exec::{
    chain_query_sql, generate_family, Database, DbConfig, QueryFamily, StageKind,
};
use multijoin::relalg::{JoinAlgorithm, Relation, RelationProvider};

/// Opens a Database over a seeded family instance (relations re-registered
/// through the front door, statistics analyzed).
fn family_db(family: QueryFamily, k: usize, n: usize, seed: u64, config: DbConfig) -> Database {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Database::open(config).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    db
}

/// Runs `text` on the engine and checks the result against the sequential
/// oracle of the same plan (exact multiset equality; `text` must not carry
/// a LIMIT). Returns the row count.
fn assert_matches_oracle(db: &Database, text: &str) -> usize {
    let planned = db
        .plan(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)));
    assert!(!planned.has_limit(), "use the subset check for LIMIT");
    let oracle = planned
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap();
    let result = db
        .query(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .collect()
        .unwrap();
    assert!(
        result.multiset_eq(&oracle),
        "{text}: engine returned {} rows, oracle {} rows",
        result.len(),
        oracle.len()
    );
    result.len()
}

/// True if `sub` is a multiset subset of `sup`.
fn is_multisubset(sub: &Relation, sup: &Relation) -> bool {
    let mut a: Vec<_> = sub.tuples().to_vec();
    let mut b: Vec<_> = sup.tuples().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    let mut j = 0;
    'outer: for t in &a {
        while j < b.len() {
            match b[j].cmp(t) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[test]
fn filter_queries_match_oracle_on_every_family() {
    // Chain and skewed share the (a, b, id) schema; star has dims
    // (key, payload) and a fact (fk0.., measure).
    for family in [QueryFamily::Chain, QueryFamily::Skewed] {
        let db = family_db(family, 4, 400, 11, DbConfig::default());
        let base = chain_query_sql(4);
        // R0 holds 400 rows in the chain family but only 100 in skewed
        // (sizes alternate n/4, n, 2n): a 25-row id cut is selective in
        // both.
        let rows = assert_matches_oracle(&db, &format!("{base} WHERE R0.id < 25"));
        let all = assert_matches_oracle(&db, &base);
        assert!(rows < all, "{family:?}: the filter must be selective");
        // Multiple conjuncts across relations, range + equality shapes.
        assert_matches_oracle(
            &db,
            &format!("{base} WHERE R0.id < 200 AND R3.id >= 50 AND R1.a <> 3"),
        );
        // Literal-on-the-left comparisons bind mirrored.
        assert_matches_oracle(&db, &format!("{base} WHERE 100 > R2.id"));
        // Same-relation column-to-column predicate.
        assert_matches_oracle(&db, &format!("{base} WHERE R0.a < R0.b"));
    }
    let db = family_db(QueryFamily::Star, 4, 200, 7, DbConfig::default());
    assert_matches_oracle(
        &db,
        "SELECT R3.measure, R0.payload FROM R0 JOIN R3 ON R0.key = R3.fk0 \
         JOIN R1 ON R1.key = R3.fk1 JOIN R2 ON R2.key = R3.fk2 \
         WHERE R3.measure < 150 AND R1.payload >= 200",
    );
}

#[test]
fn aggregate_queries_match_oracle() {
    let db = family_db(QueryFamily::Chain, 3, 300, 3, DbConfig::default());
    let joins = "FROM R0 JOIN R1 ON R0.b = R1.a JOIN R2 ON R1.b = R2.a";
    // Grouped COUNT/SUM/MIN/MAX, group column interleaved with aggregates.
    assert_matches_oracle(
        &db,
        &format!("SELECT COUNT(*), R0.b, SUM(R2.id), MIN(R1.id), MAX(R1.id) {joins} GROUP BY R0.b"),
    );
    // Global aggregates (no GROUP BY): exactly one row.
    let rows = assert_matches_oracle(&db, &format!("SELECT COUNT(*), SUM(R1.id) {joins}"));
    assert_eq!(rows, 1);
    // Grouped-distinct: GROUP BY without aggregates.
    assert_matches_oracle(&db, &format!("SELECT R0.b {joins} GROUP BY R0.b"));
    // Filter below, aggregate above.
    assert_matches_oracle(
        &db,
        &format!("SELECT R0.b, COUNT(*) {joins} WHERE R1.id < 150 GROUP BY R0.b"),
    );
    // Multi-column grouping.
    assert_matches_oracle(
        &db,
        &format!("SELECT R0.b, R2.b, COUNT(*) {joins} GROUP BY R0.b, R2.b"),
    );
    // Duplicate aggregate calls get distinct output names.
    let planned = db
        .plan(&format!("SELECT SUM(R1.id), SUM(R1.id) {joins}"))
        .unwrap();
    let schema = planned.binding.stages().last().unwrap().schema.clone();
    assert_eq!(schema.attr(0).unwrap().name, "sum_id");
    assert_eq!(schema.attr(1).unwrap().name, "sum_id_2");
}

#[test]
fn pushdown_on_and_off_agree_and_stage_differs() {
    let mut no_push = DbConfig::default();
    no_push.planner.pushdown = false;
    let on = family_db(QueryFamily::Chain, 4, 300, 9, DbConfig::default());
    let off = family_db(QueryFamily::Chain, 4, 300, 9, no_push);
    let text = format!("{} WHERE R1.id < 60 AND R2.id < 250", chain_query_sql(4));

    let planned_on = on.plan(&text).unwrap();
    assert_eq!(planned_on.binding.scan_filters().len(), 2);
    assert!(planned_on
        .binding
        .stages()
        .iter()
        .all(|s| !matches!(s.kind, StageKind::Filter { .. })));

    let planned_off = off.plan(&text).unwrap();
    assert!(planned_off.binding.scan_filters().is_empty());
    assert!(planned_off
        .binding
        .stages()
        .iter()
        .any(|s| matches!(s.kind, StageKind::Filter { .. })));

    let r_on = on.query(&text).unwrap().collect().unwrap();
    let r_off = off.query(&text).unwrap().collect().unwrap();
    assert!(
        r_on.multiset_eq(&r_off),
        "pushdown changed the result: {} vs {} rows",
        r_on.len(),
        r_off.len()
    );
    // Both agree with the sequential oracle too.
    assert_matches_oracle(&on, &text);
    assert_matches_oracle(&off, &text);

    // The explain output names the pushed filters / the residual stage.
    assert!(planned_on.explain().contains("pushed scan filters"));
    assert!(planned_off.explain().contains("filter σ("));
}

#[test]
fn where_group_by_limit_streams_end_to_end() {
    // The acceptance-criterion query: SELECT g, COUNT(*) ... JOIN ...
    // WHERE ... GROUP BY g LIMIT k through the streaming session.
    let db = family_db(QueryFamily::Chain, 4, 500, 21, DbConfig::default());
    let text = format!(
        "SELECT R0.b, COUNT(*) {} WHERE R1.id < 300 GROUP BY R0.b LIMIT 7",
        &chain_query_sql(4)["SELECT * ".len()..]
    );
    let planned = db.plan(&text).unwrap();
    assert!(planned.has_limit());
    let oracle = planned
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap();
    let result = db.query(&text).unwrap().collect().unwrap();
    assert_eq!(result.len(), 7.min(oracle.len()));
    assert_eq!(result.schema().arity(), 2);
    assert_eq!(result.schema().attr(1).unwrap().name, "count");
    assert!(
        is_multisubset(&result, &oracle),
        "limited rows must come from the oracle's multiset"
    );
}

#[test]
fn limit_stops_the_pipeline_early_and_engine_stays_usable() {
    // A long chain with tiny batches: LIMIT 3 must terminate the query
    // long before the joins finish, successfully (not via the error
    // path), reclaim every fragment, and leave the engine reusable.
    let mut config = DbConfig::default();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 2;
    let db = family_db(QueryFamily::Chain, 5, 4_000, 5, config);
    let text = format!("{} LIMIT 3", chain_query_sql(5));

    for _ in 0..3 {
        let result = db.query(&text).unwrap().collect().unwrap();
        assert_eq!(result.len(), 3);
    }
    // Quiescent: every per-query namespace was reclaimed.
    assert_eq!(db.engine().store().total_bytes(), 0);
    // The engine still answers an unlimited query on the same pool.
    let full = db.query(&chain_query_sql(5)).unwrap().collect().unwrap();
    assert!(full.len() > 3);
    assert_eq!(db.engine().store().total_bytes(), 0);

    // LIMIT larger than the result passes everything through.
    let all = db
        .query(&format!("{} LIMIT 1000000", chain_query_sql(5)))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(all.len(), full.len());

    // LIMIT 0 yields an empty result, still successfully.
    let none = db
        .query(&format!("{} LIMIT 0", chain_query_sql(5)))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(none.len(), 0);
    assert_eq!(db.engine().store().total_bytes(), 0);
}

#[test]
fn aggregate_error_unwinds_without_hanging() {
    // MIN over an empty global group errors in the aggregate stage (same
    // contract as the sequential oracle); the failure must surface as an
    // error — not a hang — and the engine must stay usable.
    let db = family_db(QueryFamily::Chain, 3, 200, 13, DbConfig::default());
    let joins = "FROM R0 JOIN R1 ON R0.b = R1.a JOIN R2 ON R1.b = R2.a";
    let err = db
        .query(&format!("SELECT MIN(R1.id) {joins} WHERE R0.id < 0"))
        .unwrap()
        .collect()
        .unwrap_err();
    assert!(err.to_string().contains("MIN over empty"), "{err}");
    assert_eq!(db.engine().store().total_bytes(), 0);
    // COUNT over the same empty input succeeds with one zero row.
    let result = db
        .query(&format!("SELECT COUNT(*) {joins} WHERE R0.id < 0"))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.tuples()[0].int(0).unwrap(), 0);
}

#[test]
fn spanned_bind_errors_for_the_new_clauses() {
    let db = family_db(QueryFamily::Chain, 3, 100, 1, DbConfig::default());
    let cases: &[(&str, &str)] = &[
        (
            "SELECT * FROM R0 JOIN R1 ON R0.b = R1.a WHERE R0.id < R1.id",
            "only one relation",
        ),
        (
            "SELECT * FROM R0 JOIN R1 ON R0.b = R1.a WHERE 1 = 2",
            "must reference a column",
        ),
        (
            "SELECT * FROM R0 JOIN R1 ON R0.b = R1.a WHERE R0.nope = 1",
            "no column `nope`",
        ),
        (
            "SELECT * FROM R0 JOIN R1 ON R0.b = R1.a GROUP BY R0.b",
            "SELECT * cannot be combined with GROUP BY",
        ),
        (
            "SELECT R0.a, COUNT(*) FROM R0 JOIN R1 ON R0.b = R1.a GROUP BY R0.b",
            "must appear in GROUP BY",
        ),
        (
            "SELECT R0.a, COUNT(*) FROM R0 JOIN R1 ON R0.b = R1.a",
            "must appear in GROUP BY",
        ),
    ];
    for (text, frag) in cases {
        let err = db.query(text).unwrap_err();
        assert!(
            err.to_string().contains(frag),
            "{text}: `{err}` missing `{frag}`"
        );
        assert!(err.span().is_some(), "{text}: bind errors carry spans");
    }
}
