//! Cross-crate integration: the full two-phase pipeline — query graph →
//! phase-1 optimizer → phase-2 strategy → execution — and the paper's
//! claims about the optimizers.

use std::sync::Arc;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::prelude::*;

fn catalog(k: usize, n: usize) -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 31).generate_named("R", k) {
        catalog.register(name, rel);
    }
    catalog
}

#[test]
fn optimized_tree_executes_correctly() {
    let k = 8;
    let n = 200usize;
    let catalog = catalog(k, n);
    let graph = QueryGraph::regular_chain(k, n as u64).unwrap();

    for plan1 in [
        optimize_bushy(&graph, &CostModel::default()).unwrap(),
        optimize_linear(&graph, &CostModel::default()).unwrap(),
        greedy_tree(&graph, &CostModel::default()).unwrap(),
    ] {
        let tree = &plan1.tree;
        let oracle = to_xra(tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref())
            .expect("oracle");
        assert_eq!(oracle.len(), n);

        let cards = node_cards(tree, &UniformOneToOne { n: n as u64 });
        let costs = tree_costs(tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan2 = generate(Strategy::FP, &input).unwrap();
        let binding = QueryBinding::regular(tree, catalog.as_ref()).unwrap();
        let out = run_plan(&plan2, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
        assert!(out.relation.multiset_eq(&oracle));
    }
}

#[test]
fn bushy_dp_never_loses_to_linear_or_greedy() {
    // On several graph topologies with heterogeneous sizes.
    let cases: Vec<QueryGraph> = vec![
        QueryGraph::regular_chain(10, 5000).unwrap(),
        {
            // Star.
            let mut g = QueryGraph::new();
            let f = g.add_relation("F", 500_000).unwrap();
            for (i, card) in [100u64, 2_000, 40, 9_000].iter().enumerate() {
                let d = g.add_relation(format!("D{i}"), *card).unwrap();
                g.add_edge(f, d, 1.0 / *card as f64).unwrap();
            }
            g
        },
        {
            // Cycle with a chord.
            let mut g = QueryGraph::new();
            let ids: Vec<usize> = (0..6)
                .map(|i| {
                    g.add_relation(format!("T{i}"), 1000 + 300 * i as u64)
                        .unwrap()
                })
                .collect();
            for i in 0..6 {
                g.add_edge(ids[i], ids[(i + 1) % 6], 0.002).unwrap();
            }
            g.add_edge(ids[0], ids[3], 0.01).unwrap();
            g
        },
    ];
    for (i, g) in cases.iter().enumerate() {
        let bushy = optimize_bushy(g, &CostModel::default()).unwrap().total_cost;
        let linear = optimize_linear(g, &CostModel::default())
            .unwrap()
            .total_cost;
        let greedy = greedy_tree(g, &CostModel::default()).unwrap().total_cost;
        assert!(
            bushy <= linear * (1.0 + 1e-9),
            "case {i}: bushy {bushy} > linear {linear}"
        );
        assert!(
            bushy <= greedy * (1.0 + 1e-9),
            "case {i}: bushy {bushy} > greedy {greedy}"
        );
    }
}

#[test]
fn regular_chain_cost_is_shape_invariant_and_optimal() {
    // §4.1: every cartesian-free tree of the regular query costs (5k-6)N;
    // the optimizer must land exactly there.
    let n = 5000u64;
    let g = QueryGraph::regular_chain(10, n).unwrap();
    let best = optimize_bushy(&g, &CostModel::default()).unwrap();
    assert!((best.total_cost - 44.0 * n as f64).abs() < 1e-6);
    for shape in Shape::ALL {
        let tree = multijoin::plan::shapes::build(shape, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        assert!((costs.total - best.total_cost).abs() < 1e-6, "{shape}");
    }
}

#[test]
fn segmentation_consistency_across_optimizer_outputs() {
    use multijoin::plan::segment::segments;
    let g = QueryGraph::regular_chain(9, 100).unwrap();
    for plan1 in [
        optimize_bushy(&g, &CostModel::default()).unwrap(),
        optimize_linear(&g, &CostModel::default()).unwrap(),
        greedy_tree(&g, &CostModel::default()).unwrap(),
    ] {
        let seg = segments(&plan1.tree);
        let covered: usize = seg.segments.iter().map(|s| s.len()).sum();
        assert_eq!(covered, plan1.tree.join_count());
        assert!(!seg.waves().is_empty());
    }
}
