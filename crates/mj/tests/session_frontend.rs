//! End-to-end tests of the session facade: the text frontend (parse +
//! bind, spanned errors), the streaming result path (differential against
//! the sequential XRA oracle on all three seeded query families), and
//! quiescent cancellation.

use std::sync::Arc;

use multijoin::exec::{chain_query_sql, star_query_sql, QueryStatus};
use multijoin::prelude::*;
use multijoin::relalg::RelalgError;

/// Opens a database over a generated family instance, registered through
/// the front door.
fn db_for(family: QueryFamily, k: usize, n: usize, seed: u64) -> Database {
    let instance = generate_family(family, k, n, seed).expect("family");
    let db = Database::open(DbConfig::default()).expect("open");
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        let rel = instance.catalog.relation(name).expect("relation");
        db.register(name, rel).expect("register");
    }
    db.analyze().expect("analyze");
    db
}

#[test]
fn streamed_results_match_the_sequential_oracle_on_all_families() {
    for (family, seed) in [
        (QueryFamily::Chain, 11u64),
        (QueryFamily::Star, 12),
        (QueryFamily::Skewed, 13),
    ] {
        let k = 5;
        let db = db_for(family, k, 96, seed);
        let text = match family {
            QueryFamily::Star => star_query_sql(k),
            _ => chain_query_sql(k),
        };
        // Oracle: sequential XRA evaluation of the planner's lowering.
        let planned = db.plan(&text).expect("plan");
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, JoinAlgorithm::Simple)
            .expect("oracle plan")
            .eval(db.catalog().as_ref())
            .expect("oracle eval");

        // Streamed-and-collected parallel result.
        let mut handle = db.query(&text).expect("submit");
        let mut stream = handle.stream();
        let schema = stream.schema().clone();
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut batches = 0usize;
        while let Some(mut batch) = stream.next_batch() {
            tuples.extend(batch.drain());
            batches += 1;
        }
        drop(stream);
        handle.outcome().unwrap_or_else(|e| panic!("{family}: {e}"));
        let streamed = Relation::new_unchecked(schema, tuples);
        assert!(batches >= 1, "{family}: no batches streamed");
        assert!(
            streamed.multiset_eq(&oracle),
            "{family}: streamed result differs from the sequential oracle \
             ({} vs {} tuples)",
            streamed.len(),
            oracle.len()
        );
    }
}

#[test]
fn query_ast_path_matches_the_text_path() {
    let db = db_for(QueryFamily::Chain, 4, 80, 3);
    let text = chain_query_sql(4);
    let via_text = db.query(&text).unwrap().collect().unwrap();
    let (bound, _) = db.bind(&text).unwrap();
    let via_ast = db.query_ast(&bound).unwrap().collect().unwrap();
    assert!(via_text.multiset_eq(&via_ast));
}

#[test]
fn explicit_select_list_projects_and_orders() {
    let db = db_for(QueryFamily::Chain, 3, 64, 9);
    let result = db
        .query("SELECT R2.id, R0.id FROM R0 JOIN R1 ON R0.b = R1.a JOIN R2 ON R1.b = R2.a")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(result.schema().arity(), 2);
    assert_eq!(result.schema().attr(0).unwrap().name, "id");
    // Compare against the star query's full output narrowed by hand.
    let full = db.query(&chain_query_sql(3)).unwrap().collect().unwrap();
    assert_eq!(result.len(), full.len());
}

#[test]
fn cancellation_mid_stream_leaves_the_engine_quiescent_and_reusable() {
    let instance = generate_family(QueryFamily::Chain, 5, 4_000, 21).expect("family");
    // Tiny batches + capacity-1 channels guarantee the query is still in
    // flight (root blocked on client backpressure) when we cancel.
    let mut config = DbConfig::default();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 1;
    let db = Database::open(config).expect("open");
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();

    let text = chain_query_sql(5);
    let mut handle = db.query(&text).expect("submit");
    let mut stream = handle.stream();
    assert!(stream.next_batch().is_some(), "first batch must arrive");
    assert_eq!(handle.status(), QueryStatus::Running);
    handle.cancel();
    while stream.next_batch().is_some() {}
    drop(stream);
    let err = handle.outcome().expect_err("cancelled query must error");
    assert!(matches!(err, RelalgError::Canceled), "got {err}");

    // Quiescence: every fragment reclaimed, no tasks left on the pool,
    // and the worker set unchanged.
    let engine = db.engine();
    assert_eq!(engine.store().total_bytes(), 0, "fragments reclaimed");
    assert_eq!(engine.pool().queued(), 0, "no zombie tasks queued");
    assert_eq!(engine.pool().threads(), 2, "pool unchanged");

    // The same session immediately serves the same query to completion.
    let result = db.query(&text).unwrap().collect().unwrap();
    let planned = db.plan(&text).unwrap();
    let oracle = planned
        .lowered
        .to_xra(&planned.tree, JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap();
    assert!(result.multiset_eq(&oracle), "engine reusable after cancel");
}

#[test]
fn dropping_the_stream_cancels_the_query() {
    let db = db_for(QueryFamily::Chain, 4, 2_000, 5);
    let mut handle = db.query(&chain_query_sql(4)).unwrap();
    let mut stream = handle.stream();
    let _ = stream.next_batch();
    drop(stream); // live stream dropped -> implicit cancel
    match handle.outcome() {
        Err(RelalgError::Canceled) => {}
        // The query may legitimately have finished before the drop landed.
        Ok(_) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
    assert_eq!(db.engine().store().total_bytes(), 0);
}

// --- Frontend validation audit: errors, never panics ---

#[test]
fn zero_workers_and_zero_processors_are_config_errors() {
    let mut config = DbConfig::default();
    config.exec.workers = 0;
    assert!(matches!(Database::open(config), Err(MjError::Config(_))));

    let mut config = DbConfig::default();
    config.planner.processors = 0;
    assert!(matches!(Database::open(config), Err(MjError::Config(_))));

    // Direct planner use with zero processors errors too (no panic).
    let instance = generate_family(QueryFamily::Chain, 3, 32, 1).unwrap();
    assert!(Planner::new(PlannerOptions::new(0))
        .plan(&instance.query)
        .is_err());
}

#[test]
fn duplicate_registration_is_rejected_atomically() {
    let db = db_for(QueryFamily::Chain, 3, 32, 2);
    let schema = Schema::new(vec![Attribute::int("x")]).shared();
    let rel = Arc::new(Relation::new_unchecked(
        schema,
        vec![Tuple::from_ints(&[1])],
    ));
    let err = db.register("R0", rel).unwrap_err();
    assert!(
        matches!(err, MjError::DuplicateRelation(ref n) if n == "R0"),
        "{err}"
    );
    // The original arity-3 chain relation survives.
    assert_eq!(db.catalog().relation("R0").unwrap().schema().arity(), 3);
}

#[test]
fn querying_an_unregistered_relation_is_a_spanned_bind_error() {
    let db = db_for(QueryFamily::Chain, 3, 32, 4);
    let src = "SELECT * FROM R0 JOIN missing ON R0.b = missing.a";
    let err = db.query(src).unwrap_err();
    let span = err.span().expect("bind error carries a span");
    assert_eq!(&src[span.start..span.end], "missing");
    assert!(err.to_string().contains("unknown relation"), "{err}");
    // render() draws a caret under the offending token.
    let rendered = err.render(src);
    assert!(rendered.contains("^^^^^^^"), "{rendered}");
}

#[test]
fn parse_reject_table_via_the_facade() {
    let db = db_for(QueryFamily::Chain, 3, 32, 6);
    // (source, expected span start).
    let cases: &[(&str, usize)] = &[
        ("", 0),
        ("SELECT", 6),
        ("SELECT * FROM", 13),
        ("SELECT * FROM R0 JOIN R1", 24),
        ("SELECT * FROM R0 JOIN R1 ON R0.b R1.a", 33),
        ("SELECT * FROM R0 JOIN R1 ON b = R1.a", 30),
        ("SELECT * FROM R0; DROP TABLE R0", 16),
    ];
    for (src, start) in cases {
        let err = db.query(src).expect_err(src);
        assert!(matches!(err, MjError::Parse(_)), "{src}: {err}");
        assert_eq!(err.span().unwrap().start, *start, "{src}");
    }
}

#[test]
fn parse_accept_table_via_the_facade() {
    let db = db_for(QueryFamily::Chain, 4, 48, 8);
    let accept = [
        "SELECT * FROM R0 JOIN R1 ON R0.b = R1.a",
        "select * from R0 join R1 on R0.b = R1.a", // lowercase keywords
        "SELECT R0.id FROM R0 JOIN R1 ON R0.b = R1.a",
        "SELECT R1.a, R0.b FROM R0 JOIN R1 ON R0.b = R1.a",
        " SELECT\t*\nFROM R0 JOIN R1 ON R0.b = R1.a ", // whitespace
    ];
    for src in accept {
        let result = db.query(src).expect(src).collect().expect(src);
        assert!(!result.is_empty(), "{src}: empty result");
    }
}

#[test]
fn bind_rejects_type_mismatched_join_columns() {
    let db = Database::open(DbConfig::default()).unwrap();
    let ints = Schema::new(vec![Attribute::int("k")]).shared();
    let strs = Schema::new(vec![Attribute::str("k")]).shared();
    db.register(
        "A",
        Arc::new(Relation::new_unchecked(ints, vec![Tuple::from_ints(&[1])])),
    )
    .unwrap();
    db.register(
        "B",
        Arc::new(Relation::new_unchecked(
            strs,
            vec![Tuple::new(vec![Value::str("x")])],
        )),
    )
    .unwrap();
    let src = "SELECT * FROM A JOIN B ON A.k = B.k";
    let err = db.query(src).unwrap_err();
    assert!(matches!(err, MjError::Bind { .. }), "{err}");
    assert!(err.to_string().contains("types differ"), "{err}");
}
