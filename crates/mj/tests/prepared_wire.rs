//! Differential tests for prepared statements and the binary columnar
//! wire format: every `execute` over the wire must return exactly the
//! multiset the equivalent ad-hoc query and the sequential XRA oracle
//! produce — across families, parameter boundary values, result
//! formats, statement lifecycle errors, and catalog mutation between
//! prepare and execute.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use multijoin::exec::{
    chain_query_sql, generate_family, star_query_sql, Database, DbConfig, QueryFamily,
};
use multijoin::relalg::{JoinAlgorithm, Relation, RelationProvider, Value};
use multijoin::server::{Client, ClientError, Server, ServerConfig};

/// Opens a served Database over a seeded family instance; returns the db
/// handle (for the oracle) and the running server.
fn family_server(family: QueryFamily, k: usize, n: usize, seed: u64) -> (Arc<Database>, Server) {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Arc::new(Database::open(DbConfig::default()).unwrap());
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    let server = Server::start(db.clone(), ServerConfig::default()).unwrap();
    (db, server)
}

/// Evaluates `text`'s sequential oracle on `db`'s catalog, canonically
/// sorted for multiset comparison.
fn oracle_rows(db: &Database, text: &str) -> Vec<Vec<Value>> {
    let relation: Relation = db
        .plan(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap();
    let mut rows: Vec<Vec<Value>> = relation.iter().map(|t| t.values().to_vec()).collect();
    rows.sort();
    rows
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_timeout(addr, Duration::from_secs(10)).unwrap()
}

#[test]
fn prepared_executions_match_adhoc_and_oracle_across_families() {
    let cases = [
        (
            QueryFamily::Chain,
            300usize,
            11u64,
            chain_query_sql(4),
            "R1.id",
        ),
        (QueryFamily::Star, 250, 13, star_query_sql(4), "R0.key"),
        (QueryFamily::Skewed, 300, 17, chain_query_sql(4), "R2.a"),
    ];
    for (family, n, seed, base, filter_col) in cases {
        let (db, server) = family_server(family, 4, n, seed);
        let mut client = connect(server.local_addr());
        let param_q = format!("{base} WHERE {filter_col} < ?1");
        let prep = client.prepare(&param_q).unwrap();
        assert_eq!(prep.params, 1, "{family:?}");
        assert!(!prep.columns.is_empty(), "{family:?}");
        // Boundary-hugging arguments: empty result, one row in, midpoint,
        // last row, everything, past the key range.
        let n = n as i64;
        for arg in [-1, 0, 1, n / 2, n - 1, n, 2 * n] {
            let wire = client.execute(prep.id, &[arg]).unwrap();
            let literal = format!("{base} WHERE {filter_col} < {arg}");
            let adhoc = client.query(&literal).unwrap();
            let oracle = oracle_rows(&db, &literal);
            assert_eq!(
                sorted(wire.rows),
                oracle,
                "{family:?} arg {arg}: prepared diverged from oracle"
            );
            assert_eq!(
                sorted(adhoc.rows),
                oracle,
                "{family:?} arg {arg}: ad-hoc diverged from oracle"
            );
        }
        client.close(prep.id).unwrap();
    }
}

#[test]
fn zero_parameter_statements_prepare_and_execute() {
    let (db, server) = family_server(QueryFamily::Chain, 3, 150, 19);
    let mut client = connect(server.local_addr());
    let text = chain_query_sql(3);
    let prep = client.prepare(&text).unwrap();
    assert_eq!(prep.params, 0);
    let oracle = oracle_rows(&db, &text);
    for _ in 0..3 {
        let reply = client.execute(prep.id, &[]).unwrap();
        assert_eq!(sorted(reply.rows), oracle);
    }
    // Repeated executions of the same statement must be plan-cache hits:
    // preparing the same text again returns without a fresh plan.
    let before = db.stats();
    let again = client.prepare(&text).unwrap();
    assert_ne!(again.id, prep.id, "wire ids are per-prepare");
    let after = db.stats();
    assert!(
        after.plan_cache_hits > before.plan_cache_hits,
        "re-preparing identical text must hit the shared plan cache"
    );
}

#[test]
fn binary_and_json_formats_deliver_identical_streams() {
    let (db, server) = family_server(QueryFamily::Chain, 4, 300, 29);
    let mut client = connect(server.local_addr());
    let texts = [
        chain_query_sql(4),
        format!("{} WHERE R0.id < 150", chain_query_sql(4)),
        "SELECT R0.b, COUNT(*) FROM R0 JOIN R1 ON R0.id = R1.id GROUP BY R0.b".to_string(),
    ];
    for t in &texts {
        let json = client.query(t).unwrap();
        let bin = client.query_bin(t).unwrap();
        let oracle = oracle_rows(&db, t);
        assert_eq!(sorted(json.rows.clone()), oracle, "json path: {t}");
        assert_eq!(sorted(bin.to_rows()), oracle, "bin path: {t}");
        assert_eq!(bin.rows as usize, oracle.len(), "done frame row count: {t}");
    }
    // Prepared + binary on the same connection, interleaved with JSON.
    let prep = client
        .prepare(&format!("{} WHERE R1.id < ?1", chain_query_sql(4)))
        .unwrap();
    for arg in [0, 100, 300] {
        let b = client.execute_bin(prep.id, &[arg]).unwrap();
        let j = client.execute(prep.id, &[arg]).unwrap();
        assert_eq!(
            sorted(b.to_rows()),
            sorted(j.rows),
            "prepared bin/json divergence at arg {arg}"
        );
    }
}

#[test]
fn statement_lifecycle_errors_are_typed_and_connection_survives() {
    let (db, server) = family_server(QueryFamily::Chain, 3, 100, 31);
    let mut client = connect(server.local_addr());
    let good = chain_query_sql(3);
    let expected = oracle_rows(&db, &good);

    // Executing / closing an id that was never prepared.
    match client.execute(999, &[]) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "params");
            assert!(e.message.contains("unknown prepared statement"), "{e}");
        }
        other => panic!("expected params error, got {other:?}"),
    }
    match client.close(999) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "params"),
        other => panic!("expected params error, got {other:?}"),
    }

    // A parse error inside `prepare` carries its span code.
    match client.prepare("SELECT nonsense") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "parse"),
        other => panic!("expected parse error, got {other:?}"),
    }
    // Non-contiguous placeholder numbering is a bind error.
    match client.prepare(&format!("{good} WHERE R1.id < ?2")) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "bind");
            assert!(e.message.contains("contiguously"), "{e}");
        }
        other => panic!("expected bind error, got {other:?}"),
    }
    // Placeholders in an ad-hoc query are rejected with a pointer to
    // prepare/execute.
    match client.query(&format!("{good} WHERE R1.id < ?1")) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "bind");
            assert!(e.message.contains("prepared statement"), "{e}");
        }
        other => panic!("expected bind error, got {other:?}"),
    }

    // Arity mismatches on a live statement.
    let prep = client.prepare(&format!("{good} WHERE R1.id < ?1")).unwrap();
    for bad_args in [&[][..], &[1, 2][..]] {
        match client.execute(prep.id, bad_args) {
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, "params");
                assert!(e.message.contains("expects 1 argument"), "{e}");
            }
            other => panic!("expected params error, got {other:?}"),
        }
    }

    // Malformed execute frames are protocol-level rejections.
    for bad in [
        r#"{"execute": {"id": 1, "args": "x"}}"#,
        r#"{"execute": {"args": [1]}}"#,
        r#"{"execute": {"id": 1}, "options": {}}"#,
        r#"{"prepare": "q"}"#,
        r#"{"close": {}}"#,
    ] {
        client.send_line(bad).unwrap();
        let frame = client.read_frame().unwrap().unwrap();
        let err = frame
            .get("error")
            .unwrap_or_else(|| panic!("expected error frame for {bad}, got {frame:?}"));
        let code = format!("{:?}", err.get("code"));
        assert!(code.contains("protocol"), "{bad}: {code}");
    }

    // Executing after close is the same typed failure...
    client.close(prep.id).unwrap();
    match client.execute(prep.id, &[10]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "params"),
        other => panic!("expected params error, got {other:?}"),
    }
    // ...and the connection survives all of the above.
    let reply = client.query(&good).unwrap();
    assert_eq!(sorted(reply.rows), expected);
}

#[test]
fn catalog_mutation_between_prepare_and_execute_stays_correct() {
    let (db, server) = family_server(QueryFamily::Chain, 3, 200, 37);
    let mut client = connect(server.local_addr());
    let param_q = format!("{} WHERE R1.id < ?1", chain_query_sql(3));
    let literal = format!("{} WHERE R1.id < 120", chain_query_sql(3));

    let prep = client.prepare(&param_q).unwrap();
    let before = client.execute(prep.id, &[120]).unwrap();
    assert_eq!(sorted(before.rows), oracle_rows(&db, &literal));

    // Mutate the catalog under the live statement: a new registration and
    // a statistics refresh both bump the generation, so the cached plan
    // is stale and must be transparently re-prepared — never run as-is.
    let misses_before = db.stats().plan_cache_misses;
    db.register("Zed", db.catalog().relation("R0").unwrap())
        .unwrap();
    db.analyze().unwrap();

    let after = client.execute(prep.id, &[120]).unwrap();
    assert_eq!(
        sorted(after.rows),
        oracle_rows(&db, &literal),
        "stale prepared statement must re-plan, not run a stale plan"
    );
    assert!(
        db.stats().plan_cache_misses > misses_before,
        "staleness detection must register as a plan-cache miss"
    );
    // The re-prepared plan is cached: further executions keep working.
    let again = client.execute(prep.id, &[120]).unwrap();
    assert_eq!(sorted(again.rows), oracle_rows(&db, &literal));
}
