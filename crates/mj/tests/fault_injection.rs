//! Deterministic fault-injection sweep over the query-lifecycle guardrails.
//!
//! Drives the `faults` harness of `mj-exec` end to end through the session
//! facade: a seeded [`FaultPlan`] forces a panic, an allocation spike, or a
//! stall at a chosen step of every named operator of a realistic pipeline
//! (joins, residual filter, partitioned aggregate, limit), and each
//! injection must surface as the *correct typed* [`MjError`] — never a
//! process abort — with the shared fragment store drained, the engine
//! reusable, and concurrently running sibling queries unaffected.

use std::sync::Once;

use multijoin::exec::{
    generate_family, Database, DbConfig, FaultKind, FaultPlan, FaultPoint, MjError, QueryFamily,
    QueryOptions,
};
use multijoin::relalg::{Relation, RelationProvider};

/// Silences the default panic hook for injected panics only, so the sweep
/// does not spray backtraces while still reporting real test failures.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.contains("injected panic"))
                .or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.contains("injected panic"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// A session whose plans exercise every operator label the fault harness
/// can target: pushdown is disabled so the WHERE clause runs as a residual
/// `filter` stage, GROUP BY adds an `aggregate` stage, and a huge LIMIT
/// adds a `limit` stage without early-stopping the pipeline. Small batches
/// keep per-task step counts high so early-step injection points exist.
fn guardrail_db() -> Database {
    let instance = generate_family(QueryFamily::Chain, 4, 96, 0xFA17).expect("family");
    let mut config = DbConfig::default();
    config.planner.pushdown = false;
    config.exec.batch_size = 16;
    config.exec.stall_timeout = Some(std::time::Duration::from_millis(150));
    let db = Database::open(config).expect("open");
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).expect("relation"))
            .expect("register");
    }
    db.analyze().expect("analyze");
    db
}

/// Joins + WHERE + GROUP BY + LIMIT: every fault label has a stage.
fn pipeline_sql() -> String {
    "SELECT R0.a, COUNT(*) FROM R0 \
     JOIN R1 ON R0.b = R1.a \
     JOIN R2 ON R1.b = R2.a \
     JOIN R3 ON R2.b = R3.a \
     WHERE R0.id >= 0 GROUP BY R0.a LIMIT 1000000"
        .to_string()
}

fn collect_with(db: &Database, text: &str, opts: QueryOptions) -> Result<Relation, MjError> {
    db.query_with(text, opts)?.collect().map_err(MjError::from)
}

#[test]
fn fault_sweep_every_operator_and_kind_fails_clean() {
    quiet_injected_panics();
    let db = guardrail_db();
    let text = pipeline_sql();
    let baseline = collect_with(&db, &text, QueryOptions::default()).expect("baseline");
    assert!(!baseline.is_empty(), "pipeline produces rows");

    let kinds = [
        FaultKind::Panic,
        FaultKind::AllocSpike { bytes: 1 << 40 },
        FaultKind::Stall,
    ];
    for label in ["join", "filter", "aggregate", "limit"] {
        for kind in kinds {
            for at_step in [1u64, 3] {
                let ctx = format!("{label}/{kind:?}/step{at_step}");
                let plan =
                    FaultPlan::seeded(0xC0FFEE).with_point(FaultPoint::new(label, at_step, kind));
                // A generous budget the workload never reaches by itself,
                // so only the injected spike can trip it.
                let opts = QueryOptions::new()
                    .with_memory_budget(1 << 30)
                    .with_faults(plan);
                let err = collect_with(&db, &text, opts)
                    .expect_err(&format!("{ctx}: injected fault must surface"));
                match kind {
                    FaultKind::Panic => assert!(
                        matches!(err, MjError::Internal(_)),
                        "{ctx}: expected Internal, got {err}"
                    ),
                    FaultKind::AllocSpike { .. } => assert!(
                        matches!(err, MjError::ResourceExhausted { .. }),
                        "{ctx}: expected ResourceExhausted, got {err}"
                    ),
                    FaultKind::Stall => assert!(
                        matches!(err, MjError::Stalled(_)),
                        "{ctx}: expected Stalled, got {err}"
                    ),
                }
                // The faulted query left nothing behind...
                assert_eq!(
                    db.engine().store().total_bytes(),
                    0,
                    "{ctx}: fragments leaked"
                );
                // ...and the engine still answers the same query correctly.
                let after = collect_with(&db, &text, QueryOptions::default())
                    .unwrap_or_else(|e| panic!("{ctx}: engine unusable after fault: {e}"));
                assert!(
                    after.multiset_eq(&baseline),
                    "{ctx}: post-fault result diverged"
                );
            }
        }
    }
    let stats = db.stats();
    assert!(stats.panics_contained >= 8, "panic sweep counted");
    assert!(stats.budget_aborts >= 8, "spike sweep counted");
    assert!(stats.queries_stalled >= 8, "stall sweep counted");
}

#[test]
fn faulted_query_leaves_concurrent_sibling_intact() {
    quiet_injected_panics();
    let db = guardrail_db();
    let text = pipeline_sql();
    let baseline = collect_with(&db, &text, QueryOptions::default()).expect("baseline");

    std::thread::scope(|scope| {
        // Sibling: clean query racing the faulted one on the same pool.
        let sibling = scope.spawn(|| collect_with(&db, &text, QueryOptions::default()));
        let plan = FaultPlan::seeded(7).with_point(FaultPoint::new("join", 2, FaultKind::Panic));
        let err = collect_with(&db, &text, QueryOptions::new().with_faults(plan))
            .expect_err("injected panic must surface");
        assert!(matches!(err, MjError::Internal(_)), "got {err}");
        let sibling = sibling
            .join()
            .expect("sibling thread")
            .expect("sibling query");
        assert!(
            sibling.multiset_eq(&baseline),
            "sibling query was disturbed by a contained panic"
        );
    });
    assert_eq!(db.engine().store().total_bytes(), 0);
}

#[test]
fn cancel_parked_at_every_pipeline_stage_is_exactly_once() {
    quiet_injected_panics();
    let db = guardrail_db();
    let text = pipeline_sql();
    let baseline = collect_with(&db, &text, QueryOptions::default()).expect("baseline");

    // A stall parks the pipeline at the named stage; cancelling then must
    // win over the stall (exactly-once `Canceled`, fragments reclaimed,
    // engine reusable). `join@1` parks during scan/build, `join@3` during
    // probe/feed (join instances here finish within ~4 steps, so later
    // steps would never fire); the stage labels park the post-join
    // pipeline at filter, aggregate and limit.
    let park_points = [
        ("join", 1u64),
        ("join", 3),
        ("filter", 2),
        ("aggregate", 2),
        ("limit", 2),
    ];
    for (label, at_step) in park_points {
        let ctx = format!("cancel parked at {label}@{at_step}");
        let plan =
            FaultPlan::seeded(11).with_point(FaultPoint::new(label, at_step, FaultKind::Stall));
        let handle = db
            .query_with(&text, QueryOptions::new().with_faults(plan))
            .expect("submit");
        // Let the pipeline run into the stall, then cancel.
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.cancel();
        let err = handle.outcome().expect_err("cancelled query must error");
        assert!(
            matches!(MjError::from(err.clone()), MjError::Canceled),
            "{ctx}: expected Canceled, got {err}"
        );
        assert_eq!(db.engine().store().total_bytes(), 0, "{ctx}: leaked");
        let after = collect_with(&db, &text, QueryOptions::default()).expect("engine reusable");
        assert!(after.multiset_eq(&baseline), "{ctx}: post-cancel diverged");
    }
}

#[test]
fn empty_fault_plan_matches_the_oracle_on_all_families() {
    // Differential guard: compiling the harness in and passing an *empty*
    // plan must not perturb results on any seeded family.
    for (family, seed) in [
        (QueryFamily::Chain, 21u64),
        (QueryFamily::Star, 22),
        (QueryFamily::Skewed, 23),
    ] {
        let k = 5;
        let instance = generate_family(family, k, 80, seed).expect("family");
        let db = Database::open(DbConfig::default()).expect("open");
        let mut names = instance.catalog.names();
        names.sort();
        for name in &names {
            db.register(name, instance.catalog.relation(name).expect("relation"))
                .expect("register");
        }
        db.analyze().expect("analyze");
        let text = match family {
            QueryFamily::Star => multijoin::exec::star_query_sql(k),
            _ => multijoin::exec::chain_query_sql(k),
        };
        // Oracle: sequential XRA evaluation of the planner's own lowering.
        let planned = db.plan(&text).expect("plan");
        let oracle = planned
            .lowered
            .to_xra(&planned.tree, multijoin::relalg::JoinAlgorithm::Simple)
            .expect("oracle plan")
            .eval(db.catalog().as_ref())
            .expect("oracle eval");
        let empty = QueryOptions::new().with_faults(FaultPlan::new());
        let result = collect_with(&db, &text, empty).expect("query");
        assert!(
            result.multiset_eq(&oracle),
            "{family}: empty fault plan changed the result \
             ({} vs {} tuples)",
            result.len(),
            oracle.len()
        );
    }
}
