//! Differential tests for late materialization: ref-carrying narrow plans
//! (`LateMode::Always`) versus the sequential XRA oracle, on the seeded
//! chain/star/skewed families.
//!
//! `columnar_pipeline.rs` pins the eager columnar path; this suite forces
//! the late rewrite and stresses what it changed: joins move packed row
//! references instead of payloads, the root join gathers payloads from
//! the pinned registry, and everything downstream (stages, client
//! channel) must be byte-identical to the eager plan. Chunk boundaries,
//! every allocation strategy, LIMIT early-stop with refs still in
//! flight, and mid-stream cancellation all get the same treatment.

use multijoin::core::Strategy;
use multijoin::exec::{
    chain_query_sql, generate_family, Database, DbConfig, LateMode, QueryFamily, QueryStatus,
};
use multijoin::relalg::{JoinAlgorithm, RelalgError, Relation, RelationProvider};

/// Opens a Database over a seeded family instance.
fn family_db(family: QueryFamily, k: usize, n: usize, seed: u64, config: DbConfig) -> Database {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Database::open(config).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    db
}

/// Default config with the late rewrite forced on.
fn late_config() -> DbConfig {
    let mut config = DbConfig::default();
    config.exec.late = LateMode::Always;
    config
}

/// Evaluates `text`'s sequential oracle on `db`'s catalog.
fn oracle(db: &Database, text: &str) -> Relation {
    db.plan(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap()
}

/// Runs `text` on the late-materialized engine and asserts exact multiset
/// equality with the sequential oracle. Returns the row count.
fn assert_matches_oracle(db: &Database, text: &str) -> usize {
    let expected = oracle(db, text);
    let result = db
        .query(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .collect()
        .unwrap();
    assert!(
        result.multiset_eq(&expected),
        "{text}: late engine returned {} rows, oracle {} rows",
        result.len(),
        expected.len()
    );
    result.len()
}

#[test]
fn late_families_match_oracle_with_filters_and_group_by() {
    // Chain and skewed share the (a, b, id) schema; skewed concentrates
    // keys so long bucket chains carry many refs per probe row.
    for family in [QueryFamily::Chain, QueryFamily::Skewed] {
        let db = family_db(family, 4, 400, 29, late_config());
        let base = chain_query_sql(4);
        assert_matches_oracle(&db, &base);
        assert_matches_oracle(&db, &format!("{base} WHERE R0.id < 120 AND R2.a <> 5"));
        assert_matches_oracle(
            &db,
            &format!(
                "SELECT R0.b, COUNT(*), SUM(R2.id), MIN(R1.id), MAX(R3.id) \
                 {} WHERE R1.id < 260 GROUP BY R0.b",
                &base["SELECT * ".len()..]
            ),
        );
    }
    // Star: the fact relation's refs survive three dimension probes.
    let db = family_db(QueryFamily::Star, 4, 240, 41, late_config());
    assert_matches_oracle(
        &db,
        "SELECT R1.payload, COUNT(*), MAX(R3.measure) \
         FROM R0 JOIN R3 ON R0.key = R3.fk0 \
         JOIN R1 ON R1.key = R3.fk1 JOIN R2 ON R2.key = R3.fk2 \
         WHERE R3.measure < 180 GROUP BY R1.payload",
    );
    // The root gather ran: join-side emission is counted either way, so
    // assert the engine's ref machinery is observable through stats.
    assert!(
        db.stats().gather_rows > 0,
        "join gather counter must move under the late plan"
    );
}

#[test]
fn late_chunk_boundaries_are_invisible_across_batch_sizes() {
    // Refs must resolve identically no matter where quantum and batch
    // boundaries fall: odd sizes force flushes mid-fragment, mid-chunk,
    // and mid-probe, each leaving refs in `out` across steps.
    let text = format!("{} WHERE R1.id < 170", chain_query_sql(4));
    for batch_size in [3, 16, 129, 4096] {
        let mut config = late_config();
        config.exec.batch_size = batch_size;
        config.exec.channel_capacity = 2;
        let db = family_db(QueryFamily::Chain, 4, 350, 17, config);
        assert_matches_oracle(&db, &text);
    }
}

#[test]
fn late_forced_strategies_agree_on_the_result() {
    // All four allocation strategies run the same narrow rewrite through
    // different stream/materialization topologies; materialized narrow
    // intermediates are re-scanned bucket-wise with refs intact.
    let text = format!("{} WHERE R0.id < 200", chain_query_sql(4));
    let reference = {
        let db = family_db(QueryFamily::Chain, 4, 300, 53, DbConfig::default());
        oracle(&db, &text)
    };
    for strategy in Strategy::ALL {
        let mut config = late_config();
        config.planner.strategy = Some(strategy);
        config.planner.allow_oversubscribe = true;
        let db = family_db(QueryFamily::Chain, 4, 300, 53, config);
        let result = db.query(&text).unwrap().collect().unwrap();
        assert!(
            result.multiset_eq(&reference),
            "{strategy}: late plan diverged from the oracle ({} vs {} rows)",
            result.len(),
            reference.len()
        );
    }
}

#[test]
fn late_and_eager_return_identical_multisets() {
    // Same data, same query, both modes: the rewrite must be invisible in
    // the result. (`Never` forces the eager path even where `Auto` would
    // rewrite.)
    let text = format!("{} WHERE R0.id < 250", chain_query_sql(5));
    let eager = {
        let mut config = DbConfig::default();
        config.exec.late = LateMode::Never;
        let db = family_db(QueryFamily::Chain, 5, 300, 97, config);
        db.query(&text).unwrap().collect().unwrap()
    };
    let late = {
        let db = family_db(QueryFamily::Chain, 5, 300, 97, late_config());
        db.query(&text).unwrap().collect().unwrap()
    };
    assert!(
        late.multiset_eq(&eager),
        "late ({}) vs eager ({}) rows",
        late.len(),
        eager.len()
    );
}

#[test]
fn late_limit_early_stop_quiesces_and_reclaims_fragments() {
    // Early stop fires while refs are still unresolved in upstream joins;
    // the pinned registry must not leak and reclaim stays exact.
    let mut config = late_config();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 2;
    let db = family_db(QueryFamily::Chain, 5, 3_000, 71, config);
    let base = chain_query_sql(5);

    for _ in 0..2 {
        let got = db
            .query(&format!("{base} LIMIT 5"))
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(db.engine().store().total_bytes(), 0, "exact reclaim");
    }
    // The limited rows must come from the true (resolved) result.
    let full = oracle(&db, &base);
    let limited = db
        .query(&format!("{base} LIMIT 5"))
        .unwrap()
        .collect()
        .unwrap();
    for t in limited.tuples() {
        assert!(
            full.tuples().contains(t),
            "limited row {t:?} not in the full result"
        );
    }
    let all = db.query(&base).unwrap().collect().unwrap();
    assert!(all.multiset_eq(&full));
    assert_eq!(db.engine().store().total_bytes(), 0);
}

#[test]
fn late_mid_stream_cancel_quiesces_with_exact_reclaim() {
    // Cancel with refs in flight: narrow batches die with their channels,
    // the registry dies with the query, and the session keeps serving.
    let mut config = late_config();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 1;
    let db = family_db(QueryFamily::Chain, 5, 4_000, 83, config);
    let text = chain_query_sql(5);

    let mut handle = db.query(&text).expect("submit");
    let mut stream = handle.stream();
    assert!(stream.next_batch().is_some(), "first batch must arrive");
    assert_eq!(handle.status(), QueryStatus::Running);
    handle.cancel();
    while stream.next_batch().is_some() {}
    drop(stream);
    let err = handle.outcome().expect_err("cancelled query must error");
    assert!(matches!(err, RelalgError::Canceled), "got {err}");

    let engine = db.engine();
    assert_eq!(engine.store().total_bytes(), 0, "fragments reclaimed");
    assert_eq!(engine.pool().queued(), 0, "no zombie tasks queued");
    assert_eq!(engine.pool().threads(), 2, "pool unchanged");

    // The same session then serves the query to completion, correctly.
    assert_matches_oracle(&db, &text);
    assert_eq!(engine.store().total_bytes(), 0);
}

#[test]
fn late_budget_accounting_returns_to_zero() {
    // The registry's pinned payload bytes are charged for the query's
    // lifetime and credited at teardown; a completed query leaves the
    // budget exactly where it started.
    let db = family_db(QueryFamily::Chain, 4, 500, 11, late_config());
    let text = chain_query_sql(4);
    let before = db.stats();
    assert_matches_oracle(&db, &text);
    let after = db.stats();
    assert_eq!(
        before.queries_failed, after.queries_failed,
        "no hidden failures"
    );
    assert!(
        after.batch_pool_takes >= after.batch_pool_misses,
        "pool counters stay coherent ({} takes, {} misses)",
        after.batch_pool_takes,
        after.batch_pool_misses
    );
    assert!(
        after.gather_rows > before.gather_rows,
        "join emission gathers are counted"
    );
}
