//! Differential tests for the columnar execution path: the vectorized
//! engine (columnar batches + selection vectors end-to-end) versus the
//! sequential XRA oracle, on the seeded chain/star/skewed families.
//!
//! The row-era suite (`operator_pipeline.rs`) pins operator semantics;
//! this one stresses the surfaces the columnar rewrite added: chunk
//! boundaries at awkward batch sizes, both join algorithms over the same
//! key columns, every allocation strategy, post-selection metrics
//! accounting, LIMIT early-stop, and mid-stream cancellation with exact
//! fragment reclaim.

use multijoin::exec::{
    chain_query_sql, generate_family, Database, DbConfig, OpMetricsKind, QueryFamily, QueryStatus,
};
use multijoin::relalg::{JoinAlgorithm, RelalgError, Relation, RelationProvider};

/// Opens a Database over a seeded family instance.
fn family_db(family: QueryFamily, k: usize, n: usize, seed: u64, config: DbConfig) -> Database {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Database::open(config).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    db
}

/// Evaluates `text`'s sequential oracle on `db`'s catalog.
fn oracle(db: &Database, text: &str) -> Relation {
    db.plan(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .oracle_xra(JoinAlgorithm::Simple)
        .unwrap()
        .eval(db.catalog().as_ref())
        .unwrap()
}

/// Runs `text` on the columnar engine and asserts exact multiset equality
/// with the sequential oracle. Returns the row count.
fn assert_matches_oracle(db: &Database, text: &str) -> usize {
    let expected = oracle(db, text);
    let result = db
        .query(text)
        .unwrap_or_else(|e| panic!("{}", e.render(text)))
        .collect()
        .unwrap();
    assert!(
        result.multiset_eq(&expected),
        "{text}: engine returned {} rows, oracle {} rows",
        result.len(),
        expected.len()
    );
    result.len()
}

#[test]
fn chunk_boundaries_are_invisible_across_batch_sizes() {
    // Columnar operands deliver chunk-at-a-time and the driver paces rows
    // per scheduling quantum; odd batch sizes force splits at every
    // boundary (mid-fragment, mid-chunk, mid-probe). The result must not
    // depend on any of it.
    let text = format!("{} WHERE R1.id < 170", chain_query_sql(4));
    for batch_size in [3, 16, 129, 4096] {
        let mut config = DbConfig::default();
        config.exec.batch_size = batch_size;
        config.exec.channel_capacity = 2;
        let db = family_db(QueryFamily::Chain, 4, 350, 17, config);
        assert_matches_oracle(&db, &text);
    }
}

#[test]
fn families_with_filters_and_group_by_match_oracle() {
    // Chain and skewed share the (a, b, id) schema; skewed concentrates
    // keys so probe batches hit long bucket chains.
    for family in [QueryFamily::Chain, QueryFamily::Skewed] {
        let db = family_db(family, 4, 400, 29, DbConfig::default());
        let base = chain_query_sql(4);
        assert_matches_oracle(&db, &format!("{base} WHERE R0.id < 120 AND R2.a <> 5"));
        assert_matches_oracle(
            &db,
            &format!(
                "SELECT R0.b, COUNT(*), SUM(R2.id), MIN(R1.id), MAX(R3.id) \
                 {} WHERE R1.id < 260 GROUP BY R0.b",
                &base["SELECT * ".len()..]
            ),
        );
    }
    // Star: a fact relation probing three dimension builds.
    let db = family_db(QueryFamily::Star, 4, 240, 41, DbConfig::default());
    assert_matches_oracle(
        &db,
        "SELECT R1.payload, COUNT(*), MAX(R3.measure) \
         FROM R0 JOIN R3 ON R0.key = R3.fk0 \
         JOIN R1 ON R1.key = R3.fk1 JOIN R2 ON R2.key = R3.fk2 \
         WHERE R3.measure < 180 GROUP BY R1.payload",
    );
}

#[test]
fn forced_strategies_agree_on_the_columnar_result() {
    // All four allocation strategies drive the same columnar kernels
    // through different stream/materialization topologies; each must
    // reproduce the oracle exactly.
    let text = format!("{} WHERE R0.id < 200", chain_query_sql(4));
    let reference = {
        let db = family_db(QueryFamily::Chain, 4, 300, 53, DbConfig::default());
        oracle(&db, &text)
    };
    for strategy in multijoin::core::Strategy::ALL {
        let mut config = DbConfig::default();
        config.planner.strategy = Some(strategy);
        config.planner.allow_oversubscribe = true;
        let db = family_db(QueryFamily::Chain, 4, 300, 53, config);
        let result = db.query(&text).unwrap().collect().unwrap();
        assert!(
            result.multiset_eq(&reference),
            "{strategy}: diverged from the oracle ({} vs {} rows)",
            result.len(),
            reference.len()
        );
    }
}

#[test]
fn metrics_count_rows_after_selection() {
    // `tuples_out` is counted at output-flush time — after the selection
    // vector has dropped non-qualifying rows — so a selective residual
    // filter must report fewer rows out than in.
    let mut config = DbConfig::default();
    config.planner.pushdown = false; // keep the filter as a pipeline stage
    let db = family_db(QueryFamily::Chain, 3, 300, 61, config);
    let text = format!("{} WHERE R0.id < 30", chain_query_sql(3));
    let expected = oracle(&db, &text).len() as u64;

    let mut handle = db.query(&text).unwrap();
    let mut stream = handle.stream();
    let mut rows = 0usize;
    while let Some(batch) = stream.next_batch() {
        rows += batch.len();
    }
    drop(stream);
    let outcome = handle.outcome().unwrap();
    let filter = outcome
        .metrics
        .ops
        .iter()
        .find(|o| o.kind == OpMetricsKind::Filter)
        .expect("residual filter stage present");
    assert_eq!(filter.tuples_out, expected, "post-selection row count");
    assert!(
        filter.tuples_out < filter.tuples_in[0],
        "selective filter must shrink the stream ({} -> {})",
        filter.tuples_in[0],
        filter.tuples_out
    );
    assert_eq!(rows as u64, expected);
    assert!(
        outcome.metrics.peak_bytes > 0,
        "columnar buffers and build tables are charged to the budget"
    );
}

#[test]
fn limit_early_stop_quiesces_and_reclaims_fragments() {
    let mut config = DbConfig::default();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 2;
    let db = family_db(QueryFamily::Chain, 5, 3_000, 71, config);
    let base = chain_query_sql(5);

    for _ in 0..2 {
        let got = db
            .query(&format!("{base} LIMIT 5"))
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(got.len(), 5);
        // Early stop is the *successful* path: every fragment namespace
        // is reclaimed, exactly.
        assert_eq!(db.engine().store().total_bytes(), 0, "exact reclaim");
    }
    // The limited rows must come from the true result (subset check: a
    // LIMIT picks a nondeterministic prefix).
    let full = oracle(&db, &base);
    let limited = db
        .query(&format!("{base} LIMIT 5"))
        .unwrap()
        .collect()
        .unwrap();
    for t in limited.tuples() {
        assert!(
            full.tuples().contains(t),
            "limited row {t:?} not in the full result"
        );
    }
    // And the engine still answers the unlimited query on the same pool.
    let all = db.query(&base).unwrap().collect().unwrap();
    assert!(all.multiset_eq(&full));
    assert_eq!(db.engine().store().total_bytes(), 0);
}

#[test]
fn mid_stream_cancel_quiesces_with_exact_fragment_reclaim() {
    // Tiny batches + capacity-1 channels guarantee the query is still in
    // flight (root blocked on client backpressure) when we cancel.
    let mut config = DbConfig::default();
    config.exec.workers = 2;
    config.exec.batch_size = 16;
    config.exec.channel_capacity = 1;
    let db = family_db(QueryFamily::Chain, 5, 4_000, 83, config);
    let text = chain_query_sql(5);

    let mut handle = db.query(&text).expect("submit");
    let mut stream = handle.stream();
    assert!(stream.next_batch().is_some(), "first batch must arrive");
    assert_eq!(handle.status(), QueryStatus::Running);
    handle.cancel();
    while stream.next_batch().is_some() {}
    drop(stream);
    let err = handle.outcome().expect_err("cancelled query must error");
    assert!(matches!(err, RelalgError::Canceled), "got {err}");

    // Quiescence: fragment reclaim is exact, no zombie tasks, pool intact.
    let engine = db.engine();
    assert_eq!(engine.store().total_bytes(), 0, "fragments reclaimed");
    assert_eq!(engine.pool().queued(), 0, "no zombie tasks queued");
    assert_eq!(engine.pool().threads(), 2, "pool unchanged");

    // The same session then serves the query to completion, correctly.
    assert_matches_oracle(&db, &text);
    assert_eq!(engine.store().total_bytes(), 0);
}
