//! Cross-backend integration: the threaded engine and the simulator
//! interpret the same plans; their structural accounting must agree, and
//! the simulator must reproduce the paper's qualitative findings.

use std::sync::Arc;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;

#[test]
fn engine_metrics_match_plan_stats() {
    let k = 6;
    let n = 200usize;
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 8).generate_named("R", k) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::WideBushy, k).unwrap();
    let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    for strategy in Strategy::ALL {
        let input = GeneratorInput::new(&tree, &cards, &costs, 5);
        let plan = generate(strategy, &input).unwrap();
        let stats = plan.stats();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let out = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
        assert_eq!(
            out.metrics.processes, stats.operation_processes,
            "{strategy}: engine spawned a different number of operation processes"
        );
        assert_eq!(out.metrics.streams, stats.tuple_streams, "{strategy}");
        // And the same plan must simulate cleanly.
        let sim = simulate(&plan, &SimParams::default()).unwrap();
        assert!(sim.response_time > 0.0);
        assert_eq!(sim.spans.len(), plan.ops.len());
    }
}

#[test]
fn simulator_reproduces_headline_findings() {
    let params = SimParams::default();
    let run = |shape, strategy, tuples, procs| {
        run_scenario(&Scenario::paper(shape, strategy, tuples, procs), &params)
            .unwrap()
            .response_time
    };

    // 1. SP=SE=RD on left-linear trees (Fig. 9).
    let sp = run(Shape::LeftLinear, Strategy::SP, 5_000, 40);
    let se = run(Shape::LeftLinear, Strategy::SE, 5_000, 40);
    let rd = run(Shape::LeftLinear, Strategy::RD, 5_000, 40);
    assert!((se / sp - 1.0).abs() < 0.02 && (rd / sp - 1.0).abs() < 0.02);

    // 2. SP degrades with processors on small problems; less on large.
    let degradation_5k = run(Shape::LeftLinear, Strategy::SP, 5_000, 80)
        / run(Shape::LeftLinear, Strategy::SP, 5_000, 20);
    let degradation_40k = run(Shape::LeftLinear, Strategy::SP, 40_000, 80)
        / run(Shape::LeftLinear, Strategy::SP, 40_000, 30);
    assert!(
        degradation_5k > 1.5,
        "5K SP should degrade: {degradation_5k}"
    );
    assert!(
        degradation_40k < degradation_5k,
        "40K degrades less than 5K"
    );

    // 3. FP wins at scale on every shape at 5K (Fig. 14's 5K column is
    //    dominated by FP/RD at high processor counts).
    for shape in Shape::ALL {
        let fp = run(shape, Strategy::FP, 5_000, 80);
        let sp80 = run(shape, Strategy::SP, 5_000, 80);
        assert!(fp < sp80, "{shape}: FP {fp} !< SP {sp80}");
    }

    // 4. SE wins the wide bushy 40K experiment (Fig. 11).
    let se40 = run(Shape::WideBushy, Strategy::SE, 40_000, 80);
    let fp40 = run(Shape::WideBushy, Strategy::FP, 40_000, 80);
    let sp40 = run(Shape::WideBushy, Strategy::SP, 40_000, 80);
    assert!(se40 < fp40 && se40 < sp40, "SE80 wins wide bushy 40K");
    // "FP80 gets very close to SE80".
    assert!(fp40 / se40 < 1.35, "FP stays close: {}", fp40 / se40);

    // 5. RD wins the right bushy 40K experiment (Fig. 12).
    let rd40 = run(Shape::RightBushy, Strategy::RD, 40_000, 80);
    for other in [Strategy::SP, Strategy::SE, Strategy::FP] {
        let t = run(Shape::RightBushy, other, 40_000, 80);
        assert!(rd40 < t, "RD beats {other} on right bushy 40K");
    }

    // 6. RD coincides with FP on right-linear trees (Fig. 13); SE with SP.
    let rd_rl = run(Shape::RightLinear, Strategy::RD, 40_000, 60);
    let fp_rl = run(Shape::RightLinear, Strategy::FP, 40_000, 60);
    assert!(
        (rd_rl / fp_rl - 1.0).abs() < 0.25,
        "RD~FP: {rd_rl} vs {fp_rl}"
    );
    let se_rl = run(Shape::RightLinear, Strategy::SE, 40_000, 60);
    let sp_rl = run(Shape::RightLinear, Strategy::SP, 40_000, 60);
    assert!((se_rl / sp_rl - 1.0).abs() < 0.02);

    // 7. Bushy trees give the best minima (Fig. 14 discussion).
    let best = |shape: Shape, tuples: u64| -> f64 {
        let mut best = f64::INFINITY;
        for strategy in Strategy::ALL {
            for procs in [20usize, 40, 60, 80] {
                if tuples > 5_000 && procs < 30 {
                    continue;
                }
                best = best.min(run(shape, strategy, tuples, procs));
            }
        }
        best
    };
    let bushy_best = best(Shape::WideBushy, 40_000);
    let linear_best = best(Shape::LeftLinear, 40_000);
    assert!(
        bushy_best < linear_best,
        "bushy {bushy_best} < linear {linear_best}"
    );
}

#[test]
fn oversubscribed_plans_agree_between_backends() {
    // Host-scale plans (2 processors, 5 joins) run on both backends.
    let k = 6;
    let n = 150usize;
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 21).generate_named("R", k) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::RightBushy, k).unwrap();
    let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let mut input = GeneratorInput::new(&tree, &cards, &costs, 2);
    input.allow_oversubscribe = true;
    for strategy in Strategy::ALL {
        let plan = generate(strategy, &input).unwrap();
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        let out = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).unwrap();
        assert_eq!(out.relation.len(), n, "{strategy}");
        let sim = simulate(&plan, &SimParams::default()).unwrap();
        assert!(sim.response_time > 0.0, "{strategy}");
    }
}
