//! Property-based tests over the core invariants of the reproduction.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties run on a small seeded-PRNG harness: every case is
//! generated from a deterministic [`StdRng`] stream, so failures are
//! reproducible by seed. The properties themselves are unchanged from the
//! original proptest suite, plus the scratch-reuse property for
//! `project_concat_into`.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use multijoin::core::allocation::discretization_error;
use multijoin::core::strategy::Strategy;
use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::plan::segment::segments;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;
use multijoin::relalg::expr::{ArithOp, Expr as ScalarExpr};
use multijoin::relalg::ops::nested_loop_join;
use multijoin::relalg::ops::{AggFunc, AggSpec};
use multijoin::relalg::predicate::CmpOp;
use multijoin::relalg::text;

const CASES: usize = 64;

/// Runs `body` for `CASES` deterministic seeds, labelling failures.
fn for_cases(name: &str, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (case as u64) << 8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property `{name}` failed at case {case}: {e:?}");
        }
    }
}

// ---- random generators (the former proptest strategies) ----

fn arb_string(rng: &mut StdRng, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..max + 1);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

fn arb_ident(rng: &mut StdRng) -> String {
    let head = b"abcdefghijklmnopqrstuvwxyz";
    let tail = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(head[rng.gen_range(0..head.len())] as char);
    s.push_str(&arb_string(rng, tail, 0, 8));
    s
}

fn arb_scalar(rng: &mut StdRng, depth: usize) -> ScalarExpr {
    if depth == 0 || rng.gen_range(0..3) > 0 {
        match rng.gen_range(0..3) {
            0 => ScalarExpr::Attr(rng.gen_range(0..8usize)),
            1 => ScalarExpr::Lit(Value::Int(rng.gen::<u64>() as i64)),
            _ => ScalarExpr::Lit(Value::Str(arb_string(rng, b"abcdefghij' ", 0, 12).into())),
        }
    } else {
        let op = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Mod][rng.gen_range(0..4usize)];
        ScalarExpr::Arith(
            Box::new(arb_scalar(rng, depth - 1)),
            op,
            Box::new(arb_scalar(rng, depth - 1)),
        )
    }
}

fn arb_predicate(rng: &mut StdRng, depth: usize) -> Predicate {
    if depth == 0 || rng.gen_range(0..3) > 0 {
        if rng.gen_range(0..4) == 0 {
            Predicate::True
        } else {
            let op = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][rng.gen_range(0..6usize)];
            Predicate::Cmp {
                left: arb_scalar(rng, 2),
                op,
                right: arb_scalar(rng, 2),
            }
        }
    } else {
        match rng.gen_range(0..3) {
            0 => Predicate::And(
                Box::new(arb_predicate(rng, depth - 1)),
                Box::new(arb_predicate(rng, depth - 1)),
            ),
            1 => Predicate::Or(
                Box::new(arb_predicate(rng, depth - 1)),
                Box::new(arb_predicate(rng, depth - 1)),
            ),
            _ => Predicate::Not(Box::new(arb_predicate(rng, depth - 1))),
        }
    }
}

fn arb_cols(rng: &mut StdRng, bound: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0..bound)).collect()
}

fn arb_xra(rng: &mut StdRng, depth: usize) -> XraNode {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        return XraNode::scan(arb_ident(rng));
    }
    match rng.gen_range(0..5) {
        0 => XraNode::Select {
            input: Box::new(arb_xra(rng, depth - 1)),
            predicate: arb_predicate(rng, 2),
        },
        1 => XraNode::Project {
            input: Box::new(arb_xra(rng, depth - 1)),
            projection: Projection::new(arb_cols(rng, 8, 5)),
        },
        2 => XraNode::join(
            arb_xra(rng, depth - 1),
            arb_xra(rng, depth - 1),
            EquiJoin::new(
                rng.gen_range(0..6usize),
                rng.gen_range(0..6usize),
                Projection::new(arb_cols(rng, 12, 5)),
            ),
            if rng.gen::<bool>() {
                JoinAlgorithm::Simple
            } else {
                JoinAlgorithm::Pipelining
            },
        ),
        3 => XraNode::UnionAll {
            inputs: (0..rng.gen_range(1..4usize))
                .map(|_| arb_xra(rng, depth - 1))
                .collect(),
        },
        _ => XraNode::Aggregate {
            input: Box::new(arb_xra(rng, depth - 1)),
            group: arb_cols(rng, 8, 3),
            aggs: (0..rng.gen_range(1..4usize))
                .map(|_| {
                    let f = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max]
                        [rng.gen_range(0..4usize)];
                    AggSpec::new(f, rng.gen_range(0..8usize), arb_ident(rng))
                })
                .collect(),
        },
    }
}

fn arb_keys(rng: &mut StdRng, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn int_relation(keys: &[i64]) -> Relation {
    let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
    let tuples = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| Tuple::from_ints(&[k, i as i64]))
        .collect();
    Relation::new_unchecked(schema, tuples)
}

fn join_spec() -> EquiJoin {
    EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
}

// ---- properties ----

/// Both hash joins agree with the nested-loop oracle on arbitrary
/// multisets of keys, including duplicates and negatives.
#[test]
fn hash_joins_match_oracle() {
    for_cases("hash_joins_match_oracle", |rng| {
        let l = int_relation(&arb_keys(rng, -20, 20, 120));
        let r = int_relation(&arb_keys(rng, -20, 20, 120));
        let spec = join_spec();
        let oracle = nested_loop_join(&l, &r, &spec).unwrap();
        let simple = simple_hash_join(&l, &r, &spec).unwrap();
        let pipelined = pipelining_hash_join(&l, &r, &spec).unwrap();
        assert!(oracle.multiset_eq(&simple));
        assert!(oracle.multiset_eq(&pipelined));
    });
}

/// Partitioned parallel joins are partition-count invariant.
#[test]
fn partitioned_join_is_partition_invariant() {
    for_cases("partitioned_join_is_partition_invariant", |rng| {
        let l = int_relation(&arb_keys(rng, 0, 50, 150));
        let r = int_relation(&arb_keys(rng, 0, 50, 150));
        let parts = rng.gen_range(1..6usize);
        let spec = join_spec();
        let seq = simple_hash_join(&l, &r, &spec).unwrap();
        let par =
            multijoin::join::partitioned_parallel_join(&l, &r, &spec, parts, JoinAlgorithm::Simple)
                .unwrap();
        assert!(seq.multiset_eq(&par));
    });
}

/// `project_concat_into` with a reused scratch buffer matches the naive
/// `concat().project()` on arbitrary tuples and column lists — including
/// error cases (out-of-range columns must fail identically and leave the
/// scratch usable).
#[test]
fn project_concat_scratch_matches_naive() {
    for_cases("project_concat_scratch_matches_naive", |rng| {
        let mut scratch = Vec::new();
        // Many rows per case so one scratch buffer is genuinely reused.
        for _ in 0..16 {
            let arb_tuple = |rng: &mut StdRng| {
                let arity = rng.gen_range(0..6usize);
                Tuple::new(
                    (0..arity)
                        .map(|_| {
                            if rng.gen_range(0..4) == 0 {
                                Value::str(arb_string(rng, b"xyz", 0, 6))
                            } else {
                                Value::Int(rng.gen_range(-99..100))
                            }
                        })
                        .collect(),
                )
            };
            let a = arb_tuple(rng);
            let b = arb_tuple(rng);
            let total = a.arity() + b.arity();
            // Bias towards valid columns but keep some out-of-range.
            let cols: Vec<usize> = (0..rng.gen_range(0..6usize))
                .map(|_| rng.gen_range(0..total + 2))
                .collect();
            let naive = a.concat(&b).project(&cols);
            let fused = Tuple::project_concat(&a, &b, &cols);
            let scratched = Tuple::project_concat_into(&a, &b, &cols, &mut scratch);
            match naive {
                Ok(expected) => {
                    assert_eq!(fused.unwrap(), expected);
                    assert_eq!(scratched.unwrap(), expected);
                }
                Err(_) => {
                    assert!(fused.is_err());
                    assert!(scratched.is_err());
                }
            }
        }
    });
}

/// Proportional allocation: sums to total, floor of one, and the
/// discretization error shrinks (weakly) when processors scale up 8x.
#[test]
fn allocation_invariants() {
    for_cases("allocation_invariants", |rng| {
        let n = rng.gen_range(1..12usize);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01f64..100.0)).collect();
        let total = weights.len() + rng.gen_range(0..40usize);
        let counts = proportional_counts(&weights, total).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), total);
        assert!(counts.iter().all(|&c| c >= 1));
        let big = proportional_counts(&weights, total * 8).unwrap();
        let e_small = discretization_error(&weights, &counts);
        let e_big = discretization_error(&weights, &big);
        assert!(e_big <= e_small + 1e-9, "error grew: {e_small} -> {e_big}");
    });
}

/// Every (shape, strategy, processors) combination yields a valid plan
/// whose ops cover each join exactly once.
#[test]
fn generated_plans_always_validate() {
    for_cases("generated_plans_always_validate", |rng| {
        let shape = Shape::ALL[rng.gen_range(0..5usize)];
        let strategy = Strategy::ALL[rng.gen_range(0..4usize)];
        let k = rng.gen_range(2..11usize);
        let procs = rng.gen_range(10..81usize);
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 1000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, procs);
        let plan = generate(strategy, &input).unwrap();
        validate_plan(&plan).unwrap();
        assert_eq!(plan.ops.len(), k - 1);
    });
}

/// The simulator is total and deterministic over the paper grid.
#[test]
fn simulation_is_deterministic() {
    for_cases("simulation_is_deterministic", |rng| {
        let scenario = Scenario::paper(
            Shape::ALL[rng.gen_range(0..5usize)],
            Strategy::ALL[rng.gen_range(0..4usize)],
            rng.gen_range(100u64..5000),
            rng.gen_range(9..40usize),
        );
        let params = SimParams::default();
        let a = run_scenario(&scenario, &params).unwrap().response_time;
        let b = run_scenario(&scenario, &params).unwrap().response_time;
        assert!(a > 0.0 && a == b);
    });
}

/// Segmentation partitions the joins of any shape.
#[test]
fn segmentation_partitions_joins() {
    for_cases("segmentation_partitions_joins", |rng| {
        let shape = Shape::ALL[rng.gen_range(0..5usize)];
        let k = rng.gen_range(2..12usize);
        let tree = build(shape, k).unwrap();
        let seg = segments(&tree);
        let covered: usize = seg.segments.iter().map(|s| s.len()).sum();
        assert_eq!(covered, k - 1);
        // Waves are a topological grouping: every dependency is in an
        // earlier wave.
        let waves = seg.waves();
        let mut wave_of = vec![usize::MAX; seg.segments.len()];
        for (w, segs) in waves.iter().enumerate() {
            for &s in segs {
                wave_of[s] = w;
            }
        }
        for (s, deps) in seg.deps.iter().enumerate() {
            for &d in deps {
                assert!(wave_of[d] < wave_of[s]);
            }
        }
    });
}

/// The regular query evaluates to exactly n tuples on every shape
/// (sequential oracle), and the result keys are a permutation.
#[test]
fn regular_query_invariant() {
    for_cases("regular_query_invariant", |rng| {
        let shape = Shape::ALL[rng.gen_range(0..5usize)];
        let n = rng.gen_range(1..80usize);
        let catalog = Arc::new(Catalog::new());
        for (name, rel) in WisconsinGenerator::new(n, 3).generate_named("R", 5) {
            catalog.register(name, rel);
        }
        let tree = build(shape, 5).unwrap();
        let out = to_xra(&tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref())
            .unwrap();
        assert_eq!(out.len(), n);
        let mut keys: Vec<i64> = out.iter().map(|t| t.int(0).unwrap()).collect();
        keys.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).collect();
        assert_eq!(keys, expected);
    });
}

/// The paper's cost function: shape-invariant total for the regular
/// query, (5k-6)·N for k relations.
#[test]
fn cost_invariance() {
    for_cases("cost_invariance", |rng| {
        let shape = Shape::ALL[rng.gen_range(0..5usize)];
        let k = rng.gen_range(2..13usize);
        let n = rng.gen_range(1u64..100_000);
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let expected = (5 * k - 6) as f64 * n as f64;
        assert!((costs.total - expected).abs() < 1e-6);
    });
}

/// The textual XRA format round-trips arbitrary plans exactly:
/// `parse(print(p)) == p`.
#[test]
fn xra_text_roundtrip() {
    for_cases("xra_text_roundtrip", |rng| {
        let plan = arb_xra(rng, 4);
        let printed = text::print(&plan);
        let parsed = text::parse(&printed);
        assert!(
            parsed.is_ok(),
            "parse of `{printed}` failed: {:?}",
            parsed.err()
        );
        assert_eq!(
            parsed.unwrap(),
            plan,
            "round-trip changed the plan: {printed}"
        );
    });
}

/// Hash partitioning: a true partition, key-consistent across sides.
#[test]
fn partitioning_is_consistent() {
    for_cases("partitioning_is_consistent", |rng| {
        let keys = arb_keys(rng, -1000, 1000, 300);
        let parts = rng.gen_range(1..10usize);
        let rel = int_relation(&keys);
        let frags = multijoin::storage::hash_partition(&rel, parts, 0).unwrap();
        assert_eq!(frags.len(), parts);
        let total: usize = frags.iter().map(|f| f.len()).sum();
        assert_eq!(total, keys.len());
        let mut seen: HashMap<i64, usize> = HashMap::new();
        for (p, frag) in frags.iter().enumerate() {
            for t in frag.iter() {
                let k = t.int(0).unwrap();
                if let Some(&prev) = seen.get(&k) {
                    assert_eq!(prev, p, "key {k} in two fragments");
                }
                seen.insert(k, p);
            }
        }
    });
}
