//! Cross-crate integration: every strategy × every shape, executed on the
//! real threaded engine, must return exactly the sequential oracle's
//! result — the end-to-end correctness statement of the whole system.

use std::sync::Arc;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;

fn catalog(k: usize, n: usize, seed: u64) -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, seed).generate_named("R", k) {
        catalog.register(name, rel);
    }
    catalog
}

fn run_strategy(
    catalog: &Catalog,
    tree: &JoinTree,
    strategy: Strategy,
    n: u64,
    procs: usize,
) -> Relation {
    let cards = node_cards(tree, &UniformOneToOne { n });
    let costs = tree_costs(tree, &cards, &CostModel::default());
    let mut input = GeneratorInput::new(tree, &cards, &costs, procs);
    input.allow_oversubscribe = procs < tree.join_count();
    let plan = generate(strategy, &input).expect("plan generation");
    validate_plan(&plan).expect("plan validation");
    let binding = QueryBinding::regular(tree, catalog).expect("binding");
    run_plan(&plan, &binding, catalog, &ExecConfig::default())
        .expect("execution")
        .relation
}

#[test]
fn all_strategies_all_shapes_match_oracle() {
    let k = 7;
    let n = 250usize;
    let catalog = catalog(k, n, 1234);
    for shape in Shape::ALL {
        let tree = build(shape, k).unwrap();
        let oracle = to_xra(&tree, 3, JoinAlgorithm::Simple)
            .eval(catalog.as_ref())
            .expect("oracle");
        assert_eq!(oracle.len(), n, "{shape}: regular query yields n tuples");
        for strategy in Strategy::ALL {
            let got = run_strategy(&catalog, &tree, strategy, n as u64, 6);
            assert!(
                got.multiset_eq(&oracle),
                "{strategy} on {shape} diverged from the sequential oracle"
            );
        }
    }
}

#[test]
fn strategies_agree_with_each_other_at_scale() {
    // Bigger relations, a single shape, all strategies pairwise equal.
    let k = 10;
    let n = 1000usize;
    let catalog = catalog(k, n, 77);
    let tree = build(Shape::RightBushy, k).unwrap();
    let results: Vec<Relation> = Strategy::ALL
        .iter()
        .map(|&s| run_strategy(&catalog, &tree, s, n as u64, 9))
        .collect();
    for pair in results.windows(2) {
        assert!(pair[0].multiset_eq(&pair[1]));
    }
    assert_eq!(results[0].len(), n);
}

#[test]
fn processor_count_does_not_change_results() {
    let k = 6;
    let n = 300usize;
    let catalog = catalog(k, n, 5);
    let tree = build(Shape::WideBushy, k).unwrap();
    let reference = run_strategy(&catalog, &tree, Strategy::FP, n as u64, 5);
    for procs in [1usize, 2, 3, 8, 16] {
        let got = run_strategy(&catalog, &tree, Strategy::FP, n as u64, procs);
        assert!(got.multiset_eq(&reference), "procs={procs}");
    }
}

/// Differential test on a *skewed* workload with duplicate join keys: the
/// same logical query runs through the simple-join materialized path (SP),
/// the pipelining streamed path (FP), and the mixed segmented path (RD/SE),
/// all over the shared-tuple representation, and every result must be the
/// identical sorted multiset — and match the sequential oracle.
#[test]
fn skewed_relations_agree_across_all_execution_paths() {
    use multijoin::storage::skew::zipf_keys;

    let k = 5;
    let n = 400usize;
    let catalog = Arc::new(Catalog::new());
    for r in 0..k {
        // Zipf-skewed unique1 keys (duplicates allowed, heavy head), so
        // both redistribution balance and duplicate-key join logic are
        // exercised; unique2/filler stay row-identifying.
        let keys = zipf_keys(n, n, 0.9, 100 + r as u64);
        let schema = multijoin::storage::wisconsin::compact_schema().shared();
        let tuples = keys
            .iter()
            .enumerate()
            .map(|(i, &u1)| Tuple::from_ints(&[u1, i as i64, i as i64]))
            .collect();
        catalog.register(
            format!("R{r}"),
            Arc::new(Relation::new(schema, tuples).unwrap()),
        );
    }
    let tree = build(Shape::RightBushy, k).unwrap();
    let oracle = to_xra(&tree, 3, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .expect("oracle");
    assert!(!oracle.is_empty(), "skewed join must produce matches");

    let mut sorted_results: Vec<Vec<Tuple>> = Vec::new();
    for strategy in Strategy::ALL {
        let got = run_strategy(&catalog, &tree, strategy, n as u64, 4);
        assert!(
            got.multiset_eq(&oracle),
            "{strategy} diverged from the oracle on the skewed workload"
        );
        let mut tuples = got.into_tuples();
        tuples.sort_unstable();
        sorted_results.push(tuples);
    }
    for pair in sorted_results.windows(2) {
        assert_eq!(pair[0], pair[1], "sorted multisets must be identical");
    }
}

/// Worker-pool concurrency: queries running simultaneously through one
/// shared engine must produce exactly the relations their sequential runs
/// produce — interleaving tasks of different queries on the fixed pool may
/// change timing, never results.
#[test]
fn concurrent_queries_match_sequential_runs() {
    use multijoin::core::{generate, GeneratorInput, Strategy};
    use multijoin::plan::cost::{tree_costs, CostModel};

    let k = 6;
    let n = 400usize;
    let catalog = catalog(k, n, 91);
    let tree = build(Shape::RightBushy, k).unwrap();
    let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
    let config = ExecConfig {
        workers: 4,
        ..ExecConfig::default()
    };
    let engine = Engine::new(catalog.clone(), config).unwrap();

    let plan_for = |strategy: Strategy| {
        let cards =
            multijoin::plan::cardinality::node_cards(&tree, &UniformOneToOne { n: n as u64 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
        input.allow_oversubscribe = true;
        generate(strategy, &input).unwrap()
    };

    // Sequential reference runs through the same engine.
    let fp_plan = plan_for(Strategy::FP);
    let rd_plan = plan_for(Strategy::RD);
    let fp_sequential = engine.run(&fp_plan, &binding).unwrap().relation;
    let rd_sequential = engine.run(&rd_plan, &binding).unwrap().relation;

    // Two queries at once (one pipelined, one segmented), several rounds.
    for round in 0..3 {
        let (fp_concurrent, rd_concurrent) = std::thread::scope(|scope| {
            let fp = scope.spawn(|| engine.run(&fp_plan, &binding).unwrap());
            let rd = scope.spawn(|| engine.run(&rd_plan, &binding).unwrap());
            (fp.join().unwrap(), rd.join().unwrap())
        });
        assert!(
            fp_concurrent.relation.multiset_eq(&fp_sequential),
            "round {round}: concurrent FP diverged from its sequential run"
        );
        assert!(
            rd_concurrent.relation.multiset_eq(&rd_sequential),
            "round {round}: concurrent RD diverged from its sequential run"
        );
        // Per-query metrics stay separate: each run saw its own tuples.
        let fp_in: u64 = fp_concurrent
            .metrics
            .ops
            .iter()
            .map(|o| o.tuples_in[0] + o.tuples_in[1])
            .sum();
        let rd_in: u64 = rd_concurrent
            .metrics
            .ops
            .iter()
            .map(|o| o.tuples_in[0] + o.tuples_in[1])
            .sum();
        assert!(fp_in > 0 && rd_in > 0);
    }
    assert_eq!(engine.pool().threads(), 4, "pool never grows");
}

/// Differential: for seeded random acyclic queries (chain/star/skewed,
/// 3–8 relations) the planner-chosen plan must produce exactly the same
/// result relation as a fixed SP baseline executed on every shape whose
/// tree the query admits (a star query has no cartesian-free bushy trees,
/// so infeasible shapes are skipped — but the linear shapes always lower).
/// The tree-independent output column order makes results comparable
/// across shapes.
#[test]
fn planner_plan_matches_sp_baseline_on_every_shape() {
    use multijoin::exec::generate_family;

    let cases = [
        (QueryFamily::Chain, 3, 11u64),
        (QueryFamily::Star, 4, 5u64),
        (QueryFamily::Skewed, 5, 23u64),
        (QueryFamily::Chain, 6, 71u64),
        (QueryFamily::Star, 7, 3u64),
        (QueryFamily::Skewed, 8, 9u64),
    ];
    for (family, k, seed) in cases {
        let inst = generate_family(family, k, 48, seed).unwrap();
        let planned = Planner::new(PlannerOptions::new(5))
            .plan(&inst.query)
            .unwrap();
        let chosen = run_plan(
            &planned.plan,
            &planned.binding,
            inst.catalog.as_ref(),
            &ExecConfig::default(),
        )
        .unwrap()
        .relation;

        let mut compared = 0usize;
        for shape in Shape::ALL {
            let tree = build(shape, k).unwrap();
            // Star queries reject shapes that would pair two dimensions
            // (no connecting predicate) — skip those.
            let lowered = match lower(&tree, &inst.query, None) {
                Ok(l) => l,
                Err(_) => continue,
            };
            let cards = lowered.est_cards().to_vec();
            let costs = tree_costs(&tree, &cards, &CostModel::default());
            let mut input = GeneratorInput::new(&tree, &cards, &costs, 5);
            input.allow_oversubscribe = true;
            let sp = generate(Strategy::SP, &input).unwrap();
            let binding = QueryBinding::from_lowered(&tree, &lowered).unwrap();
            let baseline = run_plan(&sp, &binding, inst.catalog.as_ref(), &ExecConfig::default())
                .unwrap()
                .relation;
            assert!(
                chosen.multiset_eq(&baseline),
                "{family} k={k} seed={seed}: planner plan ({}) diverged from \
                 the SP baseline on {shape}",
                planned.strategy()
            );
            compared += 1;
        }
        let floor = if family == QueryFamily::Star { 2 } else { 5 };
        assert!(
            compared >= floor,
            "{family} k={k}: only {compared} shapes lowered"
        );
    }
}

#[test]
fn full_payload_tuples_flow_through_the_engine() {
    // 208-byte Wisconsin tuples (16 attributes) through a 4-relation query.
    let catalog = Arc::new(Catalog::new());
    let gen = WisconsinGenerator::new(120, 9).with_payload(PayloadMode::Full);
    for (name, rel) in gen.generate_named("R", 4) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::RightLinear, 4).unwrap();
    let oracle = to_xra(&tree, 16, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .expect("oracle");
    let got = run_strategy(&catalog, &tree, Strategy::FP, 120, 3);
    assert_eq!(got.schema().arity(), 16);
    assert!(got.multiset_eq(&oracle));
}
