//! Serialization round-trips: parallel plans, simulation results, and
//! parameters all survive JSON — the contract that lets plans be shipped
//! to schedulers and results archived next to the CSV series.

use multijoin::core::strategy::Strategy;
use multijoin::plan::cardinality::node_cards;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;

fn plan_for(shape: Shape, strategy: Strategy) -> ParallelPlan {
    let tree = build(shape, 10).unwrap();
    let cards = node_cards(&tree, &UniformOneToOne { n: 5_000 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let input = GeneratorInput::new(&tree, &cards, &costs, 40);
    generate(strategy, &input).unwrap()
}

#[test]
fn parallel_plans_roundtrip_json() {
    for shape in Shape::ALL {
        for strategy in Strategy::ALL {
            let plan = plan_for(shape, strategy);
            let json = serde_json::to_string(&plan).unwrap();
            let back: ParallelPlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plan, "{shape}/{strategy}");
            // The deserialized plan is still executable by the validator
            // and the simulator.
            validate_plan(&back).unwrap();
            let sim = simulate(&back, &SimParams::default()).unwrap();
            assert!(sim.response_time > 0.0);
        }
    }
}

#[test]
fn sim_params_roundtrip_json() {
    for params in [SimParams::default(), SimParams::idealized()] {
        let json = serde_json::to_string(&params).unwrap();
        let back: SimParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, params);
    }
}

#[test]
fn sim_results_roundtrip_json() {
    let plan = plan_for(Shape::RightBushy, Strategy::RD);
    let sim = simulate(&plan, &SimParams::default()).unwrap();
    let json = serde_json::to_string(&sim).unwrap();
    let back: multijoin::sim::SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.response_time, sim.response_time);
    assert_eq!(back.spans.len(), sim.spans.len());
    for (a, b) in back.spans.iter().zip(&sim.spans) {
        assert_eq!(a.op, b.op);
        assert_eq!(a.busy, b.busy);
    }
}

#[test]
fn xra_plans_roundtrip_json_and_text_identically() {
    use multijoin::plan::query::to_xra;
    use multijoin::relalg::text;

    let tree = build(Shape::WideBushy, 8).unwrap();
    let plan = to_xra(&tree, 3, JoinAlgorithm::Pipelining);
    // JSON round-trip.
    let json = serde_json::to_string(&plan).unwrap();
    let from_json: XraNode = serde_json::from_str(&json).unwrap();
    assert_eq!(from_json, plan);
    // Text round-trip agrees with the JSON one.
    let from_text = text::parse(&text::print(&plan)).unwrap();
    assert_eq!(from_text, plan);
}
