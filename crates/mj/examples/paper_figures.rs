//! Paper figures, in miniature: prints the idealized utilization diagrams
//! (Figs. 3, 4, 6, 7) and one response-time panel (Fig. 11, wide bushy,
//! 5K). For the full set, run the `repro` binary:
//! `cargo run --release -p mj-bench --bin repro -- all`.
//!
//! ```text
//! cargo run --release --example paper_figures
//! ```

use multijoin::core::example::{example_cards, example_tree, example_weights};
use multijoin::plan::cost::TreeCosts;
use multijoin::prelude::*;
use multijoin::sim::render_gantt;

fn main() {
    // The Fig. 2 example: 5-way join, weights 1/5/3/4, 10 processors.
    let (tree, joins) = example_tree();
    let weights = example_weights();
    let mut per_join = vec![0.0; tree.nodes().len()];
    let mut total = 0.0;
    for (id, w) in &weights {
        per_join[*id] = *w;
        total += *w;
    }
    let costs = TreeCosts { per_join, total };
    let cards = example_cards(2000);

    for (strategy, fig) in [
        (Strategy::SP, 3u32),
        (Strategy::SE, 4),
        (Strategy::RD, 6),
        (Strategy::FP, 7),
    ] {
        let input = GeneratorInput::new(&tree, &cards, &costs, 10);
        let plan = generate(strategy, &input).expect("plan");
        let result = simulate(&plan, &SimParams::idealized()).expect("simulate");
        println!("--- Figure {fig}: {strategy} on the Fig. 2 example tree ---");
        print!(
            "{}",
            render_gantt(&plan, &result, 64, |j| joins
                .label(j)
                .map(|l| char::from_digit(l, 10).unwrap()))
        );
        println!();
    }

    // One response-time panel: wide bushy, 5K (Fig. 11 left).
    println!("--- Figure 11 (left panel): wide bushy, 5K tuples/relation ---");
    let params = SimParams::default();
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "procs", "SP", "SE", "RD", "FP"
    );
    for procs in [20usize, 30, 40, 50, 60, 70, 80] {
        print!("{procs:>6}");
        for strategy in Strategy::ALL {
            let scenario = Scenario::paper(Shape::WideBushy, strategy, 5_000, procs);
            let r = run_scenario(&scenario, &params).expect("simulate");
            print!(" {:>8.2}", r.response_time);
        }
        println!();
    }
    println!("\n(expected shape: SP degrades with processors; SE/RD flat; FP best at scale)");
}
