//! Quickstart: the session facade, then the full two-phase pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Part 1 is the public API: open a [`Database`], register relations,
//! stream a text query. Part 2 holds the low-level pieces by hand:
//!
//! 1. generate Wisconsin data;
//! 2. phase 1 — find the minimal-total-cost join tree;
//! 3. phase 2 — parallelize it with each of the four strategies;
//! 4. execute on the threaded engine and verify against the sequential
//!    oracle.

use std::sync::Arc;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::prelude::*;

fn main() {
    let relations = 8usize;
    let n = 2_000usize;
    let processors = 4usize;

    // --- Part 1: the front door. ---
    let db = Database::open(DbConfig::default()).expect("open");
    for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", 3) {
        db.register(name, rel).expect("register");
    }
    db.analyze().expect("analyze");
    let mut handle = db
        .query(
            "SELECT * FROM R0 JOIN R1 ON R0.unique1 = R1.unique1 \
             JOIN R2 ON R1.unique1 = R2.unique1",
        )
        .expect("submit");
    let mut stream = handle.stream();
    let mut rows = 0usize;
    let mut batches = 0usize;
    while let Some(batch) = stream.next_batch() {
        rows += batch.len(); // batches arrive while the query runs
        batches += 1;
    }
    drop(stream);
    let outcome = handle.outcome().expect("outcome");
    println!(
        "session API: {rows} tuples streamed in {batches} batches \
         ({:.1} ms engine response time)\n",
        outcome.elapsed.as_secs_f64() * 1e3
    );

    // --- Part 2: the low-level pipeline, held by hand. ---

    // 1. Data: `relations` Wisconsin relations of `n` tuples each, with
    // mutually uncorrelated unique attributes (§4.1 of the paper).
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", relations) {
        catalog.register(name, rel);
    }
    println!("generated {relations} relations x {n} tuples");

    // 2. Phase 1: minimal-total-cost tree over the chain query.
    let graph = QueryGraph::regular_chain(relations, n as u64).expect("query graph");
    let phase1 = optimize_bushy(&graph, &CostModel::default()).expect("optimize");
    println!(
        "phase 1: picked a tree with total cost {:.0} units ({} joins, depth {})",
        phase1.total_cost,
        phase1.tree.join_count(),
        phase1.tree.depth()
    );
    println!("{}", multijoin::plan::render::render(&phase1.tree));

    // Reference result from the sequential oracle.
    let oracle = to_xra(&phase1.tree, 3, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .expect("oracle evaluation");

    // 3 + 4. Phase 2 per strategy, then execute.
    let cards = node_cards(&phase1.tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&phase1.tree, &cards, &CostModel::default());
    let binding = QueryBinding::regular(&phase1.tree, catalog.as_ref()).expect("binding");
    for strategy in Strategy::ALL {
        let mut input = GeneratorInput::new(&phase1.tree, &cards, &costs, processors);
        input.allow_oversubscribe = true; // host-scale: fewer procs than joins
        let plan = generate(strategy, &input).expect("parallel plan");
        let stats = plan.stats();
        let outcome =
            run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).expect("execution");
        let ok = outcome.relation.multiset_eq(&oracle);
        println!(
            "{strategy}: {:>6.1} ms | {} processes, {} streams, {} pipeline edges | {} tuples | oracle: {}",
            outcome.elapsed.as_secs_f64() * 1e3,
            stats.operation_processes,
            stats.tuple_streams,
            stats.pipeline_edges,
            outcome.relation.len(),
            if ok { "match" } else { "MISMATCH" },
        );
        assert!(ok, "{strategy} diverged from the sequential oracle");
    }
    println!("all strategies returned identical results");
}
