//! Quickstart: the full two-phase pipeline on real threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. generate Wisconsin data;
//! 2. phase 1 — find the minimal-total-cost join tree;
//! 3. phase 2 — parallelize it with each of the four strategies;
//! 4. execute on the threaded engine and verify against the sequential
//!    oracle.

use std::sync::Arc;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::prelude::*;

fn main() {
    let relations = 8usize;
    let n = 2_000usize;
    let processors = 4usize;

    // 1. Data: `relations` Wisconsin relations of `n` tuples each, with
    // mutually uncorrelated unique attributes (§4.1 of the paper).
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", relations) {
        catalog.register(name, rel);
    }
    println!("generated {relations} relations x {n} tuples");

    // 2. Phase 1: minimal-total-cost tree over the chain query.
    let graph = QueryGraph::regular_chain(relations, n as u64).expect("query graph");
    let phase1 = optimize_bushy(&graph, &CostModel::default()).expect("optimize");
    println!(
        "phase 1: picked a tree with total cost {:.0} units ({} joins, depth {})",
        phase1.total_cost,
        phase1.tree.join_count(),
        phase1.tree.depth()
    );
    println!("{}", multijoin::plan::render::render(&phase1.tree));

    // Reference result from the sequential oracle.
    let oracle = to_xra(&phase1.tree, 3, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .expect("oracle evaluation");

    // 3 + 4. Phase 2 per strategy, then execute.
    let cards = node_cards(&phase1.tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&phase1.tree, &cards, &CostModel::default());
    let binding = QueryBinding::regular(&phase1.tree, catalog.as_ref()).expect("binding");
    for strategy in Strategy::ALL {
        let mut input = GeneratorInput::new(&phase1.tree, &cards, &costs, processors);
        input.allow_oversubscribe = true; // host-scale: fewer procs than joins
        let plan = generate(strategy, &input).expect("parallel plan");
        let stats = plan.stats();
        let outcome =
            run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).expect("execution");
        let ok = outcome.relation.multiset_eq(&oracle);
        println!(
            "{strategy}: {:>6.1} ms | {} processes, {} streams, {} pipeline edges | {} tuples | oracle: {}",
            outcome.elapsed.as_secs_f64() * 1e3,
            stats.operation_processes,
            stats.tuple_streams,
            stats.pipeline_edges,
            outcome.relation.len(),
            if ok { "match" } else { "MISMATCH" },
        );
        assert!(ok, "{strategy} diverged from the sequential oracle");
    }
    println!("all strategies returned identical results");
}
