//! Concurrent query serving through the session facade.
//!
//! ```text
//! cargo run --release -p multijoin --example concurrent_server
//! ```
//!
//! Opens one shared [`Database`] (one catalog, one 4-worker engine, one
//! planner) and fires **text queries** at it from 8 client threads at once
//! — the server-style workload the whole stack exists for. Each client
//! submits `SELECT ... FROM ... JOIN ...` strings of varying length; the
//! database parses, binds, plans (tree, strategy, allocation), and streams
//! each result back through a cancellable [`QueryHandle`]. Every query's
//! operator instances multiplex onto the same 4 workers; the engine never
//! holds more than `workers` execution threads no matter how many clients
//! are in flight, and every streamed result is checked against the
//! sequential oracle.

use std::sync::Arc;
use std::time::Instant;

use multijoin::exec::chain_query_sql;
use multijoin::prelude::*;
use multijoin::relalg::JoinAlgorithm;

fn main() {
    let relations = 6;
    let n = 2_000usize;
    let clients = 8;
    let queries_per_client = 3;

    // One shared session: fixed 4-worker engine, 6 logical processors.
    let mut config = DbConfig::default();
    config.exec.workers = 4;
    config.planner = PlannerOptions::new(6);
    let db = Database::open(config).expect("open database");

    // Register the data through the front door and analyze statistics.
    let instance = generate_family(QueryFamily::Chain, relations, n, 7).expect("family");
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        let rel = instance.catalog.relation(name).expect("relation");
        db.register(name, rel).expect("register");
    }
    db.analyze().expect("analyze");
    println!(
        "database up: {} relations, {} worker threads, serving {clients} clients x \
         {queries_per_client} text queries",
        names.len(),
        db.engine().workers()
    );

    // Clients rotate over chain queries of different lengths; precompute
    // each query's sequential oracle once.
    let query_lengths = [relations, relations - 1, relations - 2];
    let oracles: Vec<(String, Arc<Relation>)> = query_lengths
        .iter()
        .map(|&k| {
            let text = chain_query_sql(k);
            let planned = db.plan(&text).expect("plan");
            let oracle = planned
                .lowered
                .to_xra(&planned.tree, JoinAlgorithm::Simple)
                .expect("oracle plan")
                .eval(db.catalog().as_ref())
                .expect("oracle eval");
            (text, Arc::new(oracle))
        })
        .collect();

    let started = Instant::now();
    let mut total_rows = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let db = &db;
                let oracles = &oracles;
                scope.spawn(move || {
                    let mut rows = 0u64;
                    for q in 0..queries_per_client {
                        let (text, oracle) = &oracles[(client + q) % oracles.len()];
                        // Submit the text query; stream and collect.
                        let result = db
                            .query(text)
                            .expect("submit")
                            .collect()
                            .expect("stream + outcome");
                        assert!(
                            result.multiset_eq(oracle),
                            "client {client} query {q} diverged from the oracle"
                        );
                        rows += result.len() as u64;
                    }
                    rows
                })
            })
            .collect();
        for h in handles {
            total_rows += h.join().expect("client thread");
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "{} text queries ok ({} result rows, oracle-checked) in {elapsed:.2}s = {:.0} rows/s",
        clients * queries_per_client,
        total_rows,
        total_rows as f64 / elapsed
    );
    println!(
        "worker threads at exit: {} (pool is fixed; clients only add tasks)",
        db.engine().pool().threads()
    );
}
