//! Concurrent query serving on one shared engine.
//!
//! ```text
//! cargo run --release -p multijoin --example concurrent_server
//! ```
//!
//! Builds a catalog of Wisconsin relations, creates one [`Engine`] with a
//! fixed 4-thread worker pool, and fires queries at it from 8 client
//! threads at once — the server-style workload the worker-pool scheduler
//! exists for. Every query's operator instances are multiplexed onto the
//! same 4 workers; the process never holds more than `workers` execution
//! threads no matter how many clients are in flight, and every result is
//! checked against the sequential oracle.

use std::sync::Arc;
use std::time::Instant;

use multijoin::plan::cardinality::node_cards;
use multijoin::plan::query::to_xra;
use multijoin::plan::shapes::build;
use multijoin::prelude::*;

fn main() {
    let relations = 6;
    let n = 2_000usize;
    let clients = 8;
    let queries_per_client = 3;

    // Shared data: one catalog serves every query.
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 7).generate_named("R", relations) {
        catalog.register(name, rel);
    }

    // One engine, one fixed pool of 4 workers, shared by all clients.
    let config = ExecConfig {
        workers: 4,
        ..ExecConfig::default()
    };
    let engine = Engine::new(catalog.clone(), config).expect("engine");
    println!(
        "engine up: {} worker threads, serving {clients} clients x {queries_per_client} queries",
        engine.workers()
    );

    let tree = build(Shape::RightLinear, relations).expect("tree");
    let binding = QueryBinding::regular(&tree, catalog.as_ref()).expect("binding");
    let oracle = to_xra(&tree, 3, JoinAlgorithm::Simple)
        .eval(catalog.as_ref())
        .expect("oracle");

    let started = Instant::now();
    let mut total_tuples = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let engine = &engine;
                let binding = &binding;
                let tree = &tree;
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut consumed = 0u64;
                    for q in 0..queries_per_client {
                        // Alternate strategies so pipelined and
                        // materialized dataflows interleave on the pool.
                        let strategy = match (client + q) % 3 {
                            0 => Strategy::FP,
                            1 => Strategy::RD,
                            _ => Strategy::SP,
                        };
                        let cards = node_cards(tree, &UniformOneToOne { n: n as u64 });
                        let costs = tree_costs(tree, &cards, &CostModel::default());
                        let mut input = GeneratorInput::new(tree, &cards, &costs, 3);
                        input.allow_oversubscribe = true;
                        let plan = generate(strategy, &input).expect("plan");
                        let outcome = engine.run(&plan, binding).expect("query");
                        assert!(
                            outcome.relation.multiset_eq(oracle),
                            "client {client} query {q} ({strategy}) diverged"
                        );
                        consumed += outcome
                            .metrics
                            .ops
                            .iter()
                            .map(|o| o.tuples_in[0] + o.tuples_in[1])
                            .sum::<u64>();
                    }
                    consumed
                })
            })
            .collect();
        for h in handles {
            total_tuples += h.join().expect("client thread");
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    println!(
        "{} queries ok ({} tuples through operators) in {elapsed:.2}s = {:.0} tuples/s",
        clients * queries_per_client,
        total_tuples,
        total_tuples as f64 / elapsed
    );
    println!(
        "worker threads at exit: {} (pool is fixed; clients only add tasks)",
        engine.pool().threads()
    );
}
