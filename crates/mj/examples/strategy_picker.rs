//! Strategy picker: the paper's §5 guidelines as an executable tool.
//!
//! ```text
//! cargo run --release --example strategy_picker -- [shape] [tuples] [processors]
//! cargo run --release --example strategy_picker -- right-bushy 40000 60
//! ```
//!
//! Simulates all four strategies for the requested configuration on the
//! calibrated PRISMA-style machine and prints a recommendation alongside
//! the paper's qualitative rules.

use multijoin::prelude::*;

fn parse_shape(s: &str) -> Option<Shape> {
    match s {
        "left-linear" => Some(Shape::LeftLinear),
        "left-bushy" => Some(Shape::LeftBushy),
        "wide-bushy" => Some(Shape::WideBushy),
        "right-bushy" => Some(Shape::RightBushy),
        "right-linear" => Some(Shape::RightLinear),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args
        .first()
        .and_then(|s| parse_shape(s))
        .unwrap_or(Shape::WideBushy);
    let tuples: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let processors: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);

    println!("query: 10-relation regular join, {shape} tree, {tuples} tuples/relation, {processors} processors");
    println!("machine: calibrated PRISMA/DB-style simulator\n");

    let params = SimParams::default();
    let mut results: Vec<(Strategy, f64, usize, usize)> = Vec::new();
    for strategy in Strategy::ALL {
        let scenario = Scenario::paper(shape, strategy, tuples, processors);
        let r = run_scenario(&scenario, &params).expect("simulation");
        results.push((
            strategy,
            r.response_time,
            r.plan_stats.operation_processes,
            r.plan_stats.tuple_streams,
        ));
    }
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "strategy", "response (s)", "processes", "streams"
    );
    for (s, t, p, st) in &results {
        println!("{:<10} {:>12.2} {:>12} {:>12}", s.label(), t, p, st);
    }
    let winner = results[0].0;
    println!("\nrecommendation: {winner}");
    if !winner.needs_cost_function() {
        println!("  (and {winner} needs no cost model for the individual joins)");
    }

    println!("\npaper guidelines (§5):");
    println!("  - few processors: SP is the easiest and best;");
    println!("  - many processors: FP performs quite well across shapes;");
    println!("  - SE shines on wide bushy trees, RD on right-oriented trees;");
    println!("  - prefer bushy over linear trees when costs are equal;");
    println!("  - RD can be helped by mirroring the tree right-oriented at no cost.");
}
