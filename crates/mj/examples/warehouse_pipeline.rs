//! Warehouse pipeline: a non-regular, star/snowflake-ish analytic query —
//! the kind of "complex queries with larger numbers of joins" the paper's
//! introduction motivates.
//!
//! ```text
//! cargo run --release --example warehouse_pipeline
//! ```
//!
//! Five relations with *different* cardinalities and selectivities:
//!
//! ```text
//! lineitems(order_key, part_key, qty)   200 000 rows
//! orders(order_key, cust_key, date_key)  50 000 rows
//! customers(cust_key, nation)             5 000 rows
//! parts(part_key, brand)                  2 000 rows
//! dates(date_key, month)                    365 rows
//! ```
//!
//! Shows phase-1 optimization really choosing between trees (bushy DP vs
//! linear DP vs greedy), builds a custom [`QueryBinding`] with
//! provenance-tracked join keys, executes the winning tree with SE and FP
//! on the threaded engine, and aggregates the result.

use std::collections::HashMap;
use std::sync::Arc;

use multijoin::plan::cost::join_costs_bottom_up;
use multijoin::plan::tree::{JoinTree, NodeId, TreeNode};
use multijoin::prelude::*;
use multijoin::relalg::ops::{aggregate, AggFunc, AggSpec};

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One equi-join predicate of the warehouse query.
struct Pred {
    a: &'static str,
    a_col: usize,
    b: &'static str,
    b_col: usize,
    selectivity: f64,
}

fn build_data(catalog: &Catalog) {
    let mut rng = StdRng::seed_from_u64(99);
    let li_schema = Schema::new(vec![
        Attribute::int("order_key"),
        Attribute::int("part_key"),
        Attribute::int("qty"),
    ])
    .shared();
    let orders_schema = Schema::new(vec![
        Attribute::int("order_key"),
        Attribute::int("cust_key"),
        Attribute::int("date_key"),
    ])
    .shared();
    let cust_schema =
        Schema::new(vec![Attribute::int("cust_key"), Attribute::int("nation")]).shared();
    let part_schema =
        Schema::new(vec![Attribute::int("part_key"), Attribute::int("brand")]).shared();
    let date_schema =
        Schema::new(vec![Attribute::int("date_key"), Attribute::int("month")]).shared();

    let (n_li, n_ord, n_cust, n_part, n_date) = (200_000i64, 50_000, 5_000, 2_000, 365);
    let lineitems: Vec<Tuple> = (0..n_li)
        .map(|_| {
            Tuple::from_ints(&[
                rng.gen_range(0..n_ord),
                rng.gen_range(0..n_part),
                rng.gen_range(1..50),
            ])
        })
        .collect();
    let orders: Vec<Tuple> = (0..n_ord)
        .map(|k| Tuple::from_ints(&[k, rng.gen_range(0..n_cust), rng.gen_range(0..n_date)]))
        .collect();
    let customers: Vec<Tuple> = (0..n_cust)
        .map(|k| Tuple::from_ints(&[k, rng.gen_range(0..25)]))
        .collect();
    let parts: Vec<Tuple> = (0..n_part)
        .map(|k| Tuple::from_ints(&[k, rng.gen_range(0..40)]))
        .collect();
    let dates: Vec<Tuple> = (0..n_date)
        .map(|k| Tuple::from_ints(&[k, k % 12]))
        .collect();

    catalog.register(
        "lineitems",
        Arc::new(Relation::new_unchecked(li_schema, lineitems)),
    );
    catalog.register(
        "orders",
        Arc::new(Relation::new_unchecked(orders_schema, orders)),
    );
    catalog.register(
        "customers",
        Arc::new(Relation::new_unchecked(cust_schema, customers)),
    );
    catalog.register(
        "parts",
        Arc::new(Relation::new_unchecked(part_schema, parts)),
    );
    catalog.register(
        "dates",
        Arc::new(Relation::new_unchecked(date_schema, dates)),
    );
}

/// Leaf relation names under each node, in left-to-right order, with the
/// starting column offset of each relation in the node's concat schema.
fn provenance(tree: &JoinTree, arities: &HashMap<String, usize>) -> Vec<Vec<(String, usize)>> {
    let mut prov: Vec<Vec<(String, usize)>> = vec![Vec::new(); tree.nodes().len()];
    for (id, node) in tree.nodes().iter().enumerate() {
        match node {
            TreeNode::Leaf { relation } => {
                prov[id] = vec![(relation.clone(), 0)];
            }
            TreeNode::Join { left, right } => {
                let mut v = prov[*left].clone();
                let left_width: usize = v.iter().map(|(r, _)| arities[r]).sum();
                for (r, off) in &prov[*right] {
                    v.push((r.clone(), off + left_width));
                }
                prov[id] = v;
            }
        }
    }
    prov
}

/// Finds the predicate connecting the two subtrees of `join` and returns
/// the equi-join spec with identity projection over the concatenation.
fn spec_for_join(
    tree: &JoinTree,
    join: NodeId,
    preds: &[Pred],
    prov: &[Vec<(String, usize)>],
    arities: &HashMap<String, usize>,
) -> EquiJoin {
    let (l, r) = tree.children(join).expect("join node");
    let find = |side: &[(String, usize)], rel: &str| -> Option<usize> {
        side.iter()
            .find(|(name, _)| name == rel)
            .map(|(_, off)| *off)
    };
    let left_width: usize = prov[l].iter().map(|(r, _)| arities[r]).sum();
    for p in preds {
        // Try predicate in both orientations.
        if let (Some(loff), Some(roff)) = (find(&prov[l], p.a), find(&prov[r], p.b)) {
            let arity = left_width + prov[r].iter().map(|(r, _)| arities[r]).sum::<usize>();
            return EquiJoin::new(loff + p.a_col, roff + p.b_col, Projection::identity(arity));
        }
        if let (Some(loff), Some(roff)) = (find(&prov[l], p.b), find(&prov[r], p.a)) {
            let arity = left_width + prov[r].iter().map(|(r, _)| arities[r]).sum::<usize>();
            return EquiJoin::new(loff + p.b_col, roff + p.a_col, Projection::identity(arity));
        }
    }
    panic!("no predicate connects the subtrees of join {join} (cartesian product?)");
}

fn main() {
    let catalog = Arc::new(Catalog::new());
    build_data(&catalog);

    let preds = [
        Pred {
            a: "lineitems",
            a_col: 0,
            b: "orders",
            b_col: 0,
            selectivity: 1.0 / 50_000.0,
        },
        Pred {
            a: "lineitems",
            a_col: 1,
            b: "parts",
            b_col: 0,
            selectivity: 1.0 / 2_000.0,
        },
        Pred {
            a: "orders",
            a_col: 1,
            b: "customers",
            b_col: 0,
            selectivity: 1.0 / 5_000.0,
        },
        Pred {
            a: "orders",
            a_col: 2,
            b: "dates",
            b_col: 0,
            selectivity: 1.0 / 365.0,
        },
    ];

    // Phase 1 over the warehouse query graph.
    let mut graph = QueryGraph::new();
    let mut idx = HashMap::new();
    for name in ["lineitems", "orders", "customers", "parts", "dates"] {
        let card = catalog.relation(name).unwrap().len() as u64;
        idx.insert(name, graph.add_relation(name, card).unwrap());
    }
    for p in &preds {
        graph.add_edge(idx[p.a], idx[p.b], p.selectivity).unwrap();
    }

    let bushy = optimize_bushy(&graph, &CostModel::default()).expect("bushy DP");
    let linear = optimize_linear(&graph, &CostModel::default()).expect("linear DP");
    let greedy = greedy_tree(&graph, &CostModel::default()).expect("greedy");
    println!("phase-1 total costs (tuple actions):");
    println!("  bushy DP : {:>12.0}", bushy.total_cost);
    println!("  linear DP: {:>12.0}", linear.total_cost);
    println!("  greedy   : {:>12.0}", greedy.total_cost);
    println!(
        "\nchosen (bushy) tree:\n{}",
        multijoin::plan::render::render(&bushy.tree)
    );
    let costs = tree_costs(&bushy.tree, &bushy.node_cards, &CostModel::default());
    for (join, cost) in join_costs_bottom_up(&bushy.tree, &costs) {
        println!("  join j{join}: estimated {cost:.0} units");
    }

    // Custom binding: provenance-tracked join keys, identity projections.
    let arities: HashMap<String, usize> = ["lineitems", "orders", "customers", "parts", "dates"]
        .iter()
        .map(|n| (n.to_string(), catalog.relation(n).unwrap().schema().arity()))
        .collect();
    let prov = provenance(&bushy.tree, &arities);
    let binding = QueryBinding::new(&bushy.tree, catalog.as_ref(), |join, _, _| {
        spec_for_join(&bushy.tree, join, &preds, &prov, &arities)
    })
    .expect("binding");

    // Sequential oracle for verification.
    let oracle = {
        let xra = to_xra_custom(&bushy.tree, &binding);
        xra.eval(catalog.as_ref()).expect("oracle")
    };
    println!("\noracle result: {} joined rows", oracle.len());

    // Phase 2 + execution with SE and FP.
    for strategy in [Strategy::SE, Strategy::FP] {
        let mut input = GeneratorInput::new(&bushy.tree, &bushy.node_cards, &costs, 4);
        input.allow_oversubscribe = true;
        let plan = generate(strategy, &input).expect("plan");
        let out =
            run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).expect("execution");
        assert!(out.relation.multiset_eq(&oracle), "{strategy} diverged");
        println!(
            "{strategy}: {:.1} ms, {} rows (verified)",
            out.elapsed.as_secs_f64() * 1e3,
            out.relation.len()
        );
    }

    // Downstream aggregation: revenue-ish rollup by customer nation.
    // Find the `nation` column in the final concat schema.
    let root_prov = &prov[bushy.tree.root()];
    let cust_off = root_prov
        .iter()
        .find(|(r, _)| r == "customers")
        .map(|(_, off)| *off)
        .expect("customers in result");
    let qty_off = root_prov
        .iter()
        .find(|(r, _)| r == "lineitems")
        .map(|(_, off)| *off)
        .expect("lineitems in result")
        + 2;
    let rollup = aggregate(
        &oracle,
        &[cust_off + 1],
        &[
            AggSpec::new(AggFunc::Count, 0, "line_count"),
            AggSpec::new(AggFunc::Sum, qty_off, "total_qty"),
        ],
    )
    .expect("aggregate");
    println!("\ntop nations by joined line count:");
    let mut rows: Vec<(i64, i64, i64)> = rollup
        .iter()
        .map(|t| (t.int(0).unwrap(), t.int(1).unwrap(), t.int(2).unwrap()))
        .collect();
    rows.sort_by_key(|r| -r.1);
    for (nation, count, qty) in rows.iter().take(5) {
        println!("  nation {nation:>2}: {count:>7} lines, qty {qty}");
    }
}

/// Lowers the tree with the binding's specs into a logical XRA plan.
fn to_xra_custom(tree: &JoinTree, binding: &QueryBinding) -> XraNode {
    fn rec(tree: &JoinTree, id: NodeId, binding: &QueryBinding) -> XraNode {
        match &tree.nodes()[id] {
            TreeNode::Leaf { relation } => XraNode::scan(relation.clone()),
            TreeNode::Join { left, right } => XraNode::join(
                rec(tree, *left, binding),
                rec(tree, *right, binding),
                binding.spec(id).expect("spec").clone(),
                JoinAlgorithm::Simple,
            ),
        }
    }
    rec(tree, tree.root(), binding)
}
