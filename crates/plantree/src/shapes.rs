//! The five experimental query-tree shapes of Fig. 8.
//!
//! All shapes join the same `k` relations `R0..R{k-1}`; under the paper's
//! cost function they all have the same total cost for the regular
//! Wisconsin query (44·N for k = 10 — pinned by a test in [`crate::cost`]),
//! so response-time differences between them are attributable purely to
//! parallelization.

use serde::{Deserialize, Serialize};
use std::fmt;

use mj_relalg::{RelalgError, Result};

use crate::transform::mirror;
use crate::tree::{JoinTree, NodeId};

/// The five shapes used in the experiments (Fig. 8, left to right).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// Every join's right operand is a base relation; the pipeline runs up
    /// the left spine.
    LeftLinear,
    /// A left-oriented long bushy tree: a left spine whose right operands
    /// are two-relation joins.
    LeftBushy,
    /// A balanced (wide) bushy tree.
    WideBushy,
    /// Mirror image of [`Shape::LeftBushy`].
    RightBushy,
    /// Mirror image of [`Shape::LeftLinear`].
    RightLinear,
}

impl Shape {
    /// All five shapes in the paper's presentation order.
    pub const ALL: [Shape; 5] = [
        Shape::LeftLinear,
        Shape::LeftBushy,
        Shape::WideBushy,
        Shape::RightBushy,
        Shape::RightLinear,
    ];

    /// Short label used in reports ("left linear", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Shape::LeftLinear => "left linear",
            Shape::LeftBushy => "left bushy",
            Shape::WideBushy => "wide bushy",
            Shape::RightBushy => "right bushy",
            Shape::RightLinear => "right linear",
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

fn relation_names(k: usize) -> Vec<String> {
    (0..k).map(|i| format!("R{i}")).collect()
}

/// Builds the given shape over `k >= 2` relations named `R0..R{k-1}`.
pub fn build(shape: Shape, k: usize) -> Result<JoinTree> {
    if k < 2 {
        return Err(RelalgError::InvalidPlan(format!(
            "a multi-join needs >=2 relations, got {k}"
        )));
    }
    let names = relation_names(k);
    let tree = match shape {
        Shape::RightLinear => right_linear(&names),
        Shape::LeftLinear => mirror(&right_linear(&names)),
        Shape::RightBushy => right_bushy(&names),
        Shape::LeftBushy => mirror(&right_bushy(&names)),
        Shape::WideBushy => wide_bushy(&names),
    };
    tree.validate()?;
    Ok(tree)
}

/// Right-linear: `R0 ⋈ (R1 ⋈ (R2 ⋈ ...))`. Every left operand is a base
/// relation, so with simple hash joins all builds can proceed in parallel
/// and one probe pipeline runs bottom-to-top (\[Sch90\]).
fn right_linear(names: &[String]) -> JoinTree {
    let mut b = JoinTree::builder();
    let leaves: Vec<NodeId> = names.iter().map(|n| b.leaf(n.clone())).collect();
    // Build from the bottom: deepest join is R{k-2} ⋈ R{k-1}.
    let mut acc = *leaves.last().expect("k >= 2");
    for &leaf in leaves[..leaves.len() - 1].iter().rev() {
        acc = b.join(leaf, acc);
    }
    b.build(acc).expect("construction is valid")
}

/// Right-oriented long bushy: a right spine whose left operands are
/// two-relation joins where possible. For 10 relations this yields the
/// paper's "right-oriented long bushy" tree: 4 pair-joins feeding a
/// 5-join spine.
fn right_bushy(names: &[String]) -> JoinTree {
    let mut b = JoinTree::builder();
    let leaves: Vec<NodeId> = names.iter().map(|n| b.leaf(n.clone())).collect();
    let k = leaves.len();
    // Bottom of the spine: R{k-2} ⋈ R{k-1}.
    let mut acc = b.join(leaves[k - 2], leaves[k - 1]);
    // Remaining leaves R0..R{k-3}, consumed from the deepest end in pairs;
    // each pair becomes a small join used as the left operand of the spine.
    let mut rest = k - 2;
    while rest > 0 {
        if rest >= 2 {
            let pair = b.join(leaves[rest - 2], leaves[rest - 1]);
            acc = b.join(pair, acc);
            rest -= 2;
        } else {
            acc = b.join(leaves[0], acc);
            rest -= 1;
        }
    }
    b.build(acc).expect("construction is valid")
}

/// Wide (balanced) bushy: pair up relations level by level.
fn wide_bushy(names: &[String]) -> JoinTree {
    let mut b = JoinTree::builder();
    let mut level: Vec<NodeId> = names.iter().map(|n| b.leaf(n.clone())).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            next.push(b.join(pair[0], pair[1]));
        }
        // Carry an odd node up unchanged.
        next.extend(it.remainder().iter().copied());
        level = next;
    }
    b.build(level[0]).expect("construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_have_k_minus_1_joins() {
        for shape in Shape::ALL {
            for k in [2, 3, 5, 10] {
                let t = build(shape, k).unwrap();
                assert_eq!(t.join_count(), k - 1, "{shape} k={k}");
                assert_eq!(t.leaf_count(), k, "{shape} k={k}");
                let mut leaves = t.leaves_in_order();
                leaves.sort();
                let mut expected: Vec<String> = relation_names(k);
                expected.sort();
                assert_eq!(
                    leaves,
                    expected.iter().map(String::as_str).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn too_few_relations_rejected() {
        assert!(build(Shape::WideBushy, 1).is_err());
        assert!(build(Shape::WideBushy, 0).is_err());
    }

    #[test]
    fn linear_trees_have_full_depth() {
        let t = build(Shape::RightLinear, 10).unwrap();
        assert_eq!(t.depth(), 9);
        assert_eq!(
            t.right_spine_len(),
            9,
            "right-linear has one long right spine"
        );
        let t = build(Shape::LeftLinear, 10).unwrap();
        assert_eq!(t.depth(), 9);
        assert_eq!(
            t.right_spine_len(),
            1,
            "left-linear's right children are leaves"
        );
    }

    #[test]
    fn wide_bushy_is_shallow() {
        let t = build(Shape::WideBushy, 10).unwrap();
        assert_eq!(t.depth(), 4, "ceil(log2(10)) = 4");
    }

    #[test]
    fn oriented_bushy_depth_between_wide_and_linear() {
        let wide = build(Shape::WideBushy, 10).unwrap().depth();
        let right = build(Shape::RightBushy, 10).unwrap().depth();
        let linear = build(Shape::RightLinear, 10).unwrap().depth();
        assert!(
            wide < right && right < linear,
            "{wide} < {right} < {linear}"
        );
    }

    #[test]
    fn right_bushy_spine_is_long() {
        let t = build(Shape::RightBushy, 10).unwrap();
        // 4 pair joins + the bottom pair join on the spine: spine joins = 5.
        assert_eq!(t.right_spine_len(), 5);
    }

    #[test]
    fn left_shapes_mirror_right_shapes() {
        for (l, r) in [
            (Shape::LeftLinear, Shape::RightLinear),
            (Shape::LeftBushy, Shape::RightBushy),
        ] {
            let lt = build(l, 10).unwrap();
            let rt = build(r, 10).unwrap();
            assert_eq!(lt.depth(), rt.depth());
            assert_eq!(mirror(&lt).right_spine_len(), rt.right_spine_len());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Shape::WideBushy.label(), "wide bushy");
        assert_eq!(Shape::ALL.len(), 5);
        assert_eq!(format!("{}", Shape::LeftLinear), "left linear");
    }
}
