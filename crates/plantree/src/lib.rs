//! Join trees, shapes, the paper's cost model, and phase-1 optimization.
//!
//! The paper adopts two-phase optimization (§1.2): phase 1 picks the join
//! tree with minimal *total* cost using a classical optimizer; phase 2 —
//! the paper's actual subject, implemented in `mj-core` — parallelizes that
//! tree. This crate owns everything about phase 1 and about tree structure:
//!
//! * [`tree`]: an arena-based binary join tree with stable node ids;
//! * [`shapes`]: the five experimental tree shapes of Fig. 8;
//! * [`cost`]: the paper's cost function `a·n1 + b·n2 + c·r` (§4.3);
//! * [`cardinality`]: cardinality models, including the regular Wisconsin
//!   query's "every intermediate is again an N-tuple relation" invariant;
//! * [`optimize`]: bushy DP, linear (System-R style) DP, and a greedy
//!   heuristic over query graphs;
//! * [`segment`]: decomposition of bushy trees into right-deep segments
//!   (\[CLY92\], §3.3);
//! * [`transform`]: tree mirroring ("it is possible without cost penalty to
//!   mirror (parts of) a query to make it more right-oriented", §5);
//! * [`query`]: lowering a tree to the logical XRA plan of the regular
//!   Wisconsin query;
//! * [`parse`]: the spanned text frontend (`SELECT ... FROM ... JOIN ... ON
//!   ...`) producing a syntactic [`QueryAst`] for the session layer to bind;
//! * [`render`]: ASCII tree rendering (Fig. 8 regeneration).

#![warn(missing_docs)]

pub mod cardinality;
pub mod cost;
pub mod optimize;
pub mod parse;
pub mod query;
pub mod render;
pub mod segment;
pub mod shapes;
pub mod transform;
pub mod tree;

pub use cardinality::{CardModel, SelectivityModel, UniformOneToOne};
pub use cost::{CostModel, TreeCosts};
pub use optimize::{
    greedy_tree, iterative_improvement, optimize_bushy, optimize_linear, random_tree,
    simulated_annealing, AnnealingOptions, IterativeOptions, OptimizedPlan, QueryGraph,
    MAX_DP_RELATIONS, MAX_GRAPH_RELATIONS,
};
pub use parse::{parse_query, ParseError, QueryAst, Span};
pub use query::{
    inject_scan_filters, lower, JoinQuery, LoweredQuery, RelFilter, SelectItemSpec, SelectSpec,
};
pub use segment::{segments, Segment, Segmentation};
pub use shapes::Shape;
pub use transform::{mirror, right_orient};
pub use tree::{JoinTree, NodeId, TreeNode};
