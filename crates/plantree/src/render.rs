//! ASCII rendering of join trees (regenerates Fig. 8 and the Fig. 2
//! example tree).

use crate::tree::{JoinTree, NodeId, TreeNode};

/// Renders the tree as an indented ASCII outline, joins annotated with
/// their node ids and an optional label from `label`.
pub fn render_with<F: Fn(NodeId) -> Option<String>>(tree: &JoinTree, label: F) -> String {
    let mut out = String::new();
    render_rec(tree, tree.root(), "", "", &mut out, &label);
    out
}

/// Renders the tree with bare join ids.
pub fn render(tree: &JoinTree) -> String {
    render_with(tree, |_| None)
}

fn render_rec<F: Fn(NodeId) -> Option<String>>(
    tree: &JoinTree,
    id: NodeId,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
    label: &F,
) {
    match &tree.nodes()[id] {
        TreeNode::Leaf { relation } => {
            out.push_str(prefix);
            out.push_str(relation);
            out.push('\n');
        }
        TreeNode::Join { left, right } => {
            out.push_str(prefix);
            match label(id) {
                Some(l) => out.push_str(&format!("⋈ j{id} [{l}]")),
                None => out.push_str(&format!("⋈ j{id}")),
            }
            out.push('\n');
            let left_prefix = format!("{child_prefix}├─ ");
            let left_child_prefix = format!("{child_prefix}│  ");
            render_rec(tree, *left, &left_prefix, &left_child_prefix, out, label);
            let right_prefix = format!("{child_prefix}└─ ");
            let right_child_prefix = format!("{child_prefix}   ");
            render_rec(tree, *right, &right_prefix, &right_child_prefix, out, label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{build, Shape};

    #[test]
    fn renders_all_leaves_and_joins() {
        let t = build(Shape::WideBushy, 4).unwrap();
        let s = render(&t);
        for leaf in ["R0", "R1", "R2", "R3"] {
            assert!(s.contains(leaf), "missing {leaf} in:\n{s}");
        }
        assert_eq!(s.matches('⋈').count(), 3);
    }

    #[test]
    fn labels_appear() {
        let t = build(Shape::RightLinear, 3).unwrap();
        let s = render_with(&t, |id| Some(format!("w={id}")));
        assert!(s.contains("[w="), "{s}");
    }

    #[test]
    fn linear_tree_renders_nested() {
        let t = build(Shape::RightLinear, 4).unwrap();
        let s = render(&t);
        // Three joins, each nested one level deeper.
        assert_eq!(s.matches('⋈').count(), 3);
        assert!(s.lines().count() >= 7);
    }
}
