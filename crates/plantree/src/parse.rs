//! Hand-rolled text frontend for the query subset the planner can
//! execute:
//!
//! ```text
//! SELECT <items|*> FROM r1 JOIN r2 ON r1.a = r2.b [JOIN ...]*
//!     [WHERE pred [AND pred]*] [GROUP BY r.c, ...] [LIMIT n]
//! ```
//!
//! The parser produces a purely syntactic [`QueryAst`] — every identifier
//! carries its byte [`Span`] in the source text, so name-resolution errors
//! downstream (binding against a catalog, in `mj-exec`'s session layer)
//! point at the offending token just like [`ParseError`]s do. No external
//! dependencies; the tokenizer and recursive-descent parser are a few
//! hundred lines.
//!
//! Grammar (keywords case-insensitive, identifiers case-sensitive;
//! `--` starts a comment that runs to end of line; newlines are
//! whitespace):
//!
//! ```text
//! query       := SELECT select_list FROM ident join_clause*
//!                [WHERE predicate (AND predicate)*]
//!                [GROUP BY column (',' column)*]
//!                [LIMIT int]
//! select_list := '*' | item (',' item)*
//! item        := column | agg '(' ('*' | column) ')'
//! agg         := COUNT | SUM | MIN | MAX        (soft keywords)
//! join_clause := JOIN ident ON column '=' column
//! predicate   := scalar cmp scalar
//! scalar      := column | int | param
//! cmp         := '=' | '<>' | '<' | '<=' | '>' | '>='
//! column      := ident '.' ident
//! ident       := [A-Za-z_][A-Za-z0-9_]*
//! int         := '-'? [0-9]+
//! param       := '?' [1-9][0-9]*
//! ```
//!
//! `?N` placeholders (1-based) are only legal where an integer literal
//! could appear in a WHERE comparison; they parse into
//! [`Scalar::Param`] and are bound to concrete values at execute time
//! by the prepared-statement layer.

use std::fmt;

use mj_relalg::ops::AggFunc;
use mj_relalg::CmpOp;
use serde::{Deserialize, Serialize};

/// A byte range into the query source text (`start..end`).
///
/// Serializable so spanned diagnostics travel over the wire intact: the
/// query server's error frames carry the span, and a remote client can
/// render the same caret line a local one would.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse failure, located at a byte span of the source.
/// Serializable for the same reason as [`Span`]: the query server maps it
/// into a typed wire error without losing the location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where in the source text.
    pub span: Span,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing into `source`:
    ///
    /// ```text
    /// parse error at 14: expected `=`
    ///   SELECT * FROM r1 JOIN
    ///                 ^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        render_span(
            source,
            self.span,
            &format!("parse error at {}: {}", self.span.start, self.message),
        )
    }
}

/// Renders `headline` followed by the source line holding `span` and a
/// caret underline — shared by parse errors and the session layer's bind
/// errors so every spanned diagnostic looks the same. Multi-line sources
/// (stdin queries with newlines and `--` comments) underline the line that
/// actually holds the span.
pub fn render_span(source: &str, span: Span, headline: &str) -> String {
    let mut out = format!("{headline}\n");
    // Find the line holding the span.
    let line_start = source[..span.start.min(source.len())]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let line_end = source[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(source.len());
    let line = &source[line_start..line_end];
    out.push_str(&format!("  {line}\n  "));
    let col = span.start.saturating_sub(line_start);
    let width = (span.end - span.start)
        .max(1)
        .min(line.len() + 1 - col.min(line.len()));
    out.push_str(&" ".repeat(col));
    out.push_str(&"^".repeat(width.max(1)));
    out.push('\n');
    out
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An identifier with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text, as written.
    pub name: String,
    /// Its location in the source.
    pub span: Span,
}

/// A qualified column reference `relation.column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// The relation part.
    pub relation: Ident,
    /// The column part.
    pub column: Ident,
}

impl ColumnRef {
    /// Span covering `relation.column`.
    pub fn span(&self) -> Span {
        self.relation.span.to(self.column.span)
    }
}

/// An aggregate call in the select list: `COUNT(*)`, `SUM(r.c)`,
/// `MIN(r.c)`, `MAX(r.c)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument column; `None` is `COUNT(*)`.
    pub arg: Option<ColumnRef>,
    /// Span of the whole call, `COUNT(...)`.
    pub span: Span,
}

/// One item of an explicit select list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(ColumnRef),
    /// An aggregate call.
    Aggregate(AggCall),
}

impl SelectItem {
    /// Source span of the item.
    pub fn span(&self) -> Span {
        match self {
            SelectItem::Column(c) => c.span(),
            SelectItem::Aggregate(a) => a.span,
        }
    }
}

/// The projection list of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectList {
    /// `SELECT *`: every column of every relation, in tree-independent
    /// `(relation, column)` order (the default output of the lowering).
    Star,
    /// An explicit ordered item list (columns and/or aggregate calls).
    Items(Vec<SelectItem>),
}

/// One side of a WHERE comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scalar {
    /// A qualified column.
    Column(ColumnRef),
    /// An integer literal.
    Int(i64, Span),
    /// A 1-based prepared-statement placeholder, `?N`.
    Param(u32, Span),
}

impl Scalar {
    /// Source span of the scalar.
    pub fn span(&self) -> Span {
        match self {
            Scalar::Column(c) => c.span(),
            Scalar::Int(_, span) => *span,
            Scalar::Param(_, span) => *span,
        }
    }
}

/// One WHERE conjunct: `scalar cmp scalar`.
#[derive(Clone, Debug, PartialEq)]
pub struct WhereClause {
    /// Left-hand side.
    pub left: Scalar,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub right: Scalar,
    /// Span of the whole comparison.
    pub span: Span,
}

/// A `LIMIT n` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LimitClause {
    /// Maximum number of result rows.
    pub rows: u64,
    /// Span of the count literal.
    pub span: Span,
}

/// One `JOIN r ON a.x = b.y` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinClause {
    /// The newly joined relation.
    pub relation: Ident,
    /// Left side of the equality.
    pub left: ColumnRef,
    /// Right side of the equality.
    pub right: ColumnRef,
    /// Span of the whole `ON a.x = b.y` condition.
    pub on_span: Span,
}

/// The parsed (but not yet name-resolved) query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryAst {
    /// The projection.
    pub select: SelectList,
    /// The first relation (`FROM`).
    pub from: Ident,
    /// The join clauses, in source order.
    pub joins: Vec<JoinClause>,
    /// The WHERE conjuncts, in source order (empty = no WHERE).
    pub where_clauses: Vec<WhereClause>,
    /// The GROUP BY columns, in source order (empty = no grouping).
    pub group_by: Vec<ColumnRef>,
    /// The LIMIT clause, if any.
    pub limit: Option<LimitClause>,
}

impl QueryAst {
    /// All relation identifiers in source order (`FROM` first).
    pub fn relations(&self) -> Vec<&Ident> {
        let mut out = Vec::with_capacity(1 + self.joins.len());
        out.push(&self.from);
        out.extend(self.joins.iter().map(|j| &j.relation));
        out
    }
}

// --- Tokenizer ---

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Param(u32),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Param(n) => format!("`?{n}`"),
            Tok::Star => "`*`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, Span)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'*' => {
                toks.push((Tok::Star, Span::new(i, i + 1)));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            b'.' => {
                toks.push((Tok::Dot, Span::new(i, i + 1)));
                i += 1;
            }
            b'(' => {
                toks.push((Tok::LParen, Span::new(i, i + 1)));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, Span::new(i, i + 1)));
                i += 1;
            }
            b'=' => {
                toks.push((Tok::Eq, Span::new(i, i + 1)));
                i += 1;
            }
            b'<' => {
                // `<=`, `<>`, or `<`.
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        toks.push((Tok::Le, Span::new(i, i + 2)));
                        i += 2;
                    }
                    Some(b'>') => {
                        toks.push((Tok::Ne, Span::new(i, i + 2)));
                        i += 2;
                    }
                    _ => {
                        toks.push((Tok::Lt, Span::new(i, i + 1)));
                        i += 1;
                    }
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, Span::new(i, i + 1)));
                    i += 1;
                }
            }
            b'-' => {
                // `--` comment to end of line, or a negative int literal.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (tok, span) = lex_int(src, i, i + 1)?;
                    i = span.end;
                    toks.push((tok, span));
                } else {
                    return Err(ParseError::new(
                        "unexpected character `-` (use `--` for comments)",
                        Span::new(i, i + 1),
                    ));
                }
            }
            b'?' => {
                // `?N` prepared-statement placeholder, 1-based.
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let span = Span::new(start, j);
                if j == i + 1 {
                    return Err(ParseError::new(
                        "expected a parameter number after `?` (placeholders are `?1`, `?2`, ...)",
                        span,
                    ));
                }
                let n: u32 = src[i + 1..j].parse().map_err(|_| {
                    ParseError::new(
                        format!("parameter number `{}` out of range", &src[i + 1..j]),
                        span,
                    )
                })?;
                if n == 0 {
                    return Err(ParseError::new(
                        "parameter numbers are 1-based; `?0` is not a placeholder",
                        span,
                    ));
                }
                toks.push((Tok::Param(n), span));
                i = j;
            }
            b'0'..=b'9' => {
                let (tok, span) = lex_int(src, i, i)?;
                i = span.end;
                toks.push((tok, span));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), Span::new(start, i)));
            }
            _ => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", &src[i..i + utf8_len(b)]),
                    Span::new(i, i + utf8_len(b)),
                ))
            }
        }
    }
    Ok(toks)
}

/// Lexes an integer literal starting at `start` whose digits begin at
/// `digits` (one past a leading `-`).
fn lex_int(src: &str, start: usize, digits: usize) -> Result<(Tok, Span), ParseError> {
    let bytes = src.as_bytes();
    let mut i = digits;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let span = Span::new(start, i);
    let v: i64 = src[start..i]
        .parse()
        .map_err(|_| ParseError::new(format!("integer `{}` out of range", &src[start..i]), span))?;
    Ok((Tok::Int(v), span))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// --- Parser ---

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    /// End of input, for end-of-query spans.
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(Tok, Span)> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&(Tok, Span)> {
        self.toks.get(self.pos + 1)
    }

    fn eof_span(&self) -> Span {
        Span::new(self.eof, self.eof)
    }

    fn next(&mut self, what: &str) -> Result<(Tok, Span), ParseError> {
        match self.toks.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => Err(ParseError::new(
                format!("expected {what}, found end of query"),
                self.eof_span(),
            )),
        }
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn keyword(&mut self, kw: &str) -> Result<Span, ParseError> {
        let (tok, span) = self.next(&format!("keyword `{kw}`"))?;
        match &tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(span),
            other => Err(ParseError::new(
                format!("expected keyword `{kw}`, found {}", other.describe()),
                span,
            )),
        }
    }

    /// True if the next token is the given keyword (not consumed).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<Ident, ParseError> {
        let (tok, span) = self.next(what)?;
        match tok {
            Tok::Ident(name) => {
                if is_keyword(&name) {
                    return Err(ParseError::new(
                        format!("expected {what}, found keyword `{name}`"),
                        span,
                    ));
                }
                Ok(Ident { name, span })
            }
            other => Err(ParseError::new(
                format!("expected {what}, found {}", other.describe()),
                span,
            )),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span, ParseError> {
        let what = tok.describe();
        let (found, span) = self.next(&what)?;
        if found == tok {
            Ok(span)
        } else {
            Err(ParseError::new(
                format!("expected {what}, found {}", found.describe()),
                span,
            ))
        }
    }

    fn column(&mut self) -> Result<ColumnRef, ParseError> {
        let relation = self.ident("a `relation.column` reference")?;
        self.expect(Tok::Dot).map_err(|e| {
            ParseError::new(
                format!("columns must be written `relation.column`; {}", e.message),
                e.span,
            )
        })?;
        let column = self.ident("a column name")?;
        Ok(ColumnRef { relation, column })
    }

    /// The aggregate function named by the next token, if the token after
    /// it opens a call — `COUNT`/`SUM`/`MIN`/`MAX` are *soft* keywords, so
    /// columns with those names stay valid.
    fn at_agg_call(&self) -> Option<AggFunc> {
        let (Tok::Ident(name), _) = self.peek()? else {
            return None;
        };
        if !matches!(self.peek2(), Some((Tok::LParen, _))) {
            return None;
        }
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if let Some(func) = self.at_agg_call() {
            let (_, name_span) = self.next("an aggregate")?;
            self.expect(Tok::LParen)?;
            let arg = if matches!(self.peek(), Some((Tok::Star, _))) {
                let (_, star_span) = self.next("`*`")?;
                if func != AggFunc::Count {
                    return Err(ParseError::new(
                        "only COUNT accepts `*`; SUM/MIN/MAX need a `relation.column` argument",
                        star_span,
                    ));
                }
                None
            } else {
                Some(self.column()?)
            };
            let close = self.expect(Tok::RParen)?;
            return Ok(SelectItem::Aggregate(AggCall {
                func,
                arg,
                span: name_span.to(close),
            }));
        }
        Ok(SelectItem::Column(self.column()?))
    }

    fn select_list(&mut self) -> Result<SelectList, ParseError> {
        if matches!(self.peek(), Some((Tok::Star, _))) {
            self.pos += 1;
            return Ok(SelectList::Star);
        }
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Some((Tok::Comma, _))) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(SelectList::Items(items))
    }

    fn join_clause(&mut self) -> Result<JoinClause, ParseError> {
        self.keyword("JOIN")?;
        let relation = self.ident("a relation name")?;
        self.keyword("ON")?;
        let left = self.column()?;
        self.expect(Tok::Eq)?;
        let right = self.column()?;
        let on_span = left.span().to(right.span());
        Ok(JoinClause {
            relation,
            left,
            right,
            on_span,
        })
    }

    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        if let Some((Tok::Int(v), span)) = self.peek() {
            let (v, span) = (*v, *span);
            self.pos += 1;
            return Ok(Scalar::Int(v, span));
        }
        if let Some((Tok::Param(n), span)) = self.peek() {
            let (n, span) = (*n, *span);
            self.pos += 1;
            return Ok(Scalar::Param(n, span));
        }
        Ok(Scalar::Column(self.column()?))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let (tok, span) = self.next("a comparison operator (`=`, `<>`, `<`, `<=`, `>`, `>=`)")?;
        match tok {
            Tok::Eq => Ok(CmpOp::Eq),
            Tok::Ne => Ok(CmpOp::Ne),
            Tok::Lt => Ok(CmpOp::Lt),
            Tok::Le => Ok(CmpOp::Le),
            Tok::Gt => Ok(CmpOp::Gt),
            Tok::Ge => Ok(CmpOp::Ge),
            other => Err(ParseError::new(
                format!(
                    "expected a comparison operator (`=`, `<>`, `<`, `<=`, `>`, `>=`), found {}",
                    other.describe()
                ),
                span,
            )),
        }
    }

    fn where_clause(&mut self) -> Result<WhereClause, ParseError> {
        let left = self.scalar()?;
        let op = self.cmp_op()?;
        let right = self.scalar()?;
        let span = left.span().to(right.span());
        Ok(WhereClause {
            left,
            op,
            right,
            span,
        })
    }

    fn limit_clause(&mut self) -> Result<LimitClause, ParseError> {
        let (tok, span) = self.next("a row count")?;
        match tok {
            Tok::Int(v) if v >= 0 => Ok(LimitClause {
                rows: v as u64,
                span,
            }),
            Tok::Int(v) => Err(ParseError::new(
                format!("LIMIT must be non-negative, got {v}"),
                span,
            )),
            other => Err(ParseError::new(
                format!("expected a row count, found {}", other.describe()),
                span,
            )),
        }
    }

    fn query(&mut self) -> Result<QueryAst, ParseError> {
        self.keyword("SELECT")?;
        let select = self.select_list()?;
        self.keyword("FROM")?;
        let from = self.ident("a relation name")?;
        let mut joins = Vec::new();
        while self.at_keyword("JOIN") {
            joins.push(self.join_clause()?);
        }
        let mut where_clauses = Vec::new();
        if self.at_keyword("WHERE") {
            self.pos += 1;
            where_clauses.push(self.where_clause()?);
            while self.at_keyword("AND") {
                self.pos += 1;
                where_clauses.push(self.where_clause()?);
            }
        }
        let mut group_by = Vec::new();
        if self.at_keyword("GROUP") {
            self.pos += 1;
            self.keyword("BY")?;
            group_by.push(self.column()?);
            while matches!(self.peek(), Some((Tok::Comma, _))) {
                self.pos += 1;
                group_by.push(self.column()?);
            }
        }
        let limit = if self.at_keyword("LIMIT") {
            self.pos += 1;
            Some(self.limit_clause()?)
        } else {
            None
        };
        if let Some((tok, span)) = self.peek() {
            return Err(ParseError::new(
                format!(
                    "expected `JOIN`, `WHERE`, `GROUP BY`, `LIMIT`, or end of query, found {}",
                    tok.describe()
                ),
                *span,
            ));
        }
        Ok(QueryAst {
            select,
            from,
            joins,
            where_clauses,
            group_by,
            limit,
        })
    }
}

fn is_keyword(s: &str) -> bool {
    [
        "select", "from", "join", "on", "where", "group", "by", "limit", "and",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

/// Parses a query text into a [`QueryAst`].
pub fn parse_query(src: &str) -> Result<QueryAst, ParseError> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err(ParseError::new("empty query", Span::new(0, 0)));
    }
    Parser {
        toks,
        pos: 0,
        eof: src.len(),
    }
    .query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_query_with_joins() {
        let q =
            parse_query("SELECT * FROM r0 JOIN r1 ON r0.b = r1.a JOIN r2 ON r1.b = r2.a").unwrap();
        assert_eq!(q.select, SelectList::Star);
        assert_eq!(q.from.name, "r0");
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].relation.name, "r1");
        assert_eq!(q.joins[0].left.relation.name, "r0");
        assert_eq!(q.joins[0].left.column.name, "b");
        assert_eq!(q.joins[1].right.column.name, "a");
        assert!(q.where_clauses.is_empty());
        assert!(q.group_by.is_empty());
        assert!(q.limit.is_none());
        let names: Vec<&str> = q.relations().iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["r0", "r1", "r2"]);
    }

    #[test]
    fn explicit_column_list_and_case_insensitive_keywords() {
        let q = parse_query("select R0.id, R1.id from R0 join R1 on R0.b = R1.a").unwrap();
        match &q.select {
            SelectList::Items(items) => {
                assert_eq!(items.len(), 2);
                let SelectItem::Column(c0) = &items[0] else {
                    panic!("expected column");
                };
                assert_eq!(c0.relation.name, "R0");
            }
            other => panic!("expected items, got {other:?}"),
        }
    }

    #[test]
    fn where_group_by_limit_full_query() {
        let src = "SELECT r0.g, COUNT(*), SUM(r1.v) FROM r0 JOIN r1 ON r0.b = r1.a \
                   WHERE r0.a < 100 AND r1.v >= -5 GROUP BY r0.g LIMIT 10";
        let q = parse_query(src).unwrap();
        let SelectList::Items(items) = &q.select else {
            panic!("expected items");
        };
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[0], SelectItem::Column(_)));
        let SelectItem::Aggregate(count) = &items[1] else {
            panic!("expected aggregate");
        };
        assert_eq!(count.func, AggFunc::Count);
        assert!(count.arg.is_none());
        let SelectItem::Aggregate(sum) = &items[2] else {
            panic!("expected aggregate");
        };
        assert_eq!(sum.func, AggFunc::Sum);
        assert_eq!(sum.arg.as_ref().unwrap().column.name, "v");

        assert_eq!(q.where_clauses.len(), 2);
        let w0 = &q.where_clauses[0];
        assert!(matches!(w0.left, Scalar::Column(_)));
        assert_eq!(w0.op, CmpOp::Lt);
        assert!(matches!(w0.right, Scalar::Int(100, _)));
        assert!(matches!(q.where_clauses[1].right, Scalar::Int(-5, _)));
        assert_eq!(q.where_clauses[1].op, CmpOp::Ge);

        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.group_by[0].column.name, "g");
        assert_eq!(q.limit.unwrap().rows, 10);
    }

    #[test]
    fn newlines_and_comments_preserve_spans() {
        let src = "SELECT * FROM r0 -- pick everything\n\
                   JOIN r1 ON r0.b = r1.a\n\
                   -- a full-line comment\n\
                   WHERE r0.a = 7\n\
                   LIMIT 3";
        let q = parse_query(src).unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.where_clauses.len(), 1);
        assert_eq!(q.limit.unwrap().rows, 3);
        // Spans still index the original source, comments included.
        let j = &q.joins[0];
        assert_eq!(&src[j.relation.span.start..j.relation.span.end], "r1");
        let w = &q.where_clauses[0];
        assert_eq!(&src[w.span.start..w.span.end], "r0.a = 7");
        // An error *after* comments points at the right byte.
        let bad = "SELECT * FROM r0 -- c\nJOIN r1 ON r0.b r1.a";
        let err = parse_query(bad).unwrap_err();
        assert_eq!(&bad[err.span.start..err.span.end], "r1");
        let rendered = err.render(bad);
        assert!(rendered.contains("JOIN r1 ON r0.b r1.a"), "{rendered}");
    }

    #[test]
    fn comment_only_input_is_empty() {
        let err = parse_query("-- nothing here\n  -- still nothing").unwrap_err();
        assert!(err.message.contains("empty query"), "{err}");
    }

    #[test]
    fn spans_point_at_tokens() {
        let src = "SELECT * FROM r0 JOIN r1 ON r0.b = r1.a";
        let q = parse_query(src).unwrap();
        assert_eq!(&src[q.from.span.start..q.from.span.end], "r0");
        let j = &q.joins[0];
        assert_eq!(&src[j.relation.span.start..j.relation.span.end], "r1");
        assert_eq!(&src[j.on_span.start..j.on_span.end], "r0.b = r1.a");
        assert_eq!(&src[j.left.span().start..j.left.span().end], "r0.b");
    }

    /// Reject table: (source, expected span start, message fragment).
    #[test]
    fn reject_table_with_spans() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 0, "empty query"),
            ("FROM r0", 0, "expected keyword `SELECT`"),
            ("SELECT FROM r0", 7, "found keyword `FROM`"),
            ("SELECT * r0", 9, "expected keyword `FROM`"),
            ("SELECT * FROM", 13, "end of query"),
            ("SELECT * FROM r0 JOIN", 21, "end of query"),
            ("SELECT * FROM r0 JOIN r1", 24, "keyword `ON`"),
            ("SELECT * FROM r0 JOIN r1 ON r0.b r1.a", 33, "expected `=`"),
            (
                "SELECT * FROM r0 JOIN r1 ON b = r1.a",
                30,
                "relation.column",
            ),
            ("SELECT * FROM r0 HAVING x", 17, "expected `JOIN`"),
            (
                "SELECT * FROM r0 JOIN r1 ON r0.b = r1.a extra",
                40,
                "expected `JOIN`",
            ),
            ("SELECT r0 FROM r0", 10, "relation.column"),
            ("SELECT * FROM r0 ; drop", 17, "unexpected character `;`"),
            ("SELECT *, r0.a FROM r0", 8, "expected keyword `FROM`"),
            ("SELECT * FROM r0 WHERE", 22, "end of query"),
            ("SELECT * FROM r0 WHERE r0.a", 27, "comparison operator"),
            ("SELECT * FROM r0 WHERE r0.a = ", 30, "end of query"),
            ("SELECT * FROM r0 WHERE r0.a < 5 AND", 35, "end of query"),
            ("SELECT * FROM r0 GROUP r0.a", 23, "keyword `BY`"),
            ("SELECT * FROM r0 GROUP BY", 25, "end of query"),
            ("SELECT * FROM r0 LIMIT", 22, "end of query"),
            ("SELECT * FROM r0 LIMIT r0.a", 23, "expected a row count"),
            ("SELECT * FROM r0 LIMIT -3", 23, "non-negative"),
            ("SELECT SUM(*) FROM r0", 11, "only COUNT accepts `*`"),
            ("SELECT COUNT( FROM r0", 14, "found keyword `FROM`"),
            ("SELECT COUNT(r0.a FROM r0", 18, "expected `)`"),
            (
                "SELECT * FROM r0 WHERE r0.a ! 5",
                28,
                "unexpected character",
            ),
            (
                "SELECT * FROM r0 WHERE r0.a = ?",
                30,
                "expected a parameter number",
            ),
            ("SELECT * FROM r0 WHERE r0.a = ?0", 30, "1-based"),
            (
                "SELECT * FROM r0 WHERE r0.a = ?99999999999",
                30,
                "out of range",
            ),
            ("SELECT * FROM r0 LIMIT ?1", 23, "expected a row count"),
            (
                "SELECT * FROM r0 LIMIT 5 WHERE r0.a = 1",
                25,
                "end of query",
            ),
        ];
        for (src, start, frag) in cases {
            let err = parse_query(src).expect_err(src);
            assert!(
                err.message.contains(frag),
                "{src}: message `{}` missing `{frag}`",
                err.message
            );
            assert_eq!(err.span.start, *start, "{src}: span {:?}", err.span);
        }
    }

    #[test]
    fn render_points_a_caret() {
        let src = "SELECT * FROM r0 JOIN r1 ON r0.b r1.a";
        let err = parse_query(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("parse error at 33"), "{rendered}");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1].trim_end(), format!("  {src}"));
        assert!(lines[2].trim_end().ends_with('^'), "{rendered}");
        // The caret column matches the span start (+2 for the indent).
        assert_eq!(lines[2].find('^').unwrap(), 2 + 33);
    }

    #[test]
    fn render_multiline_points_into_the_right_line() {
        let src = "SELECT *\nFROM r0\nJOIN r1 ON r0.b r1.a";
        let err = parse_query(src).unwrap_err();
        let rendered = err.render(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  JOIN r1 ON r0.b r1.a");
        // Caret at column of `r1.a` within its own line.
        let line_start = src.rfind('\n').unwrap() + 1;
        assert_eq!(
            lines[2].find('^').unwrap(),
            2 + (err.span.start - line_start)
        );
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        let err = parse_query("SELECT * FROM select").unwrap_err();
        assert!(err.message.contains("keyword `select`"), "{err}");
        assert_eq!(err.span.start, 14);
        // The new keywords are reserved too.
        let err = parse_query("SELECT * FROM where").unwrap_err();
        assert!(err.message.contains("keyword `where`"), "{err}");
    }

    #[test]
    fn aggregate_names_are_soft_keywords() {
        // A column named `count` parses as a plain column...
        let q = parse_query("SELECT r0.count FROM r0 JOIN r1 ON r0.b = r1.a").unwrap();
        let SelectList::Items(items) = &q.select else {
            panic!();
        };
        assert!(matches!(&items[0], SelectItem::Column(c) if c.column.name == "count"));
        // ...while `count(` opens an aggregate call, case-insensitively.
        let q = parse_query("SELECT Count(*) FROM r0 JOIN r1 ON r0.b = r1.a").unwrap();
        let SelectList::Items(items) = &q.select else {
            panic!();
        };
        assert!(matches!(
            &items[0],
            SelectItem::Aggregate(a) if a.func == AggFunc::Count
        ));
    }

    #[test]
    fn underscore_and_digit_identifiers() {
        let q = parse_query("SELECT t_1.c2 FROM t_1 JOIN x9 ON t_1.c2 = x9.k").unwrap();
        assert_eq!(q.from.name, "t_1");
        assert_eq!(q.joins[0].relation.name, "x9");
    }

    #[test]
    fn int_literal_edge_cases() {
        let q = parse_query("SELECT * FROM r0 WHERE r0.a = 0 LIMIT 0").unwrap();
        assert!(matches!(q.where_clauses[0].right, Scalar::Int(0, _)));
        assert_eq!(q.limit.unwrap().rows, 0);
        // Literal-vs-literal parses (binding rejects it later).
        let q = parse_query("SELECT * FROM r0 WHERE 1 = 1").unwrap();
        assert!(matches!(q.where_clauses[0].left, Scalar::Int(1, _)));
        // Out-of-range integers are a spanned lex error.
        let err = parse_query("SELECT * FROM r0 LIMIT 99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        assert_eq!(err.span.start, 23);
    }

    #[test]
    fn param_placeholders() {
        let src = "SELECT * FROM r0 WHERE r0.a < ?1 AND ?2 <= r0.b";
        let q = parse_query(src).unwrap();
        assert_eq!(q.where_clauses.len(), 2);
        let w0 = &q.where_clauses[0];
        assert!(matches!(w0.right, Scalar::Param(1, _)));
        let span = w0.right.span();
        assert_eq!(&src[span.start..span.end], "?1");
        // Params can lead a comparison too.
        assert!(matches!(q.where_clauses[1].left, Scalar::Param(2, _)));
        // Multi-digit parameter numbers lex as one token.
        let q = parse_query("SELECT * FROM r0 WHERE r0.a = ?12").unwrap();
        assert!(matches!(q.where_clauses[0].right, Scalar::Param(12, _)));
    }

    #[test]
    fn span_to_merges() {
        assert_eq!(Span::new(2, 4).to(Span::new(7, 9)), Span::new(2, 9));
        assert_eq!(Span::new(7, 9).to(Span::new(2, 4)), Span::new(2, 9));
    }
}
