//! Hand-rolled text frontend for the join-query subset the planner can
//! execute:
//!
//! ```text
//! SELECT <r.c, ...|*> FROM r1 JOIN r2 ON r1.a = r2.b [JOIN r3 ON ...]*
//! ```
//!
//! The parser produces a purely syntactic [`QueryAst`] — every identifier
//! carries its byte [`Span`] in the source text, so name-resolution errors
//! downstream (binding against a catalog, in `mj-exec`'s session layer)
//! point at the offending token just like [`ParseError`]s do. No external
//! dependencies; the tokenizer and recursive-descent parser are a few
//! hundred lines.
//!
//! Grammar (keywords case-insensitive, identifiers case-sensitive):
//!
//! ```text
//! query       := SELECT select_list FROM ident join_clause*
//! select_list := '*' | column (',' column)*
//! join_clause := JOIN ident ON column '=' column
//! column      := ident '.' ident
//! ident       := [A-Za-z_][A-Za-z0-9_]*
//! ```

use std::fmt;

/// A byte range into the query source text (`start..end`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse failure, located at a byte span of the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where in the source text.
    pub span: Span,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing into `source`:
    ///
    /// ```text
    /// parse error at 14: expected `=`
    ///   SELECT * FROM r1 JOIN
    ///                 ^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        render_span(
            source,
            self.span,
            &format!("parse error at {}: {}", self.span.start, self.message),
        )
    }
}

/// Renders `headline` followed by the source line holding `span` and a
/// caret underline — shared by parse errors and the session layer's bind
/// errors so every spanned diagnostic looks the same.
pub fn render_span(source: &str, span: Span, headline: &str) -> String {
    let mut out = format!("{headline}\n");
    // Single-line queries dominate; find the line holding the span.
    let line_start = source[..span.start.min(source.len())]
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let line_end = source[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(source.len());
    let line = &source[line_start..line_end];
    out.push_str(&format!("  {line}\n  "));
    let col = span.start.saturating_sub(line_start);
    let width = (span.end - span.start)
        .max(1)
        .min(line.len() + 1 - col.min(line.len()));
    out.push_str(&" ".repeat(col));
    out.push_str(&"^".repeat(width.max(1)));
    out.push('\n');
    out
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An identifier with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text, as written.
    pub name: String,
    /// Its location in the source.
    pub span: Span,
}

/// A qualified column reference `relation.column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// The relation part.
    pub relation: Ident,
    /// The column part.
    pub column: Ident,
}

impl ColumnRef {
    /// Span covering `relation.column`.
    pub fn span(&self) -> Span {
        self.relation.span.to(self.column.span)
    }
}

/// The projection list of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectList {
    /// `SELECT *`: every column of every relation, in tree-independent
    /// `(relation, column)` order (the default output of the lowering).
    Star,
    /// An explicit ordered column list.
    Columns(Vec<ColumnRef>),
}

/// One `JOIN r ON a.x = b.y` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinClause {
    /// The newly joined relation.
    pub relation: Ident,
    /// Left side of the equality.
    pub left: ColumnRef,
    /// Right side of the equality.
    pub right: ColumnRef,
    /// Span of the whole `ON a.x = b.y` condition.
    pub on_span: Span,
}

/// The parsed (but not yet name-resolved) query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAst {
    /// The projection.
    pub select: SelectList,
    /// The first relation (`FROM`).
    pub from: Ident,
    /// The join clauses, in source order.
    pub joins: Vec<JoinClause>,
}

impl QueryAst {
    /// All relation identifiers in source order (`FROM` first).
    pub fn relations(&self) -> Vec<&Ident> {
        let mut out = Vec::with_capacity(1 + self.joins.len());
        out.push(&self.from);
        out.extend(self.joins.iter().map(|j| &j.relation));
        out
    }
}

// --- Tokenizer ---

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Star,
    Comma,
    Dot,
    Eq,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Star => "`*`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Eq => "`=`".into(),
        }
    }
}

fn tokenize(src: &str) -> Result<Vec<(Tok, Span)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'*' => {
                toks.push((Tok::Star, Span::new(i, i + 1)));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            b'.' => {
                toks.push((Tok::Dot, Span::new(i, i + 1)));
                i += 1;
            }
            b'=' => {
                toks.push((Tok::Eq, Span::new(i, i + 1)));
                i += 1;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), Span::new(start, i)));
            }
            _ => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", &src[i..i + utf8_len(b)]),
                    Span::new(i, i + utf8_len(b)),
                ))
            }
        }
    }
    Ok(toks)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// --- Parser ---

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    /// End of input, for end-of-query spans.
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(Tok, Span)> {
        self.toks.get(self.pos)
    }

    fn eof_span(&self) -> Span {
        Span::new(self.eof, self.eof)
    }

    fn next(&mut self, what: &str) -> Result<(Tok, Span), ParseError> {
        match self.toks.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => Err(ParseError::new(
                format!("expected {what}, found end of query"),
                self.eof_span(),
            )),
        }
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn keyword(&mut self, kw: &str) -> Result<Span, ParseError> {
        let (tok, span) = self.next(&format!("keyword `{kw}`"))?;
        match &tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(span),
            other => Err(ParseError::new(
                format!("expected keyword `{kw}`, found {}", other.describe()),
                span,
            )),
        }
    }

    /// True if the next token is the given keyword (not consumed).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<Ident, ParseError> {
        let (tok, span) = self.next(what)?;
        match tok {
            Tok::Ident(name) => {
                if is_keyword(&name) {
                    return Err(ParseError::new(
                        format!("expected {what}, found keyword `{name}`"),
                        span,
                    ));
                }
                Ok(Ident { name, span })
            }
            other => Err(ParseError::new(
                format!("expected {what}, found {}", other.describe()),
                span,
            )),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span, ParseError> {
        let what = tok.describe();
        let (found, span) = self.next(&what)?;
        if found == tok {
            Ok(span)
        } else {
            Err(ParseError::new(
                format!("expected {what}, found {}", found.describe()),
                span,
            ))
        }
    }

    fn column(&mut self) -> Result<ColumnRef, ParseError> {
        let relation = self.ident("a `relation.column` reference")?;
        self.expect(Tok::Dot).map_err(|e| {
            ParseError::new(
                format!("columns must be written `relation.column`; {}", e.message),
                e.span,
            )
        })?;
        let column = self.ident("a column name")?;
        Ok(ColumnRef { relation, column })
    }

    fn select_list(&mut self) -> Result<SelectList, ParseError> {
        if matches!(self.peek(), Some((Tok::Star, _))) {
            self.pos += 1;
            return Ok(SelectList::Star);
        }
        let mut cols = vec![self.column()?];
        while matches!(self.peek(), Some((Tok::Comma, _))) {
            self.pos += 1;
            cols.push(self.column()?);
        }
        Ok(SelectList::Columns(cols))
    }

    fn join_clause(&mut self) -> Result<JoinClause, ParseError> {
        self.keyword("JOIN")?;
        let relation = self.ident("a relation name")?;
        self.keyword("ON")?;
        let left = self.column()?;
        self.expect(Tok::Eq)?;
        let right = self.column()?;
        let on_span = left.span().to(right.span());
        Ok(JoinClause {
            relation,
            left,
            right,
            on_span,
        })
    }

    fn query(&mut self) -> Result<QueryAst, ParseError> {
        self.keyword("SELECT")?;
        let select = self.select_list()?;
        self.keyword("FROM")?;
        let from = self.ident("a relation name")?;
        let mut joins = Vec::new();
        while self.at_keyword("JOIN") {
            joins.push(self.join_clause()?);
        }
        if let Some((tok, span)) = self.peek() {
            return Err(ParseError::new(
                format!("expected `JOIN` or end of query, found {}", tok.describe()),
                *span,
            ));
        }
        Ok(QueryAst {
            select,
            from,
            joins,
        })
    }
}

fn is_keyword(s: &str) -> bool {
    ["select", "from", "join", "on"]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
}

/// Parses a query text into a [`QueryAst`].
pub fn parse_query(src: &str) -> Result<QueryAst, ParseError> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err(ParseError::new("empty query", Span::new(0, 0)));
    }
    Parser {
        toks,
        pos: 0,
        eof: src.len(),
    }
    .query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_query_with_joins() {
        let q =
            parse_query("SELECT * FROM r0 JOIN r1 ON r0.b = r1.a JOIN r2 ON r1.b = r2.a").unwrap();
        assert_eq!(q.select, SelectList::Star);
        assert_eq!(q.from.name, "r0");
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].relation.name, "r1");
        assert_eq!(q.joins[0].left.relation.name, "r0");
        assert_eq!(q.joins[0].left.column.name, "b");
        assert_eq!(q.joins[1].right.column.name, "a");
        let names: Vec<&str> = q.relations().iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["r0", "r1", "r2"]);
    }

    #[test]
    fn explicit_column_list_and_case_insensitive_keywords() {
        let q = parse_query("select R0.id, R1.id from R0 join R1 on R0.b = R1.a").unwrap();
        match &q.select {
            SelectList::Columns(cols) => {
                assert_eq!(cols.len(), 2);
                assert_eq!(cols[0].relation.name, "R0");
                assert_eq!(cols[1].column.name, "id");
            }
            other => panic!("expected columns, got {other:?}"),
        }
    }

    #[test]
    fn spans_point_at_tokens() {
        let src = "SELECT * FROM r0 JOIN r1 ON r0.b = r1.a";
        let q = parse_query(src).unwrap();
        assert_eq!(&src[q.from.span.start..q.from.span.end], "r0");
        let j = &q.joins[0];
        assert_eq!(&src[j.relation.span.start..j.relation.span.end], "r1");
        assert_eq!(&src[j.on_span.start..j.on_span.end], "r0.b = r1.a");
        assert_eq!(&src[j.left.span().start..j.left.span().end], "r0.b");
    }

    /// Reject table: (source, expected span start, message fragment).
    #[test]
    fn reject_table_with_spans() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 0, "empty query"),
            ("FROM r0", 0, "expected keyword `SELECT`"),
            ("SELECT FROM r0", 7, "found keyword `FROM`"),
            ("SELECT * r0", 9, "expected keyword `FROM`"),
            ("SELECT * FROM", 13, "end of query"),
            ("SELECT * FROM r0 JOIN", 21, "end of query"),
            ("SELECT * FROM r0 JOIN r1", 24, "keyword `ON`"),
            ("SELECT * FROM r0 JOIN r1 ON r0.b r1.a", 33, "expected `=`"),
            (
                "SELECT * FROM r0 JOIN r1 ON b = r1.a",
                30,
                "relation.column",
            ),
            ("SELECT * FROM r0 WHERE x", 17, "expected `JOIN` or end"),
            (
                "SELECT * FROM r0 JOIN r1 ON r0.b = r1.a extra",
                40,
                "expected `JOIN` or end",
            ),
            ("SELECT r0 FROM r0", 10, "relation.column"),
            ("SELECT * FROM r0 ; drop", 17, "unexpected character `;`"),
            ("SELECT *, r0.a FROM r0", 8, "expected keyword `FROM`"),
        ];
        for (src, start, frag) in cases {
            let err = parse_query(src).expect_err(src);
            assert!(
                err.message.contains(frag),
                "{src}: message `{}` missing `{frag}`",
                err.message
            );
            assert_eq!(err.span.start, *start, "{src}: span {:?}", err.span);
        }
    }

    #[test]
    fn render_points_a_caret() {
        let src = "SELECT * FROM r0 JOIN r1 ON r0.b r1.a";
        let err = parse_query(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("parse error at 33"), "{rendered}");
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1].trim_end(), format!("  {src}"));
        assert!(lines[2].trim_end().ends_with('^'), "{rendered}");
        // The caret column matches the span start (+2 for the indent).
        assert_eq!(lines[2].find('^').unwrap(), 2 + 33);
    }

    #[test]
    fn keywords_cannot_be_identifiers() {
        let err = parse_query("SELECT * FROM select").unwrap_err();
        assert!(err.message.contains("keyword `select`"), "{err}");
        assert_eq!(err.span.start, 14);
    }

    #[test]
    fn underscore_and_digit_identifiers() {
        let q = parse_query("SELECT t_1.c2 FROM t_1 JOIN x9 ON t_1.c2 = x9.k").unwrap();
        assert_eq!(q.from.name, "t_1");
        assert_eq!(q.joins[0].relation.name, "x9");
    }

    #[test]
    fn span_to_merges() {
        assert_eq!(Span::new(2, 4).to(Span::new(7, 9)), Span::new(2, 9));
        assert_eq!(Span::new(7, 9).to(Span::new(2, 4)), Span::new(2, 9));
    }
}
