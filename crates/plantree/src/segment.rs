//! Right-deep segmentation of bushy trees (\[CLY92\], §3.3).
//!
//! A bushy tree is viewed as a set of *right-deep segments*: maximal chains
//! of joins linked through right children. Within a segment, all hash
//! tables (left operands) can be built concurrently and one probe stream
//! then pipelines bottom-to-top. Segments connected by a
//! producer–consumer edge run sequentially; independent segments run
//! concurrently on disjoint processors.
//!
//! Degenerate cases (tested below): a right-linear tree is a single
//! segment (RD ≡ FP); a left-linear tree is one single-join segment per
//! join (RD ≡ SP) — exactly the coincidences the paper observes in
//! Figs. 9 and 13.

use crate::tree::{JoinTree, NodeId};

/// One right-deep segment: joins in bottom-up pipeline order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Join node ids, deepest (pipeline entry) first, segment top last.
    pub joins: Vec<NodeId>,
}

impl Segment {
    /// The top (shallowest) join — the segment's producer node.
    pub fn top(&self) -> NodeId {
        *self.joins.last().expect("segments are non-empty")
    }

    /// The bottom join, whose right operand feeds the probe pipeline.
    pub fn bottom(&self) -> NodeId {
        self.joins[0]
    }

    /// Number of joins in the segment.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    /// Segments always contain at least one join.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }
}

/// The segmentation of a tree.
#[derive(Clone, Debug)]
pub struct Segmentation {
    /// All segments. Order follows discovery (root's segment first).
    pub segments: Vec<Segment>,
    /// Segment index per node id (None for leaves).
    pub seg_of: Vec<Option<usize>>,
    /// For each segment, the segments whose outputs it consumes (via left
    /// operands of its joins).
    pub deps: Vec<Vec<usize>>,
}

impl Segmentation {
    /// Groups segments into topological waves: wave `i` contains segments
    /// whose dependencies all lie in waves `< i`. Segments in one wave are
    /// mutually independent and may run concurrently (the RD schedule).
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let n = self.segments.len();
        let mut wave_of = vec![usize::MAX; n];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        // Dependencies always point "downward" to segments discovered later
        // (children have smaller node ids but segments are discovered from
        // the root), so iterate until fixpoint; n is small.
        let mut remaining: Vec<usize> = (0..n).collect();
        while !remaining.is_empty() {
            let mut this_wave = Vec::new();
            for &s in &remaining {
                if self.deps[s].iter().all(|&d| wave_of[d] != usize::MAX) {
                    this_wave.push(s);
                }
            }
            assert!(!this_wave.is_empty(), "segment dependency cycle");
            for &s in &this_wave {
                wave_of[s] = waves.len();
            }
            remaining.retain(|s| wave_of[*s] == usize::MAX);
            waves.push(this_wave);
        }
        waves
    }

    /// Wave index per segment: `wave_of()[s]` is the topological wave
    /// segment `s` runs in (see [`waves`](Self::waves)).
    pub fn wave_of(&self) -> Vec<usize> {
        let mut wave_of = vec![0usize; self.segments.len()];
        for (w, segs) in self.waves().iter().enumerate() {
            for &s in segs {
                wave_of[s] = w;
            }
        }
        wave_of
    }

    /// Wave index per tree node (`None` for leaves): the export the
    /// execution scheduler consumes. Join nodes inherit the wave of their
    /// segment, so a scheduler can prioritize earlier waves while letting
    /// independent segments of one wave interleave on a shared worker
    /// pool — the §4 schedule on a fixed processor set.
    pub fn node_waves(&self) -> Vec<Option<usize>> {
        let wave_of = self.wave_of();
        self.seg_of
            .iter()
            .map(|seg| seg.map(|s| wave_of[s]))
            .collect()
    }
}

/// Decomposes `tree` into right-deep segments.
pub fn segments(tree: &JoinTree) -> Segmentation {
    let mut segmentation = Segmentation {
        segments: Vec::new(),
        seg_of: vec![None; tree.nodes().len()],
        deps: Vec::new(),
    };
    if tree.is_leaf(tree.root()) {
        return segmentation;
    }
    // Discover segments starting from every segment top. A join tops a
    // segment iff it is the root or the *left* child of its parent.
    discover(tree, tree.root(), &mut segmentation);
    segmentation
}

fn discover(tree: &JoinTree, top: NodeId, out: &mut Segmentation) -> usize {
    // Walk the right spine from `top`, collecting the segment's joins.
    let mut chain = Vec::new();
    let mut cur = top;
    loop {
        chain.push(cur);
        let (_, right) = tree.children(cur).expect("segment nodes are joins");
        if tree.is_leaf(right) {
            break;
        }
        cur = right;
    }
    chain.reverse(); // bottom-up order
    let seg_idx = out.segments.len();
    out.segments.push(Segment {
        joins: chain.clone(),
    });
    out.deps.push(Vec::new());
    for &j in &chain {
        out.seg_of[j] = Some(seg_idx);
    }
    // Left children that are joins top their own segments; record deps.
    for &j in &chain {
        let (left, _) = tree.children(j).expect("join");
        if !tree.is_leaf(left) {
            let dep = discover(tree, left, out);
            out.deps[seg_idx].push(dep);
        }
    }
    seg_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{build, Shape};

    #[test]
    fn right_linear_is_one_segment() {
        let t = build(Shape::RightLinear, 10).unwrap();
        let s = segments(&t);
        assert_eq!(s.segments.len(), 1);
        assert_eq!(s.segments[0].len(), 9);
        assert_eq!(s.waves().len(), 1);
        assert_eq!(s.segments[0].top(), t.root());
    }

    #[test]
    fn left_linear_degenerates_to_singleton_segments() {
        let t = build(Shape::LeftLinear, 10).unwrap();
        let s = segments(&t);
        assert_eq!(s.segments.len(), 9, "every join is its own segment");
        assert!(s.segments.iter().all(|seg| seg.len() == 1));
        // Chained dependencies force 9 sequential waves: RD == SP here.
        assert_eq!(s.waves().len(), 9);
        assert!(s.waves().iter().all(|w| w.len() == 1));
    }

    #[test]
    fn every_join_is_in_exactly_one_segment() {
        for shape in Shape::ALL {
            let t = build(shape, 10).unwrap();
            let s = segments(&t);
            let covered: usize = s.segments.iter().map(Segment::len).sum();
            assert_eq!(covered, 9, "{shape}");
            for j in t.joins_bottom_up() {
                assert!(s.seg_of[j].is_some(), "{shape} join {j}");
            }
            for leaf in 0..t.nodes().len() {
                if t.is_leaf(leaf) {
                    assert!(s.seg_of[leaf].is_none());
                }
            }
        }
    }

    #[test]
    fn segment_internal_order_is_bottom_up() {
        let t = build(Shape::RightBushy, 10).unwrap();
        let s = segments(&t);
        for seg in &s.segments {
            // Along a right spine the deeper join was created first, and
            // each join's right child is the previous join in the chain.
            for w in seg.joins.windows(2) {
                let (_, right) = t.children(w[1]).unwrap();
                assert_eq!(right, w[0]);
            }
        }
    }

    #[test]
    fn deps_reference_left_subtree_segments() {
        // Fig. 2-like tree: J_top = (leaf ⋈ J5); J5 = (J4 ⋈ J3);
        // J4, J3 joins of leaves.
        let mut b = JoinTree::builder();
        let ra = b.leaf("Ra");
        let rb = b.leaf("Rb");
        let rc = b.leaf("Rc");
        let rd = b.leaf("Rd");
        let re = b.leaf("Re");
        let j4 = b.join(rb, rc);
        let j3 = b.join(rd, re);
        let j5 = b.join(j4, j3);
        let j1 = b.join(ra, j5);
        let t = b.build(j1).unwrap();

        let s = segments(&t);
        // Segment A: [j3, j5, j1] (right spine of the root); segment B: [j4].
        assert_eq!(s.segments.len(), 2);
        let a = s.seg_of[j1].unwrap();
        let b_idx = s.seg_of[j4].unwrap();
        assert_eq!(s.segments[a].joins, vec![j3, j5, j1]);
        assert_eq!(s.segments[b_idx].joins, vec![j4]);
        assert_eq!(s.deps[a], vec![b_idx]);
        assert!(s.deps[b_idx].is_empty());
        // Waves: B first, then A — matching Fig. 6's schedule.
        let waves = s.waves();
        assert_eq!(waves, vec![vec![b_idx], vec![a]]);
    }

    #[test]
    fn wide_bushy_has_parallel_waves() {
        let t = build(Shape::WideBushy, 10).unwrap();
        let s = segments(&t);
        let waves = s.waves();
        // The first wave must contain more than one independent segment.
        assert!(waves[0].len() > 1, "waves: {waves:?}");
    }

    #[test]
    fn node_waves_follow_segment_waves() {
        for shape in Shape::ALL {
            let t = build(shape, 10).unwrap();
            let s = segments(&t);
            let node_waves = s.node_waves();
            let waves = s.waves();
            for (node, wave) in node_waves.iter().enumerate() {
                match (t.is_leaf(node), wave) {
                    (true, None) => {}
                    (false, Some(w)) => {
                        let seg = s.seg_of[node].unwrap();
                        assert!(waves[*w].contains(&seg), "{shape} node {node}");
                        // Every dependency segment lies in an earlier wave.
                        for &d in &s.deps[seg] {
                            assert!(s.wave_of()[d] < *w, "{shape} node {node}");
                        }
                    }
                    other => panic!("{shape} node {node}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn single_leaf_has_no_segments() {
        let t = JoinTree::single("R");
        let s = segments(&t);
        assert!(s.segments.is_empty());
        assert!(s.waves().is_empty());
    }
}
