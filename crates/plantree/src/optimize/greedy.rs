//! Greedy phase-1 heuristic: repeatedly join the connected pair of
//! components whose result is smallest (ties broken by join cost, then by
//! component indices for determinism). In the spirit of the partially
//! heuristic algorithms of [LST91, SWG88] that "aim at limiting the time
//! spent on searching the space of possible query trees" (§1.2).

use mj_relalg::{RelalgError, Result};

use crate::cost::CostModel;
use crate::tree::{JoinTree, NodeId};

use super::{OptimizedPlan, QueryGraph};

struct Component {
    mask: u32,
    node: NodeId,
    card: f64,
}

/// Builds a join tree greedily. Runs in O(k^3) for k relations; accepts
/// graphs larger than the DP limit.
pub fn greedy_tree(graph: &QueryGraph, cost: &CostModel) -> Result<OptimizedPlan> {
    if graph.len() < 2 {
        return Err(RelalgError::InvalidPlan(
            "optimizer needs >= 2 relations".into(),
        ));
    }
    if graph.len() > 32 {
        return Err(RelalgError::InvalidPlan(
            "greedy optimizer supports <= 32 relations".into(),
        ));
    }
    if !graph.is_connected() {
        return Err(RelalgError::InvalidPlan(
            "query graph is disconnected (cartesian products are not enumerated)".into(),
        ));
    }

    let mut builder = JoinTree::builder();
    let mut node_cards: Vec<u64> = Vec::new();
    let mut comps: Vec<Component> = (0..graph.len())
        .map(|i| {
            let node = builder.leaf(graph.names()[i].clone());
            node_cards.push(graph.cards()[i]);
            Component {
                mask: 1 << i,
                node,
                card: graph.cards()[i] as f64,
            }
        })
        .collect();
    let mut total_cost = 0.0;

    while comps.len() > 1 {
        // Find the connected pair with the smallest result cardinality.
        let mut best: Option<(usize, usize, f64, f64)> = None; // (i, j, result_card, join_cost)
        for i in 0..comps.len() {
            for j in i + 1..comps.len() {
                if !graph.connects(comps[i].mask, comps[j].mask) {
                    continue;
                }
                let result = graph.subset_card(comps[i].mask | comps[j].mask);
                let jc = cost.join_cost(
                    comps[i].card as u64,
                    comps[i].mask.count_ones() == 1,
                    comps[j].card as u64,
                    comps[j].mask.count_ones() == 1,
                    result as u64,
                );
                let better = match best {
                    None => true,
                    Some((_, _, bc, bj)) => {
                        result < bc - 1e-12 || ((result - bc).abs() <= 1e-12 && jc < bj)
                    }
                };
                if better {
                    best = Some((i, j, result, jc));
                }
            }
        }
        let (i, j, result, jc) = best.expect("connected graph always has a joinable pair");
        total_cost += jc;
        let joined = builder.join(comps[i].node, comps[j].node);
        node_cards.push(result as u64);
        let merged = Component {
            mask: comps[i].mask | comps[j].mask,
            node: joined,
            card: result,
        };
        // Remove j first (j > i) to keep indices valid.
        comps.remove(j);
        comps.remove(i);
        comps.push(merged);
    }

    let tree = builder.build(comps[0].node)?;
    Ok(OptimizedPlan {
        tree,
        total_cost,
        node_cards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::optimize_bushy;

    #[test]
    fn regular_chain_reaches_the_invariant_optimum() {
        let n = 777u64;
        let g = QueryGraph::regular_chain(10, n).unwrap();
        let plan = greedy_tree(&g, &CostModel::default()).unwrap();
        assert!((plan.total_cost - 44.0 * n as f64).abs() < 1e-6);
        assert_eq!(plan.tree.join_count(), 9);
        assert!(plan.tree.validate().is_ok());
    }

    #[test]
    fn never_beats_exhaustive_dp() {
        let mut g = QueryGraph::new();
        let a = g.add_relation("A", 900).unwrap();
        let b = g.add_relation("B", 30).unwrap();
        let c = g.add_relation("C", 4000).unwrap();
        let d = g.add_relation("D", 75).unwrap();
        g.add_edge(a, b, 0.02).unwrap();
        g.add_edge(b, c, 0.0005).unwrap();
        g.add_edge(c, d, 0.01).unwrap();
        let greedy = greedy_tree(&g, &CostModel::default()).unwrap();
        let bushy = optimize_bushy(&g, &CostModel::default()).unwrap();
        assert!(bushy.total_cost <= greedy.total_cost + 1e-6);
    }

    #[test]
    fn handles_graphs_beyond_dp_limit() {
        // 24 relations: too many for the DP guard, fine for greedy.
        let g = QueryGraph::regular_chain(24, 50).unwrap();
        let plan = greedy_tree(&g, &CostModel::default()).unwrap();
        assert_eq!(plan.tree.join_count(), 23);
    }

    #[test]
    fn deterministic() {
        let g = QueryGraph::regular_chain(12, 100).unwrap();
        let a = greedy_tree(&g, &CostModel::default()).unwrap();
        let b = greedy_tree(&g, &CostModel::default()).unwrap();
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut g = QueryGraph::new();
        g.add_relation("A", 1).unwrap();
        assert!(greedy_tree(&g, &CostModel::default()).is_err());
    }
}
