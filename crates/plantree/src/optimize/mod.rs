//! Phase-1 optimization: find the join tree with minimal *total* cost.
//!
//! The paper adopts two-phase optimization from \[HoS91\]: "The first phase
//! chooses the tree that has the lowest total execution costs and the
//! second phase finds a suitable parallelization for this tree" (§1.2).
//! Three phase-1 algorithms are provided:
//!
//! * [`optimize_bushy`] — exhaustive dynamic programming over connected
//!   subgraphs, bushy trees allowed (the space \[KBZ86\] argues parallel
//!   systems need);
//! * [`optimize_linear`] — System-R style DP restricted to left-deep
//!   (linear) trees \[SAC79\];
//! * [`greedy_tree`] — a greedy heuristic in the spirit of [LST91, SWG88]
//!   for graphs too large to enumerate.
//!
//! None of them consider parallelism — by design. Cartesian products are
//! never enumerated, matching System R.

mod dp_bushy;
mod dp_linear;
mod greedy;
mod local;

pub use dp_bushy::optimize_bushy;
pub use dp_linear::optimize_linear;
pub use greedy::greedy_tree;
pub use local::{
    iterative_improvement, random_tree, simulated_annealing, AnnealingOptions, IterativeOptions,
};

use mj_relalg::{RelalgError, Result};

use crate::tree::JoinTree;

/// Largest relation count the exhaustive optimizers accept (the DP state is
/// a bitmask over relations).
pub const MAX_DP_RELATIONS: usize = 20;

/// Largest relation count a [`QueryGraph`] can hold: the adjacency and
/// subset machinery is a `u32` bitmask, so relation 32 would silently
/// shift out of range.
pub const MAX_GRAPH_RELATIONS: usize = 32;

/// A query graph: relations with cardinalities, and equi-join edges with
/// selectivities.
#[derive(Clone, Debug)]
pub struct QueryGraph {
    names: Vec<String>,
    cards: Vec<u64>,
    /// Adjacency: for each relation, a bitmask of its neighbours.
    adj: Vec<u32>,
    edges: Vec<(usize, usize, f64)>,
}

impl QueryGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        QueryGraph {
            names: Vec::new(),
            cards: Vec::new(),
            adj: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a relation, returning its index. At most
    /// [`MAX_GRAPH_RELATIONS`] relations fit: the adjacency sets and the
    /// DP subset machinery are `u32` bitmasks, and a 33rd relation would
    /// silently corrupt both (`1 << 32` wraps).
    pub fn add_relation(&mut self, name: impl Into<String>, card: u64) -> Result<usize> {
        if self.names.len() >= MAX_GRAPH_RELATIONS {
            return Err(RelalgError::InvalidPlan(format!(
                "query graph holds at most {MAX_GRAPH_RELATIONS} relations \
                 (u32 bitmask); rejecting relation {}",
                self.names.len() + 1
            )));
        }
        self.names.push(name.into());
        self.cards.push(card);
        self.adj.push(0);
        Ok(self.names.len() - 1)
    }

    /// Adds a join edge between relations `a` and `b` with the given
    /// selectivity in `(0, 1]`. NaN and out-of-range selectivities are
    /// rejected — they would make [`QueryGraph::subset_card`] and every DP
    /// cost nonsensical.
    pub fn add_edge(&mut self, a: usize, b: usize, selectivity: f64) -> Result<()> {
        if a >= self.names.len() || b >= self.names.len() || a == b {
            return Err(RelalgError::InvalidPlan(format!("bad edge ({a}, {b})")));
        }
        if !(selectivity > 0.0 && selectivity <= 1.0) {
            return Err(RelalgError::InvalidPlan(format!(
                "selectivity {selectivity} outside (0, 1]"
            )));
        }
        self.adj[a] |= 1 << b;
        self.adj[b] |= 1 << a;
        self.edges.push((a.min(b), a.max(b), selectivity));
        Ok(())
    }

    /// Builds the paper's chain query: `k` relations of `n` tuples, joined
    /// neighbour-to-neighbour with selectivity `1/n` (each join a perfect
    /// 1-to-1 match).
    pub fn regular_chain(k: usize, n: u64) -> Result<QueryGraph> {
        if k < 2 || n == 0 {
            return Err(RelalgError::InvalidPlan(
                "chain needs k >= 2, n >= 1".into(),
            ));
        }
        let mut g = QueryGraph::new();
        for i in 0..k {
            g.add_relation(format!("R{i}"), n)?;
        }
        for i in 0..k - 1 {
            g.add_edge(i, i + 1, 1.0 / n as f64)?;
        }
        Ok(g)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the graph has no relations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Relation names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Relation cardinalities.
    pub fn cards(&self) -> &[u64] {
        &self.cards
    }

    /// Overrides the cardinality of relation `i` — the hook the planner
    /// uses to fold pushed-down filter selectivities into the estimates
    /// every phase-1 optimizer and schedule cost reads. The effective
    /// cardinality is clamped to at least 1 so downstream selectivity
    /// arithmetic never divides by zero.
    pub fn set_card(&mut self, i: usize, card: u64) -> Result<()> {
        if i >= self.cards.len() {
            return Err(RelalgError::IndexOutOfBounds {
                index: i,
                arity: self.cards.len(),
            });
        }
        self.cards[i] = card.max(1);
        Ok(())
    }

    /// All edges as `(a, b, selectivity)` with `a < b`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Bitmask of neighbours of all relations in `mask`.
    pub fn neighbours(&self, mask: u32) -> u32 {
        let mut out = 0u32;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            out |= self.adj[i];
            m &= m - 1;
        }
        out & !mask
    }

    /// True if some join edge connects `a` and `b` (disjoint masks).
    pub fn connects(&self, a: u32, b: u32) -> bool {
        self.neighbours(a) & b != 0
    }

    /// Estimated cardinality of the join of all relations in `mask`:
    /// product of base cardinalities times the selectivities of all edges
    /// internal to `mask`.
    pub fn subset_card(&self, mask: u32) -> f64 {
        let mut card = 1.0f64;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            card *= self.cards[i] as f64;
            m &= m - 1;
        }
        for &(a, b, sel) in &self.edges {
            if mask & (1 << a) != 0 && mask & (1 << b) != 0 {
                card *= sel;
            }
        }
        card
    }

    /// True if the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.names.is_empty() {
            return false;
        }
        let full = if self.names.len() == 32 {
            u32::MAX
        } else {
            (1u32 << self.names.len()) - 1
        };
        let mut reached = 1u32;
        loop {
            let grow = reached | (self.neighbours(reached) & full);
            if grow == reached {
                break;
            }
            reached = grow;
        }
        reached == full
    }

    pub(crate) fn check_optimizable(&self) -> Result<()> {
        if self.len() < 2 {
            return Err(RelalgError::InvalidPlan(
                "optimizer needs >= 2 relations".into(),
            ));
        }
        if self.len() > MAX_DP_RELATIONS {
            return Err(RelalgError::InvalidPlan(format!(
                "DP optimizers accept at most {MAX_DP_RELATIONS} relations, got {}",
                self.len()
            )));
        }
        if !self.is_connected() {
            return Err(RelalgError::InvalidPlan(
                "query graph is disconnected (cartesian products are not enumerated)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for QueryGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// The output of a phase-1 optimizer.
#[derive(Clone, Debug)]
pub struct OptimizedPlan {
    /// The chosen join tree.
    pub tree: JoinTree,
    /// Total cost under the paper's cost function.
    pub total_cost: f64,
    /// Estimated cardinality per tree node (indexed by node id).
    pub node_cards: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_construction() {
        let g = QueryGraph::regular_chain(10, 5000).unwrap();
        assert_eq!(g.len(), 10);
        assert_eq!(g.edges().len(), 9);
        assert!(g.is_connected());
        assert!(QueryGraph::regular_chain(1, 10).is_err());
        assert!(QueryGraph::regular_chain(3, 0).is_err());
    }

    #[test]
    fn subset_card_chain_is_n_for_connected_subsets() {
        let g = QueryGraph::regular_chain(5, 100).unwrap();
        // {R1, R2, R3} connected: 100^3 * (1/100)^2 = 100.
        let mask = 0b01110;
        assert!((g.subset_card(mask) - 100.0).abs() < 1e-6);
        // Disconnected {R0, R2}: no internal edge: 100 * 100.
        assert!((g.subset_card(0b00101) - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn neighbours_and_connects() {
        let g = QueryGraph::regular_chain(4, 10).unwrap();
        assert_eq!(g.neighbours(0b0001), 0b0010);
        assert_eq!(g.neighbours(0b0110), 0b1001);
        assert!(g.connects(0b0011, 0b0100));
        assert!(!g.connects(0b0001, 0b0100));
    }

    #[test]
    fn edge_validation() {
        let mut g = QueryGraph::new();
        let a = g.add_relation("A", 10).unwrap();
        let b = g.add_relation("B", 10).unwrap();
        assert!(g.add_edge(a, a, 0.5).is_err());
        assert!(g.add_edge(a, 5, 0.5).is_err());
        assert!(g.add_edge(a, b, 0.0).is_err());
        assert!(g.add_edge(a, b, -0.25).is_err());
        assert!(g.add_edge(a, b, 1.5).is_err());
        assert!(g.add_edge(a, b, f64::NAN).is_err());
        assert!(g.add_edge(a, b, f64::INFINITY).is_err());
        assert!(g.add_edge(a, b, 1.0).is_ok());
    }

    #[test]
    fn relation_count_capped_at_bitmask_width() {
        // Regression: the 33rd relation used to be accepted silently and
        // then corrupt every `1 << i` in the adjacency/DP machinery.
        let mut g = QueryGraph::new();
        for i in 0..MAX_GRAPH_RELATIONS {
            g.add_relation(format!("R{i}"), 10).unwrap();
        }
        assert_eq!(g.len(), 32);
        let err = g.add_relation("R32", 10).unwrap_err();
        assert!(err.to_string().contains("at most 32"), "{err}");
        // The full graph still works: chain it up and check connectivity.
        for i in 0..31 {
            g.add_edge(i, i + 1, 0.5).unwrap();
        }
        assert!(g.is_connected());
        assert!(QueryGraph::regular_chain(33, 10).is_err());
        assert!(QueryGraph::regular_chain(32, 10).is_ok());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = QueryGraph::new();
        g.add_relation("A", 10).unwrap();
        g.add_relation("B", 10).unwrap();
        assert!(!g.is_connected());
        assert!(g.check_optimizable().is_err());
    }
}
