//! Randomized phase-1 search: iterative improvement and simulated
//! annealing over bushy join trees.
//!
//! §1.2 of the paper cites \[SWG88\] ("Optimization of large join queries")
//! for partially heuristic algorithms that bound the time spent searching
//! the tree space. These are the two classics from that line of work:
//! random-restart hill climbing (II) and simulated annealing (SA), both
//! walking the bushy-tree space with the standard move set — commute,
//! associate, and exchange — restricted to trees without cartesian
//! products. They handle graphs beyond [`MAX_DP_RELATIONS`], where the
//! exhaustive DP is unaffordable, and give the benches a realistic
//! baseline for optimizer-quality comparisons.
//!
//! [`MAX_DP_RELATIONS`]: super::MAX_DP_RELATIONS

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mj_relalg::{RelalgError, Result};

use crate::cost::CostModel;
use crate::tree::JoinTree;

use super::{OptimizedPlan, QueryGraph};

/// A join expression over relation indices; the search's working
/// representation (node ids only materialize on conversion to
/// [`JoinTree`]).
#[derive(Clone, Debug)]
enum Expr {
    Leaf(usize),
    Join(Box<Expr>, Box<Expr>),
}

/// Evaluation of a (sub)expression.
struct Eval {
    mask: u32,
    card: f64,
    cost: f64,
}

impl Expr {
    fn is_leaf(&self) -> bool {
        matches!(self, Expr::Leaf(_))
    }

    /// Total cost under the paper's model, or `None` if some join in the
    /// expression is a cartesian product.
    fn eval(&self, graph: &QueryGraph, cm: &CostModel) -> Option<Eval> {
        match self {
            Expr::Leaf(i) => Some(Eval {
                mask: 1 << i,
                card: graph.cards()[*i] as f64,
                cost: 0.0,
            }),
            Expr::Join(l, r) => {
                let le = l.eval(graph, cm)?;
                let re = r.eval(graph, cm)?;
                if !graph.connects(le.mask, re.mask) {
                    return None;
                }
                let mask = le.mask | re.mask;
                let card = graph.subset_card(mask);
                let cost = le.cost
                    + re.cost
                    + cm.join_cost(
                        le.card as u64,
                        l.is_leaf(),
                        re.card as u64,
                        r.is_leaf(),
                        card as u64,
                    );
                Some(Eval { mask, card, cost })
            }
        }
    }

    /// Paths (sequences of left=false/right=true steps) to every internal
    /// node, in preorder.
    fn join_paths(&self) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        fn walk(e: &Expr, path: &mut Vec<bool>, out: &mut Vec<Vec<bool>>) {
            if let Expr::Join(l, r) = e {
                out.push(path.clone());
                path.push(false);
                walk(l, path, out);
                path.pop();
                path.push(true);
                walk(r, path, out);
                path.pop();
            }
        }
        walk(self, &mut Vec::new(), &mut out);
        out
    }

    /// Rebuilds the expression with `f` applied to the subtree at `path`.
    fn replace_at(&self, path: &[bool], f: &dyn Fn(&Expr) -> Option<Expr>) -> Option<Expr> {
        match path.split_first() {
            None => f(self),
            Some((step, rest)) => match self {
                Expr::Leaf(_) => None,
                Expr::Join(l, r) => {
                    if *step {
                        let nr = r.replace_at(rest, f)?;
                        Some(Expr::Join(l.clone(), Box::new(nr)))
                    } else {
                        let nl = l.replace_at(rest, f)?;
                        Some(Expr::Join(Box::new(nl), r.clone()))
                    }
                }
            },
        }
    }
}

/// The Ioannidis–Kang move set over bushy trees.
#[derive(Clone, Copy, Debug)]
enum Move {
    /// `X ⋈ Y → Y ⋈ X`
    Commute,
    /// `(X ⋈ Y) ⋈ Z → X ⋈ (Y ⋈ Z)`
    AssociateRight,
    /// `X ⋈ (Y ⋈ Z) → (X ⋈ Y) ⋈ Z`
    AssociateLeft,
    /// `(X ⋈ Y) ⋈ Z → (X ⋈ Z) ⋈ Y`
    Exchange,
}

const MOVES: [Move; 4] = [
    Move::Commute,
    Move::AssociateRight,
    Move::AssociateLeft,
    Move::Exchange,
];

fn apply_move(e: &Expr, m: Move) -> Option<Expr> {
    match (m, e) {
        (Move::Commute, Expr::Join(l, r)) => Some(Expr::Join(r.clone(), l.clone())),
        (Move::AssociateRight, Expr::Join(lr, z)) => match lr.as_ref() {
            Expr::Join(x, y) => Some(Expr::Join(
                x.clone(),
                Box::new(Expr::Join(y.clone(), z.clone())),
            )),
            _ => None,
        },
        (Move::AssociateLeft, Expr::Join(x, rr)) => match rr.as_ref() {
            Expr::Join(y, z) => Some(Expr::Join(
                Box::new(Expr::Join(x.clone(), y.clone())),
                z.clone(),
            )),
            _ => None,
        },
        (Move::Exchange, Expr::Join(lr, z)) => match lr.as_ref() {
            Expr::Join(x, y) => Some(Expr::Join(
                Box::new(Expr::Join(x.clone(), z.clone())),
                y.clone(),
            )),
            _ => None,
        },
        _ => None,
    }
}

/// Proposes one random valid neighbour, or `None` if the sampled move is
/// inapplicable or creates a cartesian product (callers retry).
fn random_neighbour(
    e: &Expr,
    graph: &QueryGraph,
    cm: &CostModel,
    rng: &mut StdRng,
) -> Option<(Expr, f64)> {
    let paths = e.join_paths();
    let path = &paths[rng.gen_range(0..paths.len())];
    let mv = MOVES[rng.gen_range(0..MOVES.len())];
    let candidate = e.replace_at(path, &|sub| apply_move(sub, mv))?;
    let eval = candidate.eval(graph, cm)?;
    Some((candidate, eval.cost))
}

/// Builds a uniformly random valid bushy tree by repeatedly merging a
/// random connected pair of components.
fn random_expr(graph: &QueryGraph, rng: &mut StdRng) -> Expr {
    let mut comps: Vec<(u32, Expr)> = (0..graph.len())
        .map(|i| (1u32 << i, Expr::Leaf(i)))
        .collect();
    while comps.len() > 1 {
        let mut pairs = Vec::new();
        for i in 0..comps.len() {
            for j in i + 1..comps.len() {
                if graph.connects(comps[i].0, comps[j].0) {
                    pairs.push((i, j));
                }
            }
        }
        let (i, j) = pairs[rng.gen_range(0..pairs.len())];
        let (mj, ej) = comps.swap_remove(j);
        let (mi, ei) = comps.swap_remove(i);
        comps.push((mi | mj, Expr::Join(Box::new(ei), Box::new(ej))));
    }
    comps.pop().expect("at least one relation").1
}

fn to_plan(e: &Expr, graph: &QueryGraph, cm: &CostModel) -> Result<OptimizedPlan> {
    let total = e
        .eval(graph, cm)
        .ok_or_else(|| RelalgError::InvalidPlan("search produced a cartesian product".into()))?
        .cost;
    let mut builder = JoinTree::builder();
    let mut node_cards = Vec::new();
    fn build(
        e: &Expr,
        graph: &QueryGraph,
        b: &mut crate::tree::JoinTreeBuilder,
        cards: &mut Vec<u64>,
    ) -> (u32, usize) {
        match e {
            Expr::Leaf(i) => {
                let id = b.leaf(graph.names()[*i].clone());
                debug_assert_eq!(id, cards.len());
                cards.push(graph.cards()[*i]);
                (1 << i, id)
            }
            Expr::Join(l, r) => {
                let (lm, lid) = build(l, graph, b, cards);
                let (rm, rid) = build(r, graph, b, cards);
                let id = b.join(lid, rid);
                debug_assert_eq!(id, cards.len());
                cards.push(graph.subset_card(lm | rm) as u64);
                (lm | rm, id)
            }
        }
    }
    let (_, root) = build(e, graph, &mut builder, &mut node_cards);
    let tree = builder.build(root)?;
    Ok(OptimizedPlan {
        tree,
        total_cost: total,
        node_cards,
    })
}

/// Options for [`iterative_improvement`].
#[derive(Clone, Copy, Debug)]
pub struct IterativeOptions {
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
    /// Independent random restarts.
    pub restarts: usize,
    /// Consecutive non-improving proposals before a restart is declared a
    /// local minimum.
    pub patience: usize,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            seed: 0xB05E,
            restarts: 8,
            patience: 256,
        }
    }
}

/// Random-restart iterative improvement (hill climbing) over bushy trees.
///
/// Each restart walks from a random valid tree, accepting only
/// cost-reducing neighbours, until `patience` consecutive proposals fail
/// to improve; the best tree over all restarts wins.
pub fn iterative_improvement(
    graph: &QueryGraph,
    cost: &CostModel,
    opts: IterativeOptions,
) -> Result<OptimizedPlan> {
    check_searchable(graph, opts.restarts.max(1))?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best: Option<(Expr, f64)> = None;
    for _ in 0..opts.restarts.max(1) {
        let mut cur = random_expr(graph, &mut rng);
        let mut cur_cost = cur
            .eval(graph, cost)
            .expect("random_expr only merges connected components")
            .cost;
        let mut stale = 0usize;
        while stale < opts.patience {
            match random_neighbour(&cur, graph, cost, &mut rng) {
                Some((cand, c)) if c < cur_cost - 1e-9 => {
                    cur = cand;
                    cur_cost = c;
                    stale = 0;
                }
                _ => stale += 1,
            }
        }
        if best.as_ref().map(|(_, b)| cur_cost < *b).unwrap_or(true) {
            best = Some((cur, cur_cost));
        }
    }
    let (expr, _) = best.expect("at least one restart");
    to_plan(&expr, graph, cost)
}

/// Options for [`simulated_annealing`].
#[derive(Clone, Copy, Debug)]
pub struct AnnealingOptions {
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
    /// Starting temperature as a fraction of the initial tree's cost.
    pub initial_temp: f64,
    /// Geometric cooling rate per stage, in `(0, 1)`.
    pub cooling: f64,
    /// Proposals per temperature stage.
    pub stage_iters: usize,
    /// Consecutive stages without any acceptance before the system is
    /// considered frozen.
    pub frozen_stages: usize,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        AnnealingOptions {
            seed: 0x5A5A,
            initial_temp: 0.1,
            cooling: 0.9,
            stage_iters: 128,
            frozen_stages: 4,
        }
    }
}

/// Simulated annealing over bushy trees: accepts uphill moves with
/// probability `exp(-Δ/T)` under geometric cooling, returning the best
/// tree visited.
pub fn simulated_annealing(
    graph: &QueryGraph,
    cost: &CostModel,
    opts: AnnealingOptions,
) -> Result<OptimizedPlan> {
    check_searchable(graph, 1)?;
    if !(opts.cooling > 0.0 && opts.cooling < 1.0) {
        return Err(RelalgError::InvalidPlan(format!(
            "cooling rate {} outside (0, 1)",
            opts.cooling
        )));
    }
    if opts.initial_temp.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(RelalgError::InvalidPlan(
            "initial_temp must be positive".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut cur = random_expr(graph, &mut rng);
    let mut cur_cost = cur
        .eval(graph, cost)
        .expect("random_expr only merges connected components")
        .cost;
    let (mut best, mut best_cost) = (cur.clone(), cur_cost);
    let mut temp = opts.initial_temp * cur_cost.max(1.0);
    let mut frozen = 0usize;
    while frozen < opts.frozen_stages && temp > 1e-9 {
        let mut accepted = false;
        for _ in 0..opts.stage_iters {
            let Some((cand, c)) = random_neighbour(&cur, graph, cost, &mut rng) else {
                continue;
            };
            let delta = c - cur_cost;
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                cur = cand;
                cur_cost = c;
                accepted = true;
                if cur_cost < best_cost {
                    best = cur.clone();
                    best_cost = cur_cost;
                }
            }
        }
        frozen = if accepted { 0 } else { frozen + 1 };
        temp *= opts.cooling;
    }
    to_plan(&best, graph, cost)
}

/// A uniformly random valid bushy tree — the baseline the searches start
/// from, exposed for optimizer-quality benchmarks.
pub fn random_tree(graph: &QueryGraph, cost: &CostModel, seed: u64) -> Result<OptimizedPlan> {
    check_searchable(graph, 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let expr = random_expr(graph, &mut rng);
    to_plan(&expr, graph, cost)
}

fn check_searchable(graph: &QueryGraph, _restarts: usize) -> Result<()> {
    if graph.len() < 2 {
        return Err(RelalgError::InvalidPlan(
            "optimizer needs >= 2 relations".into(),
        ));
    }
    if graph.len() > 32 {
        return Err(RelalgError::InvalidPlan(
            "local search supports <= 32 relations".into(),
        ));
    }
    if !graph.is_connected() {
        return Err(RelalgError::InvalidPlan(
            "query graph is disconnected (cartesian products are not enumerated)".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{greedy_tree, optimize_bushy};

    /// A chain with exponentially growing cardinalities: join order
    /// genuinely matters, so the searches have something to find.
    fn skewed_chain(k: usize) -> QueryGraph {
        let mut g = QueryGraph::new();
        for i in 0..k {
            g.add_relation(format!("R{i}"), 10u64.pow(1 + (i % 4) as u32))
                .unwrap();
        }
        for i in 0..k - 1 {
            g.add_edge(i, i + 1, 1e-2).unwrap();
        }
        g
    }

    /// A star: fact table joined to small dimensions.
    fn star(dims: usize) -> QueryGraph {
        let mut g = QueryGraph::new();
        let fact = g.add_relation("fact", 1_000_000).unwrap();
        for d in 0..dims {
            let dim = g.add_relation(format!("dim{d}"), 100 + d as u64).unwrap();
            g.add_edge(fact, dim, 1e-3).unwrap();
        }
        g
    }

    #[test]
    fn ii_finds_the_dp_optimum_on_small_graphs() {
        let cm = CostModel::default();
        for graph in [skewed_chain(7), star(5)] {
            let dp = optimize_bushy(&graph, &cm).unwrap();
            let ii = iterative_improvement(&graph, &cm, IterativeOptions::default()).unwrap();
            assert!(
                (ii.total_cost - dp.total_cost).abs() / dp.total_cost < 1e-9,
                "II {} vs DP {}",
                ii.total_cost,
                dp.total_cost
            );
            ii.tree.validate().unwrap();
        }
    }

    #[test]
    fn sa_finds_the_dp_optimum_on_small_graphs() {
        let cm = CostModel::default();
        for graph in [skewed_chain(7), star(5)] {
            let dp = optimize_bushy(&graph, &cm).unwrap();
            let sa = simulated_annealing(&graph, &cm, AnnealingOptions::default()).unwrap();
            assert!(
                (sa.total_cost - dp.total_cost).abs() / dp.total_cost < 1e-9,
                "SA {} vs DP {}",
                sa.total_cost,
                dp.total_cost
            );
            sa.tree.validate().unwrap();
        }
    }

    #[test]
    fn searches_never_beat_the_exhaustive_lower_bound() {
        let cm = CostModel::default();
        let graph = skewed_chain(9);
        let dp = optimize_bushy(&graph, &cm).unwrap();
        for seed in 0..5u64 {
            let ii = iterative_improvement(
                &graph,
                &cm,
                IterativeOptions {
                    seed,
                    restarts: 2,
                    patience: 64,
                },
            )
            .unwrap();
            assert!(ii.total_cost >= dp.total_cost - 1e-6);
            let sa = simulated_annealing(
                &graph,
                &cm,
                AnnealingOptions {
                    seed,
                    ..AnnealingOptions::default()
                },
            )
            .unwrap();
            assert!(sa.total_cost >= dp.total_cost - 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cm = CostModel::default();
        let graph = skewed_chain(8);
        let a = iterative_improvement(&graph, &cm, IterativeOptions::default()).unwrap();
        let b = iterative_improvement(&graph, &cm, IterativeOptions::default()).unwrap();
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.tree.leaves_in_order(), b.tree.leaves_in_order());
        let a = simulated_annealing(&graph, &cm, AnnealingOptions::default()).unwrap();
        let b = simulated_annealing(&graph, &cm, AnnealingOptions::default()).unwrap();
        assert_eq!(a.total_cost, b.total_cost);
    }

    #[test]
    fn searches_scale_past_the_dp_limit() {
        // 24 relations: 2^24 DP states would be unaffordable in a unit
        // test; the local searches handle it in milliseconds and at least
        // match greedy on this easy chain.
        let cm = CostModel::default();
        let graph = skewed_chain(24);
        let greedy = greedy_tree(&graph, &cm).unwrap();
        let ii = iterative_improvement(
            &graph,
            &cm,
            IterativeOptions {
                restarts: 4,
                ..IterativeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ii.tree.leaf_count(), 24);
        ii.tree.validate().unwrap();
        assert!(
            ii.total_cost <= greedy.total_cost * 1.5,
            "II wildly worse than greedy"
        );
    }

    #[test]
    fn random_tree_is_valid_and_costed() {
        let cm = CostModel::default();
        let graph = star(6);
        let r = random_tree(&graph, &cm, 7).unwrap();
        r.tree.validate().unwrap();
        assert_eq!(r.tree.leaf_count(), 7);
        assert!(r.total_cost > 0.0);
        // No cartesian products: every internal node joins connected sets,
        // which random_expr guarantees by construction.
        let dp = optimize_bushy(&graph, &cm).unwrap();
        assert!(r.total_cost >= dp.total_cost - 1e-6);
    }

    #[test]
    fn invalid_options_error() {
        let cm = CostModel::default();
        let graph = skewed_chain(4);
        assert!(simulated_annealing(
            &graph,
            &cm,
            AnnealingOptions {
                cooling: 1.5,
                ..AnnealingOptions::default()
            }
        )
        .is_err());
        assert!(simulated_annealing(
            &graph,
            &cm,
            AnnealingOptions {
                initial_temp: 0.0,
                ..AnnealingOptions::default()
            }
        )
        .is_err());
        let mut g = QueryGraph::new();
        g.add_relation("lonely", 10).unwrap();
        assert!(iterative_improvement(&g, &cm, IterativeOptions::default()).is_err());
    }
}
