//! Exhaustive bushy-tree dynamic programming over connected subgraphs.
//!
//! Classic DPsub: for every connected relation subset (bitmask), find the
//! cheapest way to split it into two connected, edge-linked halves. Bushy
//! trees matter for parallel systems (\[KBZ86\], §1.2), and the paper's SE
//! and FP strategies only shine on them.

use mj_relalg::{RelalgError, Result};

use crate::cost::CostModel;
use crate::tree::{JoinTree, JoinTreeBuilder, NodeId};

use super::{OptimizedPlan, QueryGraph};

#[derive(Clone, Copy)]
struct Entry {
    cost: f64,
    card: f64,
    /// Left/right masks of the best split (0 for singletons).
    split: (u32, u32),
    reachable: bool,
}

/// Finds the minimal-total-cost tree over all bushy trees without
/// cartesian products.
pub fn optimize_bushy(graph: &QueryGraph, cost: &CostModel) -> Result<OptimizedPlan> {
    graph.check_optimizable()?;
    let n = graph.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut table = vec![
        Entry {
            cost: f64::INFINITY,
            card: 0.0,
            split: (0, 0),
            reachable: false
        };
        (full as usize) + 1
    ];

    for i in 0..n {
        let m = 1u32 << i;
        table[m as usize] = Entry {
            cost: 0.0,
            card: graph.cards()[i] as f64,
            split: (0, 0),
            reachable: true,
        };
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let card = graph.subset_card(mask);
        let mut best = Entry {
            cost: f64::INFINITY,
            card,
            split: (0, 0),
            reachable: false,
        };
        // Enumerate proper submasks; visit each unordered partition once.
        let mut s1 = (mask - 1) & mask;
        while s1 != 0 {
            let s2 = mask ^ s1;
            if s1 < s2 {
                let (e1, e2) = (&table[s1 as usize], &table[s2 as usize]);
                if e1.reachable && e2.reachable && graph.connects(s1, s2) {
                    let jc = cost.join_cost(
                        e1.card as u64,
                        s1.count_ones() == 1,
                        e2.card as u64,
                        s2.count_ones() == 1,
                        card as u64,
                    );
                    let total = e1.cost + e2.cost + jc;
                    if total < best.cost {
                        best = Entry {
                            cost: total,
                            card,
                            split: (s1, s2),
                            reachable: true,
                        };
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        table[mask as usize] = best;
    }

    if !table[full as usize].reachable {
        return Err(RelalgError::InvalidPlan(
            "no cartesian-free plan covers all relations".into(),
        ));
    }

    let mut builder = JoinTree::builder();
    let mut node_cards = Vec::new();
    let root = reconstruct(graph, &table, full, &mut builder, &mut node_cards);
    let tree = builder.build(root)?;
    Ok(OptimizedPlan {
        tree,
        total_cost: table[full as usize].cost,
        node_cards,
    })
}

fn reconstruct(
    graph: &QueryGraph,
    table: &[Entry],
    mask: u32,
    builder: &mut JoinTreeBuilder,
    cards: &mut Vec<u64>,
) -> NodeId {
    if mask.count_ones() == 1 {
        let i = mask.trailing_zeros() as usize;
        let id = builder.leaf(graph.names()[i].clone());
        debug_assert_eq!(id, cards.len());
        cards.push(graph.cards()[i]);
        return id;
    }
    let (s1, s2) = table[mask as usize].split;
    let l = reconstruct(graph, table, s1, builder, cards);
    let r = reconstruct(graph, table, s2, builder, cards);
    let id = builder.join(l, r);
    debug_assert_eq!(id, cards.len());
    cards.push(table[mask as usize].card as u64);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{tree_costs, CostModel};

    #[test]
    fn regular_chain_reaches_the_invariant_optimum() {
        let n = 5000u64;
        let g = QueryGraph::regular_chain(10, n).unwrap();
        let plan = optimize_bushy(&g, &CostModel::default()).unwrap();
        // Every cartesian-free tree of the regular query costs 44N.
        assert!((plan.total_cost - 44.0 * n as f64).abs() < 1e-6);
        assert_eq!(plan.tree.join_count(), 9);
        assert_eq!(plan.tree.leaf_count(), 10);
        assert!(plan.tree.validate().is_ok());
    }

    #[test]
    fn reconstructed_tree_cost_matches_dp_cost() {
        let mut g = QueryGraph::new();
        let a = g.add_relation("A", 1000).unwrap();
        let b = g.add_relation("B", 50).unwrap();
        let c = g.add_relation("C", 2000).unwrap();
        let d = g.add_relation("D", 10).unwrap();
        g.add_edge(a, b, 0.01).unwrap();
        g.add_edge(b, c, 0.001).unwrap();
        g.add_edge(c, d, 0.1).unwrap();
        g.add_edge(a, d, 0.02).unwrap();
        let plan = optimize_bushy(&g, &CostModel::default()).unwrap();
        let recomputed = tree_costs(&plan.tree, &plan.node_cards, &CostModel::default());
        // Rounding cards to u64 inside join_cost can cause tiny drift.
        let rel_err = (recomputed.total - plan.total_cost).abs() / plan.total_cost.max(1.0);
        assert!(
            rel_err < 0.01,
            "dp={} recomputed={}",
            plan.total_cost,
            recomputed.total
        );
    }

    #[test]
    fn star_query_prefers_small_intermediates() {
        // Star: F(1M) joined to three small dims. Best plans join F with
        // the most selective dimension edges first.
        let mut g = QueryGraph::new();
        let f = g.add_relation("F", 1_000_000).unwrap();
        let d1 = g.add_relation("D1", 100).unwrap();
        let d2 = g.add_relation("D2", 100).unwrap();
        let d3 = g.add_relation("D3", 100).unwrap();
        g.add_edge(f, d1, 1e-6).unwrap();
        g.add_edge(f, d2, 1e-4).unwrap();
        g.add_edge(f, d3, 1e-2).unwrap();
        let plan = optimize_bushy(&g, &CostModel::default()).unwrap();
        assert!(plan.tree.validate().is_ok());
        assert_eq!(plan.tree.leaf_count(), 4);
        assert!(plan.total_cost.is_finite());
    }

    #[test]
    fn two_relations() {
        let g = QueryGraph::regular_chain(2, 100).unwrap();
        let plan = optimize_bushy(&g, &CostModel::default()).unwrap();
        assert_eq!(plan.tree.join_count(), 1);
        // 100 + 100 + 2*100 = 400.
        assert!((plan.total_cost - 400.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let g = QueryGraph::regular_chain(8, 1000).unwrap();
        let a = optimize_bushy(&g, &CostModel::default()).unwrap();
        let b = optimize_bushy(&g, &CostModel::default()).unwrap();
        assert_eq!(a.tree, b.tree);
    }
}
