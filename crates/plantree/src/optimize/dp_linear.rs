//! System-R style dynamic programming restricted to left-deep (linear)
//! trees \[SAC79\] — the classical baseline the paper contrasts with bushy
//! optimization (§1.2).

use mj_relalg::{RelalgError, Result};

use crate::cost::CostModel;
use crate::tree::JoinTree;

use super::{OptimizedPlan, QueryGraph};

#[derive(Clone, Copy)]
struct Entry {
    cost: f64,
    card: f64,
    /// The relation appended last to reach this mask.
    last: usize,
    reachable: bool,
}

/// Finds the minimal-total-cost *left-deep* tree without cartesian
/// products: every join's right operand is a base relation.
pub fn optimize_linear(graph: &QueryGraph, cost: &CostModel) -> Result<OptimizedPlan> {
    graph.check_optimizable()?;
    let n = graph.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut table = vec![
        Entry {
            cost: f64::INFINITY,
            card: 0.0,
            last: usize::MAX,
            reachable: false
        };
        (full as usize) + 1
    ];

    for i in 0..n {
        let m = 1u32 << i;
        table[m as usize] = Entry {
            cost: 0.0,
            card: graph.cards()[i] as f64,
            last: i,
            reachable: true,
        };
    }

    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let card = graph.subset_card(mask);
        let mut best = Entry {
            cost: f64::INFINITY,
            card,
            last: usize::MAX,
            reachable: false,
        };
        let mut rels = mask;
        while rels != 0 {
            let r = rels.trailing_zeros() as usize;
            rels &= rels - 1;
            let prev = mask & !(1u32 << r);
            let pe = &table[prev as usize];
            if !pe.reachable || !graph.connects(prev, 1u32 << r) {
                continue;
            }
            let jc = cost.join_cost(
                pe.card as u64,
                prev.count_ones() == 1,
                graph.cards()[r],
                true,
                card as u64,
            );
            let total = pe.cost + jc;
            if total < best.cost {
                best = Entry {
                    cost: total,
                    card,
                    last: r,
                    reachable: true,
                };
            }
        }
        table[mask as usize] = best;
    }

    if !table[full as usize].reachable {
        return Err(RelalgError::InvalidPlan(
            "no cartesian-free linear plan covers all relations".into(),
        ));
    }

    // Recover the join order (last relation first), then build the tree.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask.count_ones() > 1 {
        let last = table[mask as usize].last;
        order.push(last);
        mask &= !(1u32 << last);
    }
    order.push(mask.trailing_zeros() as usize);
    order.reverse();

    let mut builder = JoinTree::builder();
    let mut node_cards: Vec<u64> = Vec::new();
    let mut acc = builder.leaf(graph.names()[order[0]].clone());
    node_cards.push(graph.cards()[order[0]]);
    let mut acc_mask = 1u32 << order[0];
    for &r in &order[1..] {
        let leaf = builder.leaf(graph.names()[r].clone());
        node_cards.push(graph.cards()[r]);
        acc_mask |= 1u32 << r;
        acc = builder.join(acc, leaf);
        node_cards.push(graph.subset_card(acc_mask) as u64);
    }
    let tree = builder.build(acc)?;
    Ok(OptimizedPlan {
        tree,
        total_cost: table[full as usize].cost,
        node_cards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::optimize_bushy;

    #[test]
    fn produces_left_deep_trees() {
        let g = QueryGraph::regular_chain(6, 100).unwrap();
        let plan = optimize_linear(&g, &CostModel::default()).unwrap();
        // Left-deep: right child of every join is a leaf.
        let t = &plan.tree;
        for j in t.joins_bottom_up() {
            let (_, right) = t.children(j).unwrap();
            assert!(t.is_leaf(right), "join {j} has non-leaf right child");
        }
        assert_eq!(t.right_spine_len(), 1);
    }

    #[test]
    fn regular_chain_cost_matches_invariant() {
        let n = 1000u64;
        let g = QueryGraph::regular_chain(10, n).unwrap();
        let plan = optimize_linear(&g, &CostModel::default()).unwrap();
        assert!((plan.total_cost - 44.0 * n as f64).abs() < 1e-6);
    }

    #[test]
    fn never_beats_bushy() {
        let mut g = QueryGraph::new();
        let a = g.add_relation("A", 500).unwrap();
        let b = g.add_relation("B", 40).unwrap();
        let c = g.add_relation("C", 700).unwrap();
        let d = g.add_relation("D", 90).unwrap();
        let e = g.add_relation("E", 120).unwrap();
        g.add_edge(a, b, 0.01).unwrap();
        g.add_edge(b, c, 0.005).unwrap();
        g.add_edge(c, d, 0.02).unwrap();
        g.add_edge(d, e, 0.03).unwrap();
        g.add_edge(a, e, 0.001).unwrap();
        let linear = optimize_linear(&g, &CostModel::default()).unwrap();
        let bushy = optimize_bushy(&g, &CostModel::default()).unwrap();
        assert!(
            bushy.total_cost <= linear.total_cost + 1e-6,
            "bushy {} > linear {}",
            bushy.total_cost,
            linear.total_cost
        );
    }

    #[test]
    fn disconnected_rejected() {
        let mut g = QueryGraph::new();
        g.add_relation("A", 10).unwrap();
        g.add_relation("B", 10).unwrap();
        assert!(optimize_linear(&g, &CostModel::default()).is_err());
    }

    #[test]
    fn node_cards_cover_every_node() {
        let g = QueryGraph::regular_chain(5, 100).unwrap();
        let plan = optimize_linear(&g, &CostModel::default()).unwrap();
        assert_eq!(plan.node_cards.len(), plan.tree.nodes().len());
        // Regular chain: every intermediate is 100 tuples.
        for (id, node) in plan.tree.nodes().iter().enumerate() {
            if matches!(node, crate::tree::TreeNode::Join { .. }) {
                assert_eq!(plan.node_cards[id], 100, "node {id}");
            }
        }
    }
}
