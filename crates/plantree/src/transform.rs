//! Tree transformations.
//!
//! The key one is *mirroring*: swapping the operands of a join does not
//! change the paper's total cost (both operands are charged symmetrically
//! up to the base/intermediate coefficient, which follows the operand, not
//! the side), but it changes which strategies parallelize well — "it is
//! possible without cost penalty to mirror (parts of) a query to make it
//! more right-oriented, so that in practice RD is expected to work quite
//! well" (§5).

use crate::tree::{JoinTree, NodeId, TreeNode};

/// Returns the mirror image of `tree`: every join's operands swapped.
pub fn mirror(tree: &JoinTree) -> JoinTree {
    let mut b = JoinTree::builder();
    let root = mirror_rec(tree, tree.root(), &mut b);
    b.build(root).expect("mirroring preserves validity")
}

fn mirror_rec(tree: &JoinTree, id: NodeId, b: &mut crate::tree::JoinTreeBuilder) -> NodeId {
    match &tree.nodes()[id] {
        TreeNode::Leaf { relation } => b.leaf(relation.clone()),
        TreeNode::Join { left, right } => {
            let l = mirror_rec(tree, *left, b);
            let r = mirror_rec(tree, *right, b);
            b.join(r, l)
        }
    }
}

/// Re-orients every join so its *deeper* subtree becomes the right child.
/// This maximizes the length of right-deep segments, the transformation §5
/// recommends before running RD. Ties keep the current orientation.
pub fn right_orient(tree: &JoinTree) -> JoinTree {
    let mut b = JoinTree::builder();
    let root = orient_rec(tree, tree.root(), &mut b).0;
    b.build(root).expect("orienting preserves validity")
}

fn orient_rec(
    tree: &JoinTree,
    id: NodeId,
    b: &mut crate::tree::JoinTreeBuilder,
) -> (NodeId, usize) {
    match &tree.nodes()[id] {
        TreeNode::Leaf { relation } => (b.leaf(relation.clone()), 0),
        TreeNode::Join { left, right } => {
            let (l, ld) = orient_rec(tree, *left, b);
            let (r, rd) = orient_rec(tree, *right, b);
            let node = if ld > rd { b.join(r, l) } else { b.join(l, r) };
            (node, 1 + ld.max(rd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{build, Shape};

    #[test]
    fn mirror_is_an_involution() {
        let t = build(Shape::RightBushy, 10).unwrap();
        let back = mirror(&mirror(&t));
        assert_eq!(back.leaves_in_order(), t.leaves_in_order());
        assert_eq!(back.depth(), t.depth());
        assert_eq!(back.right_spine_len(), t.right_spine_len());
    }

    #[test]
    fn mirror_turns_left_linear_into_right_linear() {
        let left = build(Shape::LeftLinear, 10).unwrap();
        let mirrored = mirror(&left);
        assert_eq!(mirrored.right_spine_len(), 9);
        let reference = build(Shape::RightLinear, 10).unwrap();
        assert_eq!(mirrored.right_spine_len(), reference.right_spine_len());
    }

    #[test]
    fn right_orient_left_linear_becomes_right_linear() {
        let left = build(Shape::LeftLinear, 10).unwrap();
        let oriented = right_orient(&left);
        assert_eq!(oriented.right_spine_len(), 9);
        assert_eq!(oriented.depth(), 9);
        assert_eq!(oriented.join_count(), 9);
    }

    #[test]
    fn right_orient_is_idempotent() {
        for shape in Shape::ALL {
            let t = build(shape, 10).unwrap();
            let once = right_orient(&t);
            let twice = right_orient(&once);
            assert_eq!(once.right_spine_len(), twice.right_spine_len(), "{shape}");
            assert_eq!(once.depth(), twice.depth(), "{shape}");
        }
    }

    #[test]
    fn right_orient_never_shortens_the_spine() {
        for shape in Shape::ALL {
            let t = build(shape, 10).unwrap();
            let oriented = right_orient(&t);
            assert!(
                oriented.right_spine_len() >= t.right_spine_len(),
                "{shape}: {} -> {}",
                t.right_spine_len(),
                oriented.right_spine_len()
            );
            assert_eq!(oriented.depth(), t.depth(), "{shape}: depth is preserved");
        }
    }

    #[test]
    fn transforms_preserve_leaf_multiset() {
        let t = build(Shape::WideBushy, 7).unwrap();
        for u in [mirror(&t), right_orient(&t)] {
            let mut a = t.leaves_in_order();
            let mut b = u.leaves_in_order();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }
}
