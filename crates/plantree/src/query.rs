//! Lowering join trees to executable logical plans.
//!
//! Two lowerings live here. [`regular_join_spec`]/[`to_xra`] encode the
//! paper's regular Wisconsin query (§4.1): every join on `unique1`, with
//! the re-keying projection that keeps every intermediate a Wisconsin
//! relation. [`JoinQuery`]/[`lower`] generalize to *arbitrary* equi-join
//! queries: per-relation schemas, per-edge join columns, derived output
//! schemas and column pruning at every level — the front half of the
//! cost-based planner (`mj-exec`'s `planner`), which was previously
//! impossible because only the hard-coded regular spec existed.
//!
//! The regular query joins Wisconsin-shaped relations on their current
//! `unique1` attributes and projects every result back into a
//! Wisconsin-shaped relation: the new `unique1` is the left operand's
//! `unique2`, the new `unique2` is the right operand's `unique2`, and the
//! payload columns come from the left operand. Because `unique1`/`unique2`
//! are independent permutations of `0..N` in every base relation, this
//! invariant holds at every level of any tree shape — which is what makes
//! all shapes cost-equal.

use std::collections::HashMap;
use std::sync::Arc;

use mj_relalg::ops::AggFunc;
use mj_relalg::{
    EquiJoin, JoinAlgorithm, Predicate, Projection, RelalgError, Result, Schema, XraNode,
};

use crate::optimize::QueryGraph;
use crate::tree::{JoinTree, NodeId, TreeNode};

/// The equi-join spec of one regular-query join for operands of `arity`
/// columns. Keys are both column 0 (`unique1`); the projection re-keys the
/// result: `[left.u2, right.u2, left.payload...]`, preserving arity.
pub fn regular_join_spec(arity: usize) -> EquiJoin {
    assert!(
        arity >= 2,
        "Wisconsin-shaped tuples have at least (unique1, unique2)"
    );
    let mut cols = Vec::with_capacity(arity);
    cols.push(1); // new unique1 := left.unique2
    cols.push(arity + 1); // new unique2 := right.unique2
    cols.extend(2..arity); // payload from the left operand
    EquiJoin::new(0, 0, Projection::new(cols))
}

/// Lowers `tree` to a logical XRA plan for the regular query, tagging every
/// join with `algorithm`.
pub fn to_xra(tree: &JoinTree, arity: usize, algorithm: JoinAlgorithm) -> XraNode {
    build_node(tree, tree.root(), arity, algorithm)
}

fn build_node(tree: &JoinTree, id: NodeId, arity: usize, algorithm: JoinAlgorithm) -> XraNode {
    match &tree.nodes()[id] {
        TreeNode::Leaf { relation } => XraNode::scan(relation.clone()),
        TreeNode::Join { left, right } => XraNode::join(
            build_node(tree, *left, arity, algorithm),
            build_node(tree, *right, arity, algorithm),
            regular_join_spec(arity),
            algorithm,
        ),
    }
}

/// A single-relation selection predicate attached to a [`JoinQuery`]:
/// the bound form of one WHERE conjunct, ready for pushdown below the
/// joins. The predicate's attribute indices refer to the relation's own
/// schema.
#[derive(Clone, Debug)]
pub struct RelFilter {
    /// The relation the predicate selects on.
    pub rel: usize,
    /// The predicate over that relation's tuples.
    pub predicate: Predicate,
    /// Estimated fraction of tuples surviving, in `(0, 1]`.
    pub selectivity: f64,
}

/// An arbitrary equi-join query: a [`QueryGraph`] (cardinalities and
/// selectivities for the phase-1 optimizers) enriched with per-relation
/// schemas, per-edge join columns, and per-relation selection filters, so
/// a chosen tree can be lowered to executable join specs instead of the
/// fixed [`regular_join_spec`].
#[derive(Clone, Debug)]
pub struct JoinQuery {
    graph: QueryGraph,
    schemas: Vec<Arc<Schema>>,
    /// Join columns per graph edge, aligned with `graph.edges()` (whose
    /// endpoints are normalized to `a < b`): `(col in a, col in b)`.
    edge_cols: Vec<(usize, usize)>,
    /// Single-relation selection conjuncts (WHERE clauses after binding).
    filters: Vec<RelFilter>,
}

impl JoinQuery {
    /// Creates an empty query.
    pub fn new() -> Self {
        JoinQuery {
            graph: QueryGraph::new(),
            schemas: Vec::new(),
            edge_cols: Vec::new(),
            filters: Vec::new(),
        }
    }

    /// Adds a relation with its schema and estimated cardinality,
    /// returning its index. Names must be unique — the lowering maps tree
    /// leaves back to relations by name.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        card: u64,
        schema: Arc<Schema>,
    ) -> Result<usize> {
        let name = name.into();
        if self.graph.names().contains(&name) {
            return Err(RelalgError::InvalidPlan(format!(
                "duplicate relation `{name}` in join query"
            )));
        }
        let idx = self.graph.add_relation(name, card)?;
        self.schemas.push(schema);
        Ok(idx)
    }

    /// Adds an equi-join predicate `a.col_a = b.col_b` with the given
    /// estimated selectivity in `(0, 1]`. Columns are validated against
    /// the relation schemas, including type compatibility.
    pub fn add_join(
        &mut self,
        a: usize,
        b: usize,
        col_a: usize,
        col_b: usize,
        selectivity: f64,
    ) -> Result<()> {
        if a >= self.len() || b >= self.len() {
            return Err(RelalgError::InvalidPlan(format!("bad edge ({a}, {b})")));
        }
        let ta = self.schemas[a].attr(col_a)?.ty;
        let tb = self.schemas[b].attr(col_b)?.ty;
        if ta != tb {
            return Err(RelalgError::InvalidPlan(format!(
                "join column types differ: {}.{col_a} is {ta}, {}.{col_b} is {tb}",
                self.graph.names()[a],
                self.graph.names()[b]
            )));
        }
        self.graph.add_edge(a, b, selectivity)?;
        // `add_edge` normalizes endpoints to (min, max); mirror that here.
        self.edge_cols.push(if a < b {
            (col_a, col_b)
        } else {
            (col_b, col_a)
        });
        Ok(())
    }

    /// The underlying query graph (for the phase-1 optimizers).
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True if the query has no relations.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Schema of relation `i`.
    pub fn schema(&self, i: usize) -> Result<&Arc<Schema>> {
        self.schemas.get(i).ok_or(RelalgError::IndexOutOfBounds {
            index: i,
            arity: self.schemas.len(),
        })
    }

    /// Join columns per edge, aligned with `graph().edges()`.
    pub fn edge_cols(&self) -> &[(usize, usize)] {
        &self.edge_cols
    }

    /// Index of the relation named `name`.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.graph.names().iter().position(|n| n == name)
    }

    /// Every column of every relation in `(relation, column)` order — the
    /// default output of [`lower`]. Using a tree-independent order means
    /// every join tree of the same query produces an identical result
    /// schema, so plans are directly comparable.
    pub fn all_columns(&self) -> Vec<(usize, usize)> {
        let mut cols = Vec::new();
        for (r, schema) in self.schemas.iter().enumerate() {
            for c in 0..schema.arity() {
                cols.push((r, c));
            }
        }
        cols
    }

    /// Attaches a selection conjunct to relation `rel` with the given
    /// estimated `selectivity` in `(0, 1]`. The predicate's attribute
    /// indices are validated against the relation's schema; several
    /// conjuncts on one relation compose as a conjunction.
    pub fn add_filter(&mut self, rel: usize, predicate: Predicate, selectivity: f64) -> Result<()> {
        let schema = self.schema(rel)?.clone();
        validate_predicate_attrs(&predicate, &schema)?;
        if !(selectivity > 0.0 && selectivity <= 1.0) {
            return Err(RelalgError::InvalidPlan(format!(
                "filter selectivity {selectivity} outside (0, 1]"
            )));
        }
        self.filters.push(RelFilter {
            rel,
            predicate,
            selectivity,
        });
        Ok(())
    }

    /// All attached filters, in insertion order.
    pub fn filters(&self) -> &[RelFilter] {
        &self.filters
    }

    /// The conjunction of every filter on relation `rel`, or `None` if the
    /// relation is unfiltered.
    pub fn combined_filter(&self, rel: usize) -> Option<Predicate> {
        let mut out: Option<Predicate> = None;
        for f in self.filters.iter().filter(|f| f.rel == rel) {
            out = Some(match out {
                None => f.predicate.clone(),
                Some(p) => Predicate::And(Box::new(p), Box::new(f.predicate.clone())),
            });
        }
        out
    }

    /// The combined estimated selectivity of every filter on relation
    /// `rel` (1.0 when unfiltered) — independence assumed, System-R style.
    pub fn filter_selectivity(&self, rel: usize) -> f64 {
        self.filters
            .iter()
            .filter(|f| f.rel == rel)
            .map(|f| f.selectivity)
            .product()
    }

    /// A copy of this query whose graph cardinalities have the attached
    /// filter selectivities folded in — what the planner optimizes and
    /// costs when it pushes the filters below the joins: every phase-1
    /// tree choice, System-R intermediate estimate, and schedule cost then
    /// sees the post-selection sizes.
    pub fn with_filtered_cards(&self) -> JoinQuery {
        let mut out = self.clone();
        for rel in 0..out.len() {
            let sel = out.filter_selectivity(rel);
            if sel < 1.0 {
                let card = (out.graph.cards()[rel] as f64 * sel).round() as u64;
                out.graph
                    .set_card(rel, card.max(1))
                    .expect("relation index in range");
            }
        }
        out
    }
}

/// Validates that every attribute reference of `predicate` is inside
/// `schema`.
fn validate_predicate_attrs(predicate: &Predicate, schema: &Schema) -> Result<()> {
    let mut out_of_range: Option<usize> = None;
    predicate.for_each_attr(&mut |i| {
        if i >= schema.arity() && out_of_range.is_none() {
            out_of_range = Some(i);
        }
    });
    match out_of_range {
        Some(i) => schema.attr(i).map(|_| ()),
        None => Ok(()),
    }
}

/// One output item of a [`SelectSpec`]: a plain column or an aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectItemSpec {
    /// `(relation, column)` of the query.
    Column(usize, usize),
    /// An aggregate over the (joined, filtered) rows.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Input `(relation, column)`; `None` is `COUNT(*)`.
        input: Option<(usize, usize)>,
        /// Output attribute name.
        name: String,
    },
}

/// The bound SELECT clause of a query beyond its joins: the ordered output
/// items, grouping columns, and row limit. [`SelectSpec::validate`] checks
/// it against a [`JoinQuery`]; the planner turns it into post-join
/// pipeline stages (filter residue, partitioned aggregation, limit).
#[derive(Clone, Debug, Default)]
pub struct SelectSpec {
    /// Ordered output items.
    pub items: Vec<SelectItemSpec>,
    /// GROUP BY columns as `(relation, column)` pairs (empty = no
    /// grouping; with aggregates present that means one global group).
    pub group_by: Vec<(usize, usize)>,
    /// `LIMIT n`, if any.
    pub limit: Option<u64>,
    /// Estimated number of distinct groups (from catalog statistics), used
    /// to size the aggregate stage estimate. `None` falls back to a
    /// heuristic.
    pub group_distinct_hint: Option<u64>,
}

impl SelectSpec {
    /// A plain column projection (no aggregates, grouping, or limit).
    pub fn columns(cols: Vec<(usize, usize)>) -> Self {
        SelectSpec {
            items: cols
                .into_iter()
                .map(|(r, c)| SelectItemSpec::Column(r, c))
                .collect(),
            ..SelectSpec::default()
        }
    }

    /// True if any item is an aggregate call.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItemSpec::Aggregate { .. }))
    }

    /// True if the query needs an aggregation stage (aggregates or
    /// grouped-distinct output).
    pub fn needs_aggregate(&self) -> bool {
        self.has_aggregates() || !self.group_by.is_empty()
    }

    /// Validates items, grouping, and aggregate inputs against `query`:
    /// every referenced column must exist, SUM/MIN/MAX inputs must be
    /// integers, and with grouping (or aggregates) present every plain
    /// column item must be one of the GROUP BY columns.
    pub fn validate(&self, query: &JoinQuery) -> Result<()> {
        if self.items.is_empty() {
            return Err(RelalgError::InvalidPlan("empty select list".into()));
        }
        for &(r, c) in &self.group_by {
            query.schema(r)?.attr(c)?;
        }
        for item in &self.items {
            match item {
                SelectItemSpec::Column(r, c) => {
                    query.schema(*r)?.attr(*c)?;
                    if self.needs_aggregate() && !self.group_by.contains(&(*r, *c)) {
                        return Err(RelalgError::InvalidPlan(format!(
                            "column {}.{c} must appear in GROUP BY to be selected \
                             alongside aggregates",
                            query.graph().names()[*r]
                        )));
                    }
                }
                SelectItemSpec::Aggregate { func, input, .. } => {
                    if let Some((r, c)) = input {
                        let attr = query.schema(*r)?.attr(*c)?;
                        if *func != AggFunc::Count && attr.ty != mj_relalg::DataType::Int {
                            return Err(RelalgError::InvalidPlan(format!(
                                "{func:?} needs an integer column, {}.{} is {}",
                                query.graph().names()[*r],
                                attr.name,
                                attr.ty
                            )));
                        }
                    } else if *func != AggFunc::Count {
                        return Err(RelalgError::InvalidPlan(
                            "only COUNT may omit its input column".into(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Rewrites an XRA plan so every `Scan` of a relation in `filters` runs
/// beneath a `Select` with that predicate — how the sequential oracle
/// mirrors the engine's filter pushdown to scans.
pub fn inject_scan_filters(node: XraNode, filters: &HashMap<String, Predicate>) -> XraNode {
    match node {
        XraNode::Scan { relation } => match filters.get(&relation) {
            Some(p) => XraNode::Select {
                input: Box::new(XraNode::Scan { relation }),
                predicate: p.clone(),
            },
            None => XraNode::Scan { relation },
        },
        XraNode::Select { input, predicate } => XraNode::Select {
            input: Box::new(inject_scan_filters(*input, filters)),
            predicate,
        },
        XraNode::Project { input, projection } => XraNode::Project {
            input: Box::new(inject_scan_filters(*input, filters)),
            projection,
        },
        XraNode::HashJoin {
            left,
            right,
            join,
            algorithm,
        } => XraNode::HashJoin {
            left: Box::new(inject_scan_filters(*left, filters)),
            right: Box::new(inject_scan_filters(*right, filters)),
            join,
            algorithm,
        },
        XraNode::UnionAll { inputs } => XraNode::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|n| inject_scan_filters(n, filters))
                .collect(),
        },
        XraNode::Aggregate { input, group, aggs } => XraNode::Aggregate {
            input: Box::new(inject_scan_filters(*input, filters)),
            group,
            aggs,
        },
    }
}

impl Default for JoinQuery {
    fn default() -> Self {
        Self::new()
    }
}

/// A join tree lowered against a [`JoinQuery`]: per-join [`EquiJoin`]
/// specs, derived per-node schemas, and per-node cardinality estimates.
/// This is what a `QueryBinding` and the plan generator consume.
#[derive(Clone, Debug)]
pub struct LoweredQuery {
    specs: HashMap<NodeId, EquiJoin>,
    schemas: Vec<Arc<Schema>>,
    /// Relation bitmask covered by each node.
    masks: Vec<u32>,
    /// Estimated cardinality per node (graph selectivity model).
    est_cards: Vec<u64>,
}

impl LoweredQuery {
    /// The join spec of a join node.
    pub fn spec(&self, join: NodeId) -> Result<&EquiJoin> {
        self.specs
            .get(&join)
            .ok_or_else(|| RelalgError::InvalidPlan(format!("no spec for join {join}")))
    }

    /// All join specs by node id.
    pub fn specs(&self) -> &HashMap<NodeId, EquiJoin> {
        &self.specs
    }

    /// The output schema of each tree node, indexed by [`NodeId`].
    pub fn schemas(&self) -> &[Arc<Schema>] {
        &self.schemas
    }

    /// Relation bitmask covered by each node.
    pub fn masks(&self) -> &[u32] {
        &self.masks
    }

    /// Estimated cardinality per tree node, indexed by [`NodeId`].
    pub fn est_cards(&self) -> &[u64] {
        &self.est_cards
    }

    /// Lowers the tree to a logical XRA plan (the sequential oracle for
    /// the parallel backends), tagging every join with `algorithm`.
    pub fn to_xra(&self, tree: &JoinTree, algorithm: JoinAlgorithm) -> Result<XraNode> {
        self.xra_node(tree, tree.root(), algorithm)
    }

    fn xra_node(&self, tree: &JoinTree, id: NodeId, algorithm: JoinAlgorithm) -> Result<XraNode> {
        match tree.node(id)? {
            TreeNode::Leaf { relation } => Ok(XraNode::scan(relation.clone())),
            TreeNode::Join { left, right } => Ok(XraNode::join(
                self.xra_node(tree, *left, algorithm)?,
                self.xra_node(tree, *right, algorithm)?,
                self.spec(id)?.clone(),
                algorithm,
            )),
        }
    }
}

/// Lowers `tree` against `query`, deriving an [`EquiJoin`] spec and output
/// schema for every node. `output` lists the `(relation, column)` pairs the
/// final result must contain, in order; `None` keeps every column of every
/// relation in tree-independent `(relation, column)` order.
///
/// Intermediate projections prune every column that no ancestor join or
/// output column needs. Joins whose subtrees are linked by more than one
/// graph edge (cyclic queries) are rejected — the streaming operators apply
/// exactly one key equality and no residual predicate.
pub fn lower(
    tree: &JoinTree,
    query: &JoinQuery,
    output: Option<&[(usize, usize)]>,
) -> Result<LoweredQuery> {
    tree.validate()?;
    if tree.join_count() == 0 {
        // A single-leaf tree has no join to hang the output projection on,
        // so the requested output could not be honored — reject instead of
        // silently returning the full relation schema.
        return Err(RelalgError::InvalidPlan(
            "tree has no joins to lower".into(),
        ));
    }
    let default_out;
    let out_cols: &[(usize, usize)] = match output {
        Some(cols) => cols,
        None => {
            default_out = query.all_columns();
            &default_out
        }
    };
    for &(r, c) in out_cols {
        query.schema(r)?.attr(c)?;
    }

    let n_nodes = tree.nodes().len();
    let mut masks = vec![0u32; n_nodes];
    let mut est_cards = vec![0u64; n_nodes];
    let mut schemas: Vec<Option<Arc<Schema>>> = vec![None; n_nodes];
    // Provenance of each node's output columns: (relation, column) pairs.
    let mut provenance: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_nodes];
    let mut specs = HashMap::new();
    let mut seen_relations = 0u32;

    // A column survives a node's projection if some edge crossing out of
    // the node's mask (a join an ancestor will perform) or the final
    // output references it.
    let needed_above = |mask: u32, rel: usize, col: usize| -> bool {
        if out_cols.contains(&(rel, col)) {
            return true;
        }
        query
            .graph()
            .edges()
            .iter()
            .zip(query.edge_cols())
            .any(|(&(a, b, _), &(ca, cb))| {
                let a_in = mask & (1 << a) != 0;
                let b_in = mask & (1 << b) != 0;
                a_in != b_in && ((a_in && a == rel && ca == col) || (b_in && b == rel && cb == col))
            })
    };

    // Node ids are a bottom-up order (children before parents).
    for (id, node) in tree.nodes().iter().enumerate() {
        match node {
            TreeNode::Leaf { relation } => {
                let rel = query.relation_index(relation).ok_or_else(|| {
                    RelalgError::InvalidPlan(format!("tree leaf `{relation}` is not in the query"))
                })?;
                if seen_relations & (1 << rel) != 0 {
                    return Err(RelalgError::InvalidPlan(format!(
                        "relation `{relation}` appears twice in the tree"
                    )));
                }
                seen_relations |= 1 << rel;
                masks[id] = 1 << rel;
                est_cards[id] = query.graph().cards()[rel];
                schemas[id] = Some(query.schema(rel)?.clone());
                provenance[id] = (0..query.schema(rel)?.arity()).map(|c| (rel, c)).collect();
            }
            TreeNode::Join { left, right } => {
                let (l, r) = (*left, *right);
                let mask = masks[l] | masks[r];
                masks[id] = mask;
                est_cards[id] = query.graph().subset_card(mask).round() as u64;

                // The single edge this join consumes.
                let crossing: Vec<usize> = query
                    .graph()
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, &(a, b, _))| {
                        let a_side = masks[l] & (1 << a) != 0;
                        let b_side = masks[l] & (1 << b) != 0;
                        (masks[id] & (1 << a) != 0 && masks[id] & (1 << b) != 0) && a_side != b_side
                    })
                    .map(|(i, _)| i)
                    .collect();
                match crossing.len() {
                    0 => {
                        return Err(RelalgError::InvalidPlan(format!(
                            "join node {id} has no connecting predicate (cartesian product)"
                        )))
                    }
                    1 => {}
                    n => {
                        return Err(RelalgError::InvalidPlan(format!(
                            "join node {id} is linked by {n} predicates; cyclic queries are \
                             not lowerable (one key equality per join)"
                        )))
                    }
                }
                let e = crossing[0];
                let (a, b, _) = query.graph().edges()[e];
                let (ca, cb) = query.edge_cols()[e];
                // Orient the edge: which endpoint lives in the left subtree.
                let ((lrel, lcol), (rrel, rcol)) = if masks[l] & (1 << a) != 0 {
                    ((a, ca), (b, cb))
                } else {
                    ((b, cb), (a, ca))
                };
                let left_key = position_of(&provenance[l], lrel, lcol, id)?;
                let right_key = position_of(&provenance[r], rrel, rcol, id)?;

                // Projection over concat(left, right): keep what ancestors
                // or the output need; the root projects to output order.
                let concat: Vec<(usize, usize)> = provenance[l]
                    .iter()
                    .chain(provenance[r].iter())
                    .copied()
                    .collect();
                let (cols, prov): (Vec<usize>, Vec<(usize, usize)>) = if id == tree.root() {
                    let mut cols = Vec::with_capacity(out_cols.len());
                    for &(rel, col) in out_cols {
                        cols.push(position_of(&concat, rel, col, id)?);
                    }
                    (cols, out_cols.to_vec())
                } else {
                    concat
                        .iter()
                        .enumerate()
                        .filter(|(_, &(rel, col))| needed_above(mask, rel, col))
                        .map(|(i, &rc)| (i, rc))
                        .unzip()
                };
                let spec = EquiJoin::new(left_key, right_key, Projection::new(cols));
                let ls = schemas[l].as_ref().expect("children before parents");
                let rs = schemas[r].as_ref().expect("children before parents");
                spec.validate(ls, rs)?;
                schemas[id] = Some(Arc::new(spec.output_schema(ls, rs)?));
                provenance[id] = prov;
                specs.insert(id, spec);
            }
        }
    }

    if (seen_relations.count_ones() as usize) < query.len() {
        return Err(RelalgError::InvalidPlan(format!(
            "tree covers {} of {} query relations",
            seen_relations.count_ones(),
            query.len()
        )));
    }

    Ok(LoweredQuery {
        specs,
        schemas: schemas
            .into_iter()
            .map(|s| s.expect("all filled"))
            .collect(),
        masks,
        est_cards,
    })
}

fn position_of(prov: &[(usize, usize)], rel: usize, col: usize, node: NodeId) -> Result<usize> {
    prov.iter().position(|&rc| rc == (rel, col)).ok_or_else(|| {
        RelalgError::InvalidPlan(format!(
            "column {col} of relation {rel} was pruned below join {node} but is needed there"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{build, Shape};
    use mj_relalg::Relation;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Tiny deterministic "Wisconsin" relations: u1/u2 are permutations of
    /// 0..n generated by coprime strides.
    fn provider(k: usize, n: i64) -> HashMap<String, Arc<Relation>> {
        let schema = Arc::new(mj_relalg::Schema::new(vec![
            mj_relalg::Attribute::int("unique1"),
            mj_relalg::Attribute::int("unique2"),
            mj_relalg::Attribute::int("filler"),
        ]));
        let mut m = HashMap::new();
        // Strides coprime with n=10: 3, 7, 9, 11...
        let strides = [3i64, 7, 9, 11, 13, 17, 19, 21, 23, 27];
        for r in 0..k {
            let s1 = strides[r % strides.len()];
            let s2 = strides[(r + 3) % strides.len()];
            let tuples = (0..n)
                .map(|i| mj_relalg::Tuple::from_ints(&[(i * s1) % n, (i * s2) % n, i]))
                .collect();
            m.insert(
                format!("R{r}"),
                Arc::new(Relation::new_unchecked(schema.clone(), tuples)),
            );
        }
        m
    }

    #[test]
    fn regular_spec_preserves_arity() {
        for arity in [2usize, 3, 16] {
            let spec = regular_join_spec(arity);
            assert_eq!(spec.projection.arity(), arity);
            assert_eq!(spec.left_key, 0);
            assert_eq!(spec.right_key, 0);
        }
    }

    #[test]
    fn every_shape_evaluates_to_n_tuples() {
        let n = 10i64;
        let p = provider(5, n);
        for shape in Shape::ALL {
            let tree = build(shape, 5).unwrap();
            let plan = to_xra(&tree, 3, JoinAlgorithm::Simple);
            let out = plan.eval(&p).unwrap();
            assert_eq!(out.len(), n as usize, "{shape}");
            assert_eq!(out.schema().arity(), 3, "{shape}");
            // Result keys are again a permutation of 0..n.
            let mut keys: Vec<i64> = out.iter().map(|t| t.int(0).unwrap()).collect();
            keys.sort_unstable();
            assert_eq!(keys, (0..n).collect::<Vec<_>>(), "{shape}");
        }
    }

    #[test]
    fn join_count_matches_tree() {
        let tree = build(Shape::WideBushy, 10).unwrap();
        let plan = to_xra(&tree, 3, JoinAlgorithm::Pipelining);
        assert_eq!(plan.join_count(), 9);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn arity_below_two_panics() {
        regular_join_spec(1);
    }

    // --- JoinQuery / generalized lowering ---

    fn int_schema(names: &[&str]) -> Arc<mj_relalg::Schema> {
        Arc::new(mj_relalg::Schema::new(
            names
                .iter()
                .map(|n| mj_relalg::Attribute::int(*n))
                .collect(),
        ))
    }

    /// Chain R0 -(b=a)- R1 -(b=a)- R2, each with columns (a, b, id).
    fn chain_query(k: usize, n: u64) -> JoinQuery {
        let mut q = JoinQuery::new();
        for i in 0..k {
            q.add_relation(format!("R{i}"), n, int_schema(&["a", "b", "id"]))
                .unwrap();
        }
        for i in 0..k - 1 {
            q.add_join(i, i + 1, 1, 0, 1.0 / n as f64).unwrap();
        }
        q
    }

    #[test]
    fn join_query_validates_relations_and_columns() {
        let mut q = JoinQuery::new();
        let a = q.add_relation("A", 10, int_schema(&["x"])).unwrap();
        assert!(q.add_relation("A", 10, int_schema(&["x"])).is_err());
        let b = q
            .add_relation(
                "B",
                10,
                Arc::new(mj_relalg::Schema::new(vec![
                    mj_relalg::Attribute::int("k"),
                    mj_relalg::Attribute::str("s"),
                ])),
            )
            .unwrap();
        assert!(q.add_join(a, b, 5, 0, 0.5).is_err(), "bad column index");
        assert!(q.add_join(a, b, 0, 1, 0.5).is_err(), "int vs str");
        assert!(q.add_join(a, b, 0, 0, 0.0).is_err(), "bad selectivity");
        q.add_join(a, b, 0, 0, 0.1).unwrap();
        assert_eq!(q.edge_cols(), &[(0, 0)]);
        assert_eq!(q.relation_index("B"), Some(b));
        assert_eq!(q.relation_index("C"), None);
    }

    #[test]
    fn edge_cols_follow_endpoint_normalization() {
        // add_join(2, 0, ...) must store cols in (min, max) endpoint order.
        let mut q = JoinQuery::new();
        for i in 0..3 {
            q.add_relation(format!("R{i}"), 10, int_schema(&["a", "b"]))
                .unwrap();
        }
        q.add_join(2, 0, 1, 0, 0.5).unwrap();
        assert_eq!(q.graph().edges()[0].0, 0);
        assert_eq!(q.graph().edges()[0].1, 2);
        assert_eq!(q.edge_cols()[0], (0, 1), "cols swapped with endpoints");
    }

    #[test]
    fn lowering_derives_specs_and_prunes_columns() {
        let q = chain_query(3, 100);
        let tree = build(Shape::RightLinear, 3).unwrap();
        // Output: just the id column of each relation.
        let out = vec![(0, 2), (1, 2), (2, 2)];
        let lowered = lower(&tree, &q, Some(&out)).unwrap();
        let root = tree.root();
        assert_eq!(lowered.schemas()[root].arity(), 3);
        // The bottom join (R1 x R2) keeps R1.a (needed by the root join
        // against R0.b) and both ids, pruning the rest.
        let (_, bottom) = tree.children(root).unwrap();
        let bs = &lowered.schemas()[bottom];
        assert_eq!(bs.arity(), 3, "{bs}");
        // Root spec joins R0.b against the surviving R1.a position.
        let spec = lowered.spec(root).unwrap();
        assert_eq!(spec.left_key, 1);
        // Estimated cards: perfect chain keeps every level at n.
        assert_eq!(lowered.est_cards()[root], 100);
        assert_eq!(lowered.est_cards()[bottom], 100);
    }

    #[test]
    fn lowered_chain_evaluates_like_hand_built_oracle() {
        // Data where join values are permutations: R{i}.b = R{i+1}.a
        // matches exactly once per tuple.
        let n = 12i64;
        let q = chain_query(3, n as u64);
        let mut provider: HashMap<String, Arc<Relation>> = HashMap::new();
        for r in 0..3i64 {
            let schema = int_schema(&["a", "b", "id"]);
            let tuples = (0..n)
                .map(|i| mj_relalg::Tuple::from_ints(&[(i * 5 + r) % n, (i * 7 + r + 1) % n, i]))
                .collect();
            provider.insert(
                format!("R{r}"),
                Arc::new(Relation::new_unchecked(schema, tuples)),
            );
        }
        let mut results = Vec::new();
        for shape in [Shape::LeftLinear, Shape::RightLinear] {
            let tree = build(shape, 3).unwrap();
            let lowered = lower(&tree, &q, None).unwrap();
            let xra = lowered.to_xra(&tree, JoinAlgorithm::Simple).unwrap();
            let out = xra.eval(&provider).unwrap();
            assert_eq!(out.schema().arity(), 9, "all columns kept by default");
            let mut tuples: Vec<_> = out.iter().cloned().collect();
            tuples.sort_unstable();
            results.push(tuples);
        }
        // Tree-independent output order makes shapes directly comparable.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].len(), n as usize);
    }

    #[test]
    fn lowering_rejects_cartesian_and_cyclic_joins() {
        // Star query: fact joined to two dims. A bushy tree pairing the
        // two dims has no connecting predicate.
        let mut q = JoinQuery::new();
        let f = q
            .add_relation("R0", 100, int_schema(&["d0", "d1"]))
            .unwrap();
        let d0 = q.add_relation("R1", 10, int_schema(&["k"])).unwrap();
        let d1 = q.add_relation("R2", 10, int_schema(&["k"])).unwrap();
        q.add_join(f, d0, 0, 0, 0.1).unwrap();
        q.add_join(f, d1, 1, 0, 0.1).unwrap();
        let bushy = build(Shape::WideBushy, 3).unwrap();
        // WideBushy(3) pairs two relations then joins the third; depending
        // on leaf order this may or may not hit the dim-dim pair, so
        // check the explicit bad tree instead.
        let _ = bushy;
        let mut b = JoinTree::builder();
        let l0 = b.leaf("R1");
        let l1 = b.leaf("R2");
        let j = b.join(l0, l1);
        let l2 = b.leaf("R0");
        let root = b.join(j, l2);
        let bad = b.build(root).unwrap();
        let err = lower(&bad, &q, None).unwrap_err();
        assert!(err.to_string().contains("cartesian"), "{err}");

        // A cycle makes some join consume two predicates.
        let mut cyc = chain_query(3, 10);
        cyc.add_join(0, 2, 0, 1, 0.5).unwrap();
        let tree = build(Shape::RightLinear, 3).unwrap();
        let err = lower(&tree, &cyc, None).unwrap_err();
        assert!(err.to_string().contains("predicates"), "{err}");
    }

    #[test]
    fn lowering_rejects_incomplete_or_foreign_trees() {
        let q = chain_query(4, 10);
        let tree3 = build(Shape::RightLinear, 3).unwrap();
        assert!(lower(&tree3, &q, None).is_err(), "covers 3 of 4");
        let mut b = JoinTree::builder();
        let x = b.leaf("X0");
        let r = b.leaf("R1");
        let root = b.join(x, r);
        let foreign = b.build(root).unwrap();
        assert!(lower(&foreign, &q, None).is_err(), "unknown leaf");
        let q3 = chain_query(3, 10);
        assert!(
            lower(&tree3, &q3, Some(&[(0, 99)])).is_err(),
            "bad output column"
        );
    }

    // --- Filters and SelectSpec ---

    use mj_relalg::CmpOp;

    #[test]
    fn filters_validate_and_fold_into_cards() {
        let mut q = chain_query(3, 100);
        // Bad attr index, bad selectivity.
        assert!(q
            .add_filter(0, Predicate::cmp_int(9, CmpOp::Lt, 5), 0.5)
            .is_err());
        assert!(q
            .add_filter(0, Predicate::cmp_int(0, CmpOp::Lt, 5), 0.0)
            .is_err());
        assert!(q.add_filter(3, Predicate::True, 0.5).is_err(), "bad rel");
        q.add_filter(1, Predicate::cmp_int(0, CmpOp::Lt, 5), 0.25)
            .unwrap();
        q.add_filter(1, Predicate::cmp_int(2, CmpOp::Ge, 0), 0.5)
            .unwrap();
        assert_eq!(q.filters().len(), 2);
        assert!((q.filter_selectivity(1) - 0.125).abs() < 1e-12);
        assert!((q.filter_selectivity(0) - 1.0).abs() < 1e-12);
        assert!(q.combined_filter(0).is_none());
        let both = q.combined_filter(1).unwrap();
        assert!(matches!(both, Predicate::And(_, _)));
        // Folded cards: R1 shrinks to 100 * 0.125 = 13 (rounded), floor 1.
        let folded = q.with_filtered_cards();
        assert_eq!(folded.graph().cards(), &[100, 13, 100]);
        // The original is untouched.
        assert_eq!(q.graph().cards(), &[100, 100, 100]);
    }

    #[test]
    fn filtered_cards_never_reach_zero() {
        let mut q = chain_query(2, 10);
        q.add_filter(0, Predicate::cmp_int(0, CmpOp::Eq, 1), 0.001)
            .unwrap();
        assert_eq!(q.with_filtered_cards().graph().cards()[0], 1);
    }

    #[test]
    fn select_spec_validates_grouping_rules() {
        let q = chain_query(3, 50);
        // Plain columns, no grouping: fine.
        SelectSpec::columns(vec![(0, 0), (2, 2)])
            .validate(&q)
            .unwrap();
        // Unknown column.
        assert!(SelectSpec::columns(vec![(0, 9)]).validate(&q).is_err());
        // Aggregate + plain column not in GROUP BY: rejected.
        let mut spec = SelectSpec {
            items: vec![
                SelectItemSpec::Column(0, 0),
                SelectItemSpec::Aggregate {
                    func: AggFunc::Count,
                    input: None,
                    name: "n".into(),
                },
            ],
            ..SelectSpec::default()
        };
        assert!(spec.validate(&q).is_err());
        // With the column in GROUP BY: accepted.
        spec.group_by = vec![(0, 0)];
        spec.validate(&q).unwrap();
        assert!(spec.has_aggregates());
        assert!(spec.needs_aggregate());
        // SUM over a string column: rejected.
        let mut q2 = JoinQuery::new();
        q2.add_relation(
            "S",
            10,
            Arc::new(mj_relalg::Schema::new(vec![
                mj_relalg::Attribute::int("k"),
                mj_relalg::Attribute::str("s"),
            ])),
        )
        .unwrap();
        q2.add_relation("T", 10, int_schema(&["k"])).unwrap();
        q2.add_join(0, 1, 0, 0, 0.1).unwrap();
        let bad = SelectSpec {
            items: vec![SelectItemSpec::Aggregate {
                func: AggFunc::Sum,
                input: Some((0, 1)),
                name: "s".into(),
            }],
            ..SelectSpec::default()
        };
        assert!(bad.validate(&q2).is_err());
        // SUM without an input column: rejected; COUNT(*) fine.
        let bad = SelectSpec {
            items: vec![SelectItemSpec::Aggregate {
                func: AggFunc::Sum,
                input: None,
                name: "s".into(),
            }],
            ..SelectSpec::default()
        };
        assert!(bad.validate(&q).is_err());
        // Empty select list: rejected.
        assert!(SelectSpec::default().validate(&q).is_err());
    }

    #[test]
    fn inject_scan_filters_wraps_only_named_scans() {
        let plan = XraNode::join(
            XraNode::scan("r"),
            XraNode::scan("s"),
            EquiJoin::new(0, 0, Projection::new(vec![0])),
            JoinAlgorithm::Simple,
        );
        let mut filters = HashMap::new();
        filters.insert("r".to_string(), Predicate::cmp_int(0, CmpOp::Lt, 5));
        let wrapped = inject_scan_filters(plan, &filters);
        let XraNode::HashJoin { left, right, .. } = &wrapped else {
            panic!("join preserved");
        };
        assert!(matches!(**left, XraNode::Select { .. }));
        assert!(matches!(**right, XraNode::Scan { .. }));
    }

    use crate::tree::JoinTree;
}
