//! The paper's cost function (§4.3).
//!
//! For a join with operand cardinalities `n1`, `n2` and result cardinality
//! `r`:
//!
//! ```text
//! cost = a·n1 + b·n2 + c·r
//! ```
//!
//! where `a`/`b` are 1 if the operand is a base relation and 2 if it is an
//! intermediate result, and `c` = 2. The unit is "one action on one tuple"
//! (hashing, network receive, result construction, network send). The paper
//! deliberately keeps this simple: parallelization itself perturbs true
//! costs, so precision would be illusory — "our experiments will show,
//! however, that the cost estimate used generates execution plans with good
//! parallel behavior."

use serde::{Deserialize, Serialize};

use crate::tree::{JoinTree, NodeId, TreeNode};

/// Coefficients of the paper's cost formula.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-tuple cost of a base-relation operand (hash only). Paper: 1.
    pub base_operand: f64,
    /// Per-tuple cost of an intermediate operand (receive + hash). Paper: 2.
    pub intermediate_operand: f64,
    /// Per-tuple cost of a result (create + send). Paper: 2.
    pub result: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_operand: 1.0,
            intermediate_operand: 2.0,
            result: 2.0,
        }
    }
}

impl CostModel {
    /// Cost of a single join.
    pub fn join_cost(
        &self,
        n1: u64,
        left_is_base: bool,
        n2: u64,
        right_is_base: bool,
        r: u64,
    ) -> f64 {
        let a = if left_is_base {
            self.base_operand
        } else {
            self.intermediate_operand
        };
        let b = if right_is_base {
            self.base_operand
        } else {
            self.intermediate_operand
        };
        a * n1 as f64 + b * n2 as f64 + self.result * r as f64
    }
}

/// Per-join and total costs of a tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeCosts {
    /// Cost per node id (0.0 for leaves).
    pub per_join: Vec<f64>,
    /// Sum over all joins.
    pub total: f64,
}

impl TreeCosts {
    /// The relative work of each join: `cost_j / total`, indexed by node
    /// id. These fractions drive proportional processor allocation in
    /// SE/RD/FP.
    pub fn work_fractions(&self) -> Vec<f64> {
        if self.total <= 0.0 {
            return vec![0.0; self.per_join.len()];
        }
        self.per_join.iter().map(|c| c / self.total).collect()
    }
}

/// Computes the paper's costs for every join of `tree`, given per-node
/// cardinalities (from [`crate::cardinality::node_cards`]).
pub fn tree_costs(tree: &JoinTree, cards: &[u64], model: &CostModel) -> TreeCosts {
    assert_eq!(cards.len(), tree.nodes().len(), "one cardinality per node");
    let mut per_join = vec![0.0; tree.nodes().len()];
    let mut total = 0.0;
    for (id, node) in tree.nodes().iter().enumerate() {
        if let TreeNode::Join { left, right } = node {
            let c = model.join_cost(
                cards[*left],
                tree.is_leaf(*left),
                cards[*right],
                tree.is_leaf(*right),
                cards[id],
            );
            per_join[id] = c;
            total += c;
        }
    }
    TreeCosts { per_join, total }
}

/// Convenience: costs of `tree` under a cardinality model.
pub fn tree_costs_with_model(
    tree: &JoinTree,
    model: &dyn crate::cardinality::CardModel,
    cost: &CostModel,
) -> TreeCosts {
    let cards = crate::cardinality::node_cards(tree, model);
    tree_costs(tree, &cards, cost)
}

/// The per-join costs restricted to join nodes, as `(id, cost)` pairs in
/// bottom-up order — handy for display and allocation.
pub fn join_costs_bottom_up(tree: &JoinTree, costs: &TreeCosts) -> Vec<(NodeId, f64)> {
    tree.joins_bottom_up()
        .into_iter()
        .map(|id| (id, costs.per_join[id]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::UniformOneToOne;
    use crate::shapes::{build, Shape};

    /// §4.1: "All possible join trees for this query have the same total
    /// execution costs." For k relations of N tuples: 9 joins emit 2N each
    /// (18N for k=10), 10 base-operand slots cost N each, 8 intermediate
    /// slots cost 2N each — 44N total, independent of shape.
    #[test]
    fn regular_query_total_cost_is_shape_invariant_44n() {
        let n = 5000u64;
        for shape in Shape::ALL {
            let tree = build(shape, 10).unwrap();
            let costs = tree_costs_with_model(&tree, &UniformOneToOne { n }, &CostModel::default());
            assert_eq!(costs.total, 44.0 * n as f64, "{shape}");
        }
    }

    #[test]
    fn invariance_generalizes_in_k() {
        // k relations: joins = k-1, result slots = k-1, base slots = k,
        // intermediate slots = k-2 -> total = (2(k-1) + k + 2(k-2))N = (5k-6)N.
        let n = 1000u64;
        for k in [2usize, 3, 5, 8, 10, 12] {
            let expected = (5 * k - 6) as f64 * n as f64;
            for shape in Shape::ALL {
                let tree = build(shape, k).unwrap();
                let costs =
                    tree_costs_with_model(&tree, &UniformOneToOne { n }, &CostModel::default());
                assert_eq!(costs.total, expected, "{shape} k={k}");
            }
        }
    }

    #[test]
    fn per_join_costs_distinguish_base_and_intermediate() {
        let tree = build(Shape::RightLinear, 3).unwrap();
        let costs =
            tree_costs_with_model(&tree, &UniformOneToOne { n: 100 }, &CostModel::default());
        let joins = join_costs_bottom_up(&tree, &costs);
        // Bottom join: two base operands: 1+1+2 = 4 units * 100.
        assert_eq!(joins[0].1, 400.0);
        // Root: base left, intermediate right: 1+2+2 = 5 units * 100.
        assert_eq!(joins[1].1, 500.0);
    }

    #[test]
    fn work_fractions_sum_to_one() {
        let tree = build(Shape::WideBushy, 10).unwrap();
        let costs = tree_costs_with_model(&tree, &UniformOneToOne { n: 10 }, &CostModel::default());
        let sum: f64 = costs.work_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn zero_total_yields_zero_fractions() {
        let tree = build(Shape::WideBushy, 4).unwrap();
        let costs = TreeCosts {
            per_join: vec![0.0; tree.nodes().len()],
            total: 0.0,
        };
        assert!(costs.work_fractions().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn custom_cost_model() {
        let m = CostModel {
            base_operand: 1.0,
            intermediate_operand: 3.0,
            result: 0.5,
        };
        assert_eq!(m.join_cost(10, true, 20, false, 4), 10.0 + 60.0 + 2.0);
    }
}
