//! Arena-based binary join trees.
//!
//! Nodes live in a flat arena and are referenced by [`NodeId`]; children are
//! always created before their parents, so node ids are a valid topological
//! (bottom-up) order — a property the strategy generators and the simulator
//! rely on when walking trees.

use serde::{Deserialize, Serialize};

use mj_relalg::{RelalgError, Result};

/// Index of a node within its [`JoinTree`] arena.
pub type NodeId = usize;

/// One node of a join tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A base relation.
    Leaf {
        /// Catalog name of the relation.
        relation: String,
    },
    /// A binary join of two subtrees.
    Join {
        /// Left child (the *build* operand of the simple hash join).
        left: NodeId,
        /// Right child (the *probe* operand).
        right: NodeId,
    },
}

/// A binary join tree over named base relations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinTree {
    nodes: Vec<TreeNode>,
    root: NodeId,
}

impl JoinTree {
    /// Builder: creates an empty tree (no valid root until nodes exist).
    pub fn builder() -> JoinTreeBuilder {
        JoinTreeBuilder { nodes: Vec::new() }
    }

    /// Builds the tree `relation` (single leaf) — the degenerate case.
    pub fn single(relation: impl Into<String>) -> JoinTree {
        JoinTree {
            nodes: vec![TreeNode::Leaf {
                relation: relation.into(),
            }],
            root: 0,
        }
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes (indexable by [`NodeId`]).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> Result<&TreeNode> {
        self.nodes.get(id).ok_or(RelalgError::IndexOutOfBounds {
            index: id,
            arity: self.nodes.len(),
        })
    }

    /// True if `id` is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        matches!(self.nodes.get(id), Some(TreeNode::Leaf { .. }))
    }

    /// Children of a join node, or `None` for leaves.
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        match self.nodes.get(id) {
            Some(TreeNode::Join { left, right }) => Some((*left, *right)),
            _ => None,
        }
    }

    /// Number of join (inner) nodes.
    pub fn join_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Join { .. }))
            .count()
    }

    /// Number of leaves (base relations).
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.join_count()
    }

    /// Join node ids in bottom-up (children before parents) order.
    pub fn joins_bottom_up(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.join_count());
        self.postorder_from(self.root, &mut |id| {
            if !self.is_leaf(id) {
                out.push(id);
            }
        });
        out
    }

    /// Leaf relation names in left-to-right order.
    pub fn leaves_in_order(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.postorder_from(self.root, &mut |id| {
            if let Some(TreeNode::Leaf { relation }) = self.nodes.get(id) {
                out.push(relation.as_str());
            }
        });
        out
    }

    /// Applies `f` to every node reachable from `from` in postorder
    /// (left, right, node).
    pub fn postorder_from<F: FnMut(NodeId)>(&self, from: NodeId, f: &mut F) {
        match &self.nodes[from] {
            TreeNode::Leaf { .. } => f(from),
            TreeNode::Join { left, right } => {
                self.postorder_from(*left, f);
                self.postorder_from(*right, f);
                f(from);
            }
        }
    }

    /// Depth of the tree in join nodes (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        self.depth_of(self.root)
    }

    fn depth_of(&self, id: NodeId) -> usize {
        match self.children(id) {
            None => 0,
            Some((l, r)) => 1 + self.depth_of(l).max(self.depth_of(r)),
        }
    }

    /// Length of the chain from the root following only right children,
    /// counting join nodes — the length of the root's right-deep segment.
    pub fn right_spine_len(&self) -> usize {
        let mut len = 0;
        let mut cur = self.root;
        while let Some((_, r)) = self.children(cur) {
            len += 1;
            cur = r;
        }
        len
    }

    /// Parent of each node (`None` for the root). O(n).
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            if let TreeNode::Join { left, right } = n {
                parents[*left] = Some(id);
                parents[*right] = Some(id);
            }
        }
        parents
    }

    /// Structural validation: every child id is in range and smaller than
    /// its parent, every non-root node has exactly one parent, and the root
    /// reaches all nodes.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(RelalgError::InvalidPlan("empty join tree".into()));
        }
        if self.root >= self.nodes.len() {
            return Err(RelalgError::InvalidPlan("root out of range".into()));
        }
        let mut seen = vec![0usize; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            if let TreeNode::Join { left, right } = n {
                for &c in [left, right].iter() {
                    if *c >= id {
                        return Err(RelalgError::InvalidPlan(format!(
                            "child {c} not created before parent {id}"
                        )));
                    }
                    seen[*c] += 1;
                }
                if left == right {
                    return Err(RelalgError::InvalidPlan(format!("join {id} repeats child")));
                }
            }
        }
        for (id, &count) in seen.iter().enumerate() {
            let expected = usize::from(id != self.root);
            if count != expected {
                return Err(RelalgError::InvalidPlan(format!(
                    "node {id} has {count} parents, expected {expected}"
                )));
            }
        }
        let mut reached = 0usize;
        self.postorder_from(self.root, &mut |_| reached += 1);
        if reached != self.nodes.len() {
            return Err(RelalgError::InvalidPlan(
                "root does not reach all nodes".into(),
            ));
        }
        Ok(())
    }
}

/// Incremental bottom-up tree builder.
pub struct JoinTreeBuilder {
    nodes: Vec<TreeNode>,
}

impl JoinTreeBuilder {
    /// Adds a leaf, returning its id.
    pub fn leaf(&mut self, relation: impl Into<String>) -> NodeId {
        self.nodes.push(TreeNode::Leaf {
            relation: relation.into(),
        });
        self.nodes.len() - 1
    }

    /// Adds a join of two existing nodes, returning its id.
    pub fn join(&mut self, left: NodeId, right: NodeId) -> NodeId {
        debug_assert!(left < self.nodes.len() && right < self.nodes.len());
        self.nodes.push(TreeNode::Join { left, right });
        self.nodes.len() - 1
    }

    /// Finishes the tree with `root` as its root, validating structure.
    pub fn build(self, root: NodeId) -> Result<JoinTree> {
        let tree = JoinTree {
            nodes: self.nodes,
            root,
        };
        tree.validate()?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `((R0 ⋈ R1) ⋈ (R2 ⋈ R3))`
    fn bushy4() -> JoinTree {
        let mut b = JoinTree::builder();
        let r0 = b.leaf("R0");
        let r1 = b.leaf("R1");
        let r2 = b.leaf("R2");
        let r3 = b.leaf("R3");
        let j01 = b.join(r0, r1);
        let j23 = b.join(r2, r3);
        let root = b.join(j01, j23);
        b.build(root).unwrap()
    }

    #[test]
    fn counts_and_depth() {
        let t = bushy4();
        assert_eq!(t.join_count(), 3);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.right_spine_len(), 2);
    }

    #[test]
    fn traversals() {
        let t = bushy4();
        assert_eq!(t.leaves_in_order(), vec!["R0", "R1", "R2", "R3"]);
        let joins = t.joins_bottom_up();
        assert_eq!(joins.len(), 3);
        // Children before parents.
        let root = t.root();
        assert_eq!(*joins.last().unwrap(), root);
    }

    #[test]
    fn parents_map() {
        let t = bushy4();
        let parents = t.parents();
        assert_eq!(parents[t.root()], None);
        let (l, r) = t.children(t.root()).unwrap();
        assert_eq!(parents[l], Some(t.root()));
        assert_eq!(parents[r], Some(t.root()));
    }

    #[test]
    fn single_leaf_tree() {
        let t = JoinTree::single("R");
        assert!(t.validate().is_ok());
        assert_eq!(t.join_count(), 0);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn validate_rejects_bad_structures() {
        // Dangling node: two leaves but root only reaches one.
        let mut b = JoinTree::builder();
        let _r0 = b.leaf("R0");
        let r1 = b.leaf("R1");
        assert!(b.build(r1).is_err());

        // Repeated child.
        let tree = JoinTree {
            nodes: vec![
                TreeNode::Leaf {
                    relation: "R".into(),
                },
                TreeNode::Join { left: 0, right: 0 },
            ],
            root: 1,
        };
        assert!(tree.validate().is_err());

        // Child after parent.
        let tree = JoinTree {
            nodes: vec![
                TreeNode::Join { left: 1, right: 2 },
                TreeNode::Leaf {
                    relation: "A".into(),
                },
                TreeNode::Leaf {
                    relation: "B".into(),
                },
            ],
            root: 0,
        };
        assert!(tree.validate().is_err());
    }

    #[test]
    fn node_lookup() {
        let t = bushy4();
        assert!(t.node(0).is_ok());
        assert!(t.node(99).is_err());
        assert!(t.is_leaf(0));
        assert!(!t.is_leaf(t.root()));
        assert_eq!(t.children(0), None);
    }

    #[test]
    fn serde_round_trip() {
        let t = bushy4();
        let json = serde_json::to_string(&t).unwrap();
        let back: JoinTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert!(back.validate().is_ok());
    }
}
