//! Cardinality models: how many tuples each node of a join tree produces.
//!
//! The paper's regular query is engineered so that "the result of each
//! operation again is a Wisconsin relation equal in size to the operands"
//! (§4.1); [`UniformOneToOne`] encodes exactly that. [`SelectivityModel`]
//! generalizes to arbitrary per-join selectivities for the optimizer tests
//! and the examples.

use std::collections::HashMap;

use crate::tree::{JoinTree, TreeNode};

/// Estimates cardinalities bottom-up over a join tree.
pub trait CardModel {
    /// Cardinality of a base relation.
    fn leaf_card(&self, relation: &str) -> u64;
    /// Cardinality of a join given its operand cardinalities.
    fn join_card(&self, left: u64, right: u64) -> u64;
}

/// The regular Wisconsin query: every relation has `n` tuples, every join
/// is a perfect 1-to-1 match, every intermediate has `n` tuples.
#[derive(Clone, Copy, Debug)]
pub struct UniformOneToOne {
    /// Tuples per relation.
    pub n: u64,
}

impl CardModel for UniformOneToOne {
    fn leaf_card(&self, _relation: &str) -> u64 {
        self.n
    }

    fn join_card(&self, left: u64, right: u64) -> u64 {
        left.min(right)
    }
}

/// Independent-selectivity model: `|L ⋈ R| = |L| · |R| · selectivity`.
#[derive(Clone, Debug)]
pub struct SelectivityModel {
    /// Base-relation cardinalities by name.
    pub cards: HashMap<String, u64>,
    /// Cardinality assumed for relations missing from `cards`.
    pub default_card: u64,
    /// Selectivity applied to every join.
    pub selectivity: f64,
}

impl CardModel for SelectivityModel {
    fn leaf_card(&self, relation: &str) -> u64 {
        self.cards
            .get(relation)
            .copied()
            .unwrap_or(self.default_card)
    }

    fn join_card(&self, left: u64, right: u64) -> u64 {
        let est = left as f64 * right as f64 * self.selectivity;
        est.round().max(0.0) as u64
    }
}

/// Computes the cardinality of every node, indexed by [`crate::tree::NodeId`].
pub fn node_cards(tree: &JoinTree, model: &dyn CardModel) -> Vec<u64> {
    let mut cards = vec![0u64; tree.nodes().len()];
    // Node ids are a bottom-up order (children before parents).
    for (id, node) in tree.nodes().iter().enumerate() {
        cards[id] = match node {
            TreeNode::Leaf { relation } => model.leaf_card(relation),
            TreeNode::Join { left, right } => model.join_card(cards[*left], cards[*right]),
        };
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{build, Shape};

    #[test]
    fn uniform_model_keeps_everything_at_n() {
        for shape in Shape::ALL {
            let t = build(shape, 10).unwrap();
            let cards = node_cards(&t, &UniformOneToOne { n: 5000 });
            assert!(cards.iter().all(|&c| c == 5000), "{shape}: {cards:?}");
        }
    }

    #[test]
    fn selectivity_model_compounds() {
        let t = build(Shape::RightLinear, 3).unwrap();
        let model = SelectivityModel {
            cards: HashMap::from([("R0".to_string(), 100), ("R1".to_string(), 200)]),
            default_card: 50,
            selectivity: 0.01,
        };
        let cards = node_cards(&t, &model);
        // Bottom join: R1 (200) x R2 (50, default) * 0.01 = 100.
        // Root: R0 (100) x 100 * 0.01 = 100.
        assert_eq!(cards[t.root()], 100);
    }

    #[test]
    fn zero_selectivity_zeroes_results() {
        let t = build(Shape::WideBushy, 4).unwrap();
        let model = SelectivityModel {
            cards: HashMap::new(),
            default_card: 10,
            selectivity: 0.0,
        };
        let cards = node_cards(&t, &model);
        assert_eq!(cards[t.root()], 0);
    }
}
