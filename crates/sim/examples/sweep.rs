//! Developer sweep: prints the Fig. 9–13 response-time grid for quick
//! calibration checks. The official regenerator lives in `mj-bench`.

use mj_core::strategy::Strategy;
use mj_plan::shapes::Shape;
use mj_sim::{run_scenario, Scenario, SimParams};

fn main() {
    let params = SimParams::default();
    for (tuples, procs) in [
        (5_000u64, vec![20usize, 30, 40, 50, 60, 70, 80]),
        (40_000u64, vec![30usize, 40, 50, 60, 70, 80]),
    ] {
        let procs = &procs;
        for shape in Shape::ALL {
            println!("\n== {} {}K ==", shape, tuples / 1000);
            print!("{:>6}", "procs");
            for s in Strategy::ALL {
                print!("{:>8}", s.label());
            }
            println!();
            for &p in procs {
                print!("{p:>6}");
                for strategy in Strategy::ALL {
                    let sc = Scenario::paper(shape, strategy, tuples, p);
                    let r = run_scenario(&sc, &params).unwrap();
                    print!("{:>8.2}", r.response_time);
                }
                println!();
            }
        }
    }
}
