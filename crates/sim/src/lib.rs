//! Discrete-event simulator of a PRISMA/DB-style shared-nothing
//! main-memory multiprocessor.
//!
//! The paper ran on a 100-node 68020 machine; this crate substitutes a
//! calibrated simulator so the 20–80-processor experiments (Figs. 9–14)
//! can be regenerated anywhere. The simulator models *exactly* the four
//! overhead sources the paper analyses (§3.5) and nothing else:
//!
//! 1. **startup** — a single scheduler initializes every operation process
//!    serially ([`params::SimParams::t_init`] each);
//! 2. **coordination** — each redistribution opens `n×m` tuple streams,
//!    each requiring a handshake ([`params::SimParams::t_handshake`]);
//! 3. **discretization** — integer processor allocation comes straight
//!    from the plan (`mj-core`), so load imbalance emerges naturally;
//! 4. **pipeline delay** — tuples flow in batches with per-tuple
//!    processing costs and per-batch latency; the pipelining join's
//!    early-emission behaviour follows the product form
//!    `emitted = out · (left_consumed/left) · (right_consumed/right)`,
//!    which reproduces the constant per-step delay of linear pipelines and
//!    the operand-proportional delay of bushy pipelines (\[WiA93\], §2.3.3).
//!
//! Absolute times are calibrated to PRISMA-era magnitudes (per-tuple
//! actions of ~0.25 ms ≈ a few thousand tuple-operations per second per
//! 68020 processor); the reproduction claims curve *shapes*, not absolute
//! seconds. See EXPERIMENTS.md for paper-vs-simulated numbers.

#![warn(missing_docs)]

pub mod engine;
pub mod gantt;
pub mod memory;
pub mod params;
pub mod report;
pub mod scenario;
pub mod skew;

pub use engine::{simulate, simulate_skewed};
pub use gantt::render_gantt;
pub use memory::peak_bytes_per_processor;
pub use params::SimParams;
pub use report::SimResult;
pub use scenario::{run_scenario, Scenario, ScenarioResult};
pub use skew::SkewModel;
