//! ASCII processor-utilization diagrams (regenerates Figs. 3, 4, 6, 7).
//!
//! The paper's diagrams plot time on the x-axis and the processors on the
//! y-axis; each cell shows the label of the join a processor is working on
//! at that moment, blank when idle ("holes in the execution lines").
//! We render the same picture from a simulation trace: an op's processors
//! are marked busy during its busy intervals.

use mj_core::plan_ir::ParallelPlan;

use crate::report::SimResult;

/// Renders a utilization diagram with the given number of time columns.
/// `label` maps a join node id to a single display character (e.g. the
/// paper's join labels 1/3/4/5); unlabeled joins use `#`.
pub fn render_gantt<F: Fn(usize) -> Option<char>>(
    plan: &ParallelPlan,
    result: &SimResult,
    columns: usize,
    label: F,
) -> String {
    let columns = columns.max(10);
    let t_end = result.response_time.max(1e-9);
    let dt = t_end / columns as f64;

    // cell[proc][col] = char
    let mut cells = vec![vec![' '; columns]; plan.processors];
    for span in &result.spans {
        let ch = label(span.join).unwrap_or('#');
        for &(a, b) in &span.busy {
            let c0 = ((a / dt).floor() as usize).min(columns - 1);
            let c1 = ((b / dt).ceil() as usize).clamp(c0 + 1, columns);
            for &p in &span.procs {
                if p < plan.processors {
                    for cell in &mut cells[p][c0..c1] {
                        *cell = ch;
                    }
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} on {} processors — response time {:.3}s (time → , {:.3}s/col)\n",
        plan.strategy, plan.processors, t_end, dt
    ));
    for p in (0..plan.processors).rev() {
        out.push_str(&format!("{p:>3} |"));
        out.extend(cells[p].iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::params::SimParams;
    use mj_core::example::{example_cards, example_tree, example_weights};
    use mj_core::generator::{generate, GeneratorInput};
    use mj_core::strategy::Strategy;
    use mj_plan::cost::TreeCosts;

    fn example_plan(strategy: Strategy) -> mj_core::plan_ir::ParallelPlan {
        let (tree, _) = example_tree();
        let weights = example_weights();
        let mut per_join = vec![0.0; tree.nodes().len()];
        let mut total = 0.0;
        for (id, w) in &weights {
            per_join[*id] = *w;
            total += *w;
        }
        let costs = TreeCosts { per_join, total };
        let cards = example_cards(1000);
        let input = GeneratorInput::new(&tree, &cards, &costs, 10);
        generate(strategy, &input).unwrap()
    }

    #[test]
    fn renders_example_diagrams_for_all_strategies() {
        let (_, joins) = example_tree();
        for strategy in Strategy::ALL {
            let plan = example_plan(strategy);
            let result = simulate(&plan, &SimParams::idealized()).unwrap();
            let s = render_gantt(&plan, &result, 60, |j| {
                joins.label(j).map(|l| char::from_digit(l, 10).unwrap())
            });
            assert_eq!(s.lines().count(), 11, "{strategy}: 10 procs + header");
            for ch in ['1', '3', '4', '5'] {
                assert!(s.contains(ch), "{strategy} diagram misses join {ch}:\n{s}");
            }
        }
    }

    #[test]
    fn sp_diagram_is_sequential_blocks() {
        let (_, joins) = example_tree();
        let plan = example_plan(Strategy::SP);
        let result = simulate(&plan, &SimParams::idealized()).unwrap();
        let s = render_gantt(&plan, &result, 60, |j| {
            joins.label(j).map(|l| char::from_digit(l, 10).unwrap())
        });
        // In SP every row (processor) shows the same sequence; the first
        // data row must contain all four labels.
        let row = s.lines().nth(1).unwrap();
        for ch in ['4', '3', '5', '1'] {
            assert!(row.contains(ch), "row: {row}");
        }
        // And join 4 appears before join 1 in time.
        assert!(row.find('4').unwrap() < row.find('1').unwrap());
    }

    #[test]
    fn fp_diagram_shows_concurrent_rows() {
        let (_, joins) = example_tree();
        let plan = example_plan(Strategy::FP);
        let result = simulate(&plan, &SimParams::idealized()).unwrap();
        let s = render_gantt(&plan, &result, 60, |j| {
            joins.label(j).map(|l| char::from_digit(l, 10).unwrap())
        });
        // Different processors work on different joins from the start:
        // the first column (after the row prefix) across rows must contain
        // more than one distinct label.
        let mut first_col = std::collections::HashSet::new();
        for line in s.lines().skip(1) {
            if let Some(c) = line.chars().nth(6) {
                if c != ' ' && c != '|' {
                    first_col.insert(c);
                }
            }
        }
        assert!(
            first_col.len() > 1,
            "expected concurrent joins, got {first_col:?}\n{s}"
        );
    }
}
