//! Hash-table memory accounting (the §5 RD-vs-FP memory argument:
//! "RD uses less memory than FP because only one hash-table needs to be
//! built").

use mj_core::plan_ir::ParallelPlan;
use mj_relalg::JoinAlgorithm;

use crate::params::SimParams;
use crate::report::SimResult;

/// Peak hash-table bytes resident on any single processor, estimated from
/// the plan and the simulated op lifetimes. A simple join holds one table
/// (its left operand); a pipelining join holds two (both operands). Tables
/// are counted at full size for the whole op lifetime — a deliberate upper
/// bound that preserves the RD < FP ordering the paper argues.
pub fn peak_bytes_per_processor(
    plan: &ParallelPlan,
    result: &SimResult,
    params: &SimParams,
) -> f64 {
    // Per-processor sweep over op lifetimes.
    let mut events: Vec<(usize, f64, f64, f64)> = Vec::new(); // (proc, start, end, bytes)
    for (op, span) in plan.ops.iter().zip(&result.spans) {
        let table_tuples = match op.algorithm {
            JoinAlgorithm::Simple => op.est_left as f64,
            JoinAlgorithm::Pipelining => (op.est_left + op.est_right) as f64,
        };
        let per_proc = table_tuples * params.bytes_per_tuple / op.degree() as f64;
        for &p in &op.procs {
            events.push((p, span.start, span.complete, per_proc));
        }
    }

    let mut peak = 0.0f64;
    for p in 0..plan.processors {
        // Sweep this processor's intervals.
        let mut points: Vec<(f64, f64)> = Vec::new(); // (time, delta)
        for &(proc, s, e, b) in &events {
            if proc == p {
                points.push((s, b));
                points.push((e, -b));
            }
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut live = 0.0f64;
        for (_, delta) in points {
            live += delta;
            peak = peak.max(live);
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::scenario::{build_plan, Scenario};
    use mj_core::strategy::Strategy;
    use mj_plan::shapes::Shape;

    fn peak(strategy: Strategy) -> f64 {
        let s = Scenario::paper(Shape::RightBushy, strategy, 5000, 40);
        let plan = build_plan(&s).unwrap();
        let params = SimParams::default();
        let sim = simulate(&plan, &params).unwrap();
        peak_bytes_per_processor(&plan, &sim, &params)
    }

    #[test]
    fn fp_needs_more_table_memory_than_rd() {
        let rd = peak(Strategy::RD);
        let fp = peak(Strategy::FP);
        assert!(
            fp > 1.3 * rd,
            "FP ({fp:.0} B) should clearly exceed RD ({rd:.0} B) peak memory"
        );
    }

    #[test]
    fn memory_is_positive_and_bounded() {
        let p = peak(Strategy::SP);
        // SP: one 5000-tuple table spread over 40 procs at a time.
        let upper = 9.0 * 5000.0 * 208.0; // everything at once, one proc
        assert!(p > 0.0 && p < upper);
    }
}
