//! End-to-end experiment scenarios: the paper's §4 setup as one call.
//!
//! A [`Scenario`] is one cell of the experiment grid: (query shape,
//! strategy, relation size, processor count) for the regular 10-relation
//! Wisconsin query. [`run_scenario`] performs phase-1 costing, phase-2
//! plan generation, and simulation.

use serde::{Deserialize, Serialize};

use mj_core::generator::{generate, GeneratorInput};
use mj_core::plan_ir::{ParallelPlan, PlanStats};
use mj_core::strategy::Strategy;
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::shapes::{self, Shape};
use mj_relalg::Result;

use crate::engine::simulate;
use crate::params::SimParams;
use crate::report::SimResult;

/// One experiment cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Query-tree shape (Fig. 8).
    pub shape: Shape,
    /// Parallelization strategy.
    pub strategy: Strategy,
    /// Number of relations in the chain (the paper uses 10).
    pub relations: usize,
    /// Tuples per relation (5 000 or 40 000 in the paper).
    pub tuples: u64,
    /// Processors (20–80 in the paper).
    pub processors: usize,
}

impl Scenario {
    /// The paper's configuration: 10 relations.
    pub fn paper(shape: Shape, strategy: Strategy, tuples: u64, processors: usize) -> Self {
        Scenario {
            shape,
            strategy,
            relations: 10,
            tuples,
            processors,
        }
    }
}

/// Everything produced by one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Simulated response time in seconds.
    pub response_time: f64,
    /// The generated plan's overhead statistics.
    pub plan_stats: PlanStats,
    /// The generated plan (for inspection / Gantt rendering).
    pub plan: ParallelPlan,
    /// Raw simulation output.
    pub sim: SimResult,
}

/// Builds the plan for a scenario without simulating it.
pub fn build_plan(scenario: &Scenario) -> Result<ParallelPlan> {
    let tree = shapes::build(scenario.shape, scenario.relations)?;
    let cards = node_cards(&tree, &UniformOneToOne { n: scenario.tuples });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let input = GeneratorInput::new(&tree, &cards, &costs, scenario.processors);
    generate(scenario.strategy, &input)
}

/// Runs one scenario under the given machine parameters.
pub fn run_scenario(scenario: &Scenario, params: &SimParams) -> Result<ScenarioResult> {
    let plan = build_plan(scenario)?;
    let sim = simulate(&plan, params)?;
    Ok(ScenarioResult {
        scenario: *scenario,
        response_time: sim.response_time,
        plan_stats: plan.stats(),
        plan,
        sim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_runs() {
        let s = Scenario::paper(Shape::WideBushy, Strategy::SE, 5000, 40);
        let r = run_scenario(&s, &SimParams::default()).unwrap();
        assert!(r.response_time > 0.0);
        assert_eq!(r.plan.ops.len(), 9);
        assert_eq!(r.sim.spans.len(), 9);
    }

    #[test]
    fn plan_stats_surface_overhead_drivers() {
        let sp = Scenario::paper(Shape::LeftLinear, Strategy::SP, 5000, 80);
        let fp = Scenario::paper(Shape::LeftLinear, Strategy::FP, 5000, 80);
        let rp = run_scenario(&sp, &SimParams::default()).unwrap();
        let rf = run_scenario(&fp, &SimParams::default()).unwrap();
        // §3.5: "the startup overhead is large for SP and small for FP".
        assert!(rp.plan_stats.operation_processes > 5 * rf.plan_stats.operation_processes);
        // "Because SP uses the most processors per operation, SP suffers
        // most from coordination overhead."
        assert!(rp.plan_stats.tuple_streams > rf.plan_stats.tuple_streams);
    }

    #[test]
    fn invalid_scenarios_error() {
        let s = Scenario {
            shape: Shape::WideBushy,
            strategy: Strategy::FP,
            relations: 1,
            tuples: 10,
            processors: 4,
        };
        assert!(run_scenario(&s, &SimParams::default()).is_err());
        let s = Scenario::paper(Shape::WideBushy, Strategy::FP, 10, 0);
        assert!(run_scenario(&s, &SimParams::default()).is_err());
    }
}
