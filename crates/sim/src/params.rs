//! Simulation parameters and calibration presets.

use serde::{Deserialize, Serialize};

/// Machine and protocol constants, all in seconds (per tuple / per stream /
/// per process, as noted).
///
/// The defaults are calibrated so the simulated response times land in the
/// paper's 2–80 s range for the 5K/40K experiments: one "action on a
/// tuple" (§4.3's cost unit: hash, probe, create) costs 0.4 ms — about
/// 2 500 tuple-actions per second per processor, a PRISMA-era (68020,
/// interpreted XRA) figure.
///
/// Tuple *transport* is priced by how it moves. A **live stream** between
/// concurrently running operations pays per-tuple message passing and flow
/// control at both endpoints (PRISMA shipped pipelined tuples in small
/// flow-controlled packets; \[WiA93\] measured the resulting per-step
/// pipeline costs). A **bulk transfer** of a materialized intermediate
/// (between sequentially scheduled operations, as in SP/SE and between RD
/// segments) moves whole fragments and is several times cheaper per
/// tuple. This asymmetry is what makes deep probe pipelines pay for their
/// earliness — the RD/FP versus SE trade-off of §3.5 and §4.4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Hash + insert one tuple into a join table.
    pub t_hash: f64,
    /// Probe the other operand's table with one tuple.
    pub t_probe: f64,
    /// Construct one result tuple.
    pub t_result: f64,
    /// Send one tuple on a live (pipelined) stream.
    pub t_send_stream: f64,
    /// Receive one tuple from a live (pipelined) stream.
    pub t_recv_stream: f64,
    /// Send one tuple of a bulk (materialized) fragment transfer.
    pub t_send_bulk: f64,
    /// Receive one tuple of a bulk (materialized) fragment transfer.
    pub t_recv_bulk: f64,
    /// Scheduler time to initialize one operation process. Initializations
    /// are strictly serial — the scheduler is a single process (§2.2), the
    /// root cause of SP's startup overhead at scale.
    pub t_init: f64,
    /// Handshake per point-to-point tuple stream ("for each tuple stream
    /// the sender and receiver have to shake hands", §3.5), charged to
    /// each endpoint instance per stream it participates in.
    pub t_handshake: f64,
    /// Network latency per batch hop — the constant part of the per-step
    /// pipeline delay of \[WiA93\] (packet forming, flow control,
    /// communication-processor turnaround).
    pub net_latency: f64,
    /// Per-tuple work of the symmetric pipelining hash-join relative to
    /// the simple hash-join's single action per tuple. The pipelining join
    /// inserts *and* probes every incoming tuple (§2.3.2), but the probe
    /// hits a partially built table, so the factor sits between 1 (insert
    /// only) and 2 (insert plus full-table probe).
    pub pipelining_work_factor: f64,
    /// Tuples one operation process consumes per scheduling quantum; the
    /// event granularity of the simulation (smaller = finer pipelining).
    pub batch: f64,
    /// Nominal tuple size for memory accounting (the Wisconsin 208 bytes).
    pub bytes_per_tuple: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            t_hash: 0.45e-3,
            t_probe: 0.45e-3,
            t_result: 0.45e-3,
            t_send_stream: 1.2e-3,
            t_recv_stream: 1.2e-3,
            t_send_bulk: 0.5e-3,
            t_recv_bulk: 0.5e-3,
            t_init: 12e-3,
            t_handshake: 15e-3,
            net_latency: 0.5,
            pipelining_work_factor: 1.4,
            batch: 16.0,
            bytes_per_tuple: 208.0,
        }
    }
}

impl SimParams {
    /// All overheads zeroed: only per-tuple work remains, with uniform
    /// costs. Used to regenerate the paper's *idealized* processor
    /// utilization diagrams (Figs. 3, 4, 6, 7), which "do not take into
    /// account overhead incurred by the parallel execution".
    pub fn idealized() -> Self {
        SimParams {
            t_init: 0.0,
            t_handshake: 0.0,
            net_latency: 0.0,
            t_send_stream: 0.0,
            t_recv_stream: 0.0,
            t_send_bulk: 0.0,
            t_recv_bulk: 0.0,
            // Uniform per-tuple work so operation duration is proportional
            // to (weight / degree) exactly as the figures assume.
            t_hash: 1e-3,
            t_probe: 1e-3,
            t_result: 0.0,
            pipelining_work_factor: 1.0,
            batch: 4.0,
            bytes_per_tuple: 208.0,
        }
    }

    /// Validates that all parameters are finite and non-negative and the
    /// batch is positive.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("t_hash", self.t_hash),
            ("t_probe", self.t_probe),
            ("t_result", self.t_result),
            ("t_send_stream", self.t_send_stream),
            ("t_recv_stream", self.t_recv_stream),
            ("t_send_bulk", self.t_send_bulk),
            ("t_recv_bulk", self.t_recv_bulk),
            ("t_init", self.t_init),
            ("t_handshake", self.t_handshake),
            ("net_latency", self.net_latency),
            ("bytes_per_tuple", self.bytes_per_tuple),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if !(self.batch.is_finite() && self.batch >= 1.0) {
            return Err(format!("batch must be >= 1, got {}", self.batch));
        }
        if !(self.pipelining_work_factor.is_finite() && self.pipelining_work_factor >= 1.0) {
            return Err(format!(
                "pipelining_work_factor must be >= 1, got {}",
                self.pipelining_work_factor
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimParams::default().validate().unwrap();
        SimParams::idealized().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_values() {
        let p = SimParams {
            t_init: -1.0,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
        let p = SimParams {
            batch: 0.0,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
        let p = SimParams {
            t_hash: f64::NAN,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn idealized_has_no_overheads() {
        let p = SimParams::idealized();
        assert_eq!(p.t_init, 0.0);
        assert_eq!(p.t_handshake, 0.0);
        assert_eq!(p.net_latency, 0.0);
    }

    #[test]
    fn streams_cost_more_than_bulk_by_default() {
        // The live-stream premium over bulk transfer is the modeled
        // mechanism behind the SE-vs-pipelining trade-off; losing it would
        // silently flatten Figs. 11-13.
        let p = SimParams::default();
        assert!(p.t_send_stream > p.t_send_bulk);
        assert!(p.t_recv_stream > p.t_recv_bulk);
    }
}
