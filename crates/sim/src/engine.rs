//! The discrete-event engine.
//!
//! Operations are simulated at *batch* granularity under a fluid-tuple
//! model: the workload is uniform (§4.1) and hash partitioning spreads
//! tuples evenly, so the instances of one operation are statistically
//! identical and an operation behaves as one server of capacity
//! `degree / per-tuple-cost`. Event types:
//!
//! * `Ready`   — dependencies satisfied; the op queues at the (serial)
//!   scheduler for initialization of its `degree` operation processes;
//! * `Start`   — initialization and stream handshakes done; local (base /
//!   materialized) operands become readable;
//! * `Arrive`  — a batch of tuples lands on one input;
//! * `BatchDone` — the op finishes a processing quantum, emitting results
//!   downstream.
//!
//! Emission follows the product form `out · (a/A) · (b/B)` (an exact
//! differential, so the total is independent of consumption interleaving):
//! a simple hash join emits nothing while building (a < A ⇒ its probe side
//! b = 0) and linearly while probing; the pipelining join emits as soon as
//! both sides have progress — reproducing §2.3.2/§2.3.3 timing behaviour.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mj_core::plan_ir::{OperandSource, ParallelPlan};
use mj_core::validate::validate_plan;
use mj_relalg::{JoinAlgorithm, RelalgError, Result};

use crate::params::SimParams;
use crate::report::{OpSpan, SimResult};

const EPS: f64 = 1e-6;

#[derive(Clone, Copy, Debug)]
enum EventKind {
    Ready,
    Start,
    Arrive { side: usize, count: f64 },
    BatchDone { side: usize, count: f64, emit: f64 },
}

struct Event {
    time: f64,
    seq: u64,
    op: usize,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct OpState {
    degree: f64,
    algorithm: JoinAlgorithm,
    expected: [f64; 2],
    consume_cost: [f64; 2],
    emit_cost: f64,
    est_out: f64,

    deps_remaining: usize,
    started: bool,
    ready_time: f64,
    start_time: f64,
    arrived: [f64; 2],
    consumed: [f64; 2],
    emitted: f64,
    delivered: f64,
    busy: bool,
    completed: bool,
    complete_time: f64,

    /// Ops waiting on this op via `start_after`.
    dependents: Vec<usize>,
    /// `(consumer, side, live)`: live=true streams batches as produced;
    /// live=false (materialized) delivers wholesale at the consumer's
    /// start.
    out_edges: Vec<(usize, usize, bool)>,
    busy_intervals: Vec<(f64, f64)>,
}

struct Sim<'a> {
    params: &'a SimParams,
    ops: Vec<OpState>,
    heap: BinaryHeap<Event>,
    seq: u64,
    scheduler_free: f64,
    /// Extra start delay per op from stream handshakes.
    handshake_delay: Vec<f64>,
}

impl<'a> Sim<'a> {
    fn push(&mut self, time: f64, op: usize, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event {
            time,
            seq: self.seq,
            op,
            kind,
        });
    }

    fn try_work(&mut self, id: usize, t: f64) {
        let op = &self.ops[id];
        if !op.started || op.busy || op.completed {
            return;
        }
        let Some(side) = self.choose_side(id) else {
            return;
        };
        let op = &self.ops[id];
        let available = op.arrived[side] - op.consumed[side];
        let quantum = self.params.batch * op.degree;
        let q = available
            .min(quantum)
            .min(op.expected[side] - op.consumed[side]);
        if q <= EPS {
            return;
        }
        let frac_other = {
            let other = 1 - side;
            if op.expected[other] <= EPS {
                1.0
            } else {
                (op.consumed[other] / op.expected[other]).min(1.0)
            }
        };
        let emit = if op.expected[side] <= EPS {
            0.0
        } else {
            op.est_out * (q / op.expected[side]) * frac_other
        };
        let dur = (q * op.consume_cost[side] + emit * op.emit_cost) / op.degree;
        let op = &mut self.ops[id];
        op.busy = true;
        op.busy_intervals.push((t, t + dur));
        self.push(
            t + dur,
            id,
            EventKind::BatchDone {
                side,
                count: q,
                emit,
            },
        );
    }

    fn choose_side(&self, id: usize) -> Option<usize> {
        let op = &self.ops[id];
        let avail = |s: usize| {
            op.consumed[s] < op.expected[s] - EPS && op.arrived[s] - op.consumed[s] > EPS
        };
        match op.algorithm {
            JoinAlgorithm::Simple => {
                // Build (left) strictly before probe (right).
                if op.consumed[0] < op.expected[0] - EPS {
                    if avail(0) {
                        Some(0)
                    } else {
                        None
                    }
                } else if avail(1) {
                    Some(1)
                } else {
                    None
                }
            }
            JoinAlgorithm::Pipelining => {
                // Consume the side that is furthest behind (balances the
                // two-sided pipeline).
                match (avail(0), avail(1)) {
                    (false, false) => None,
                    (true, false) => Some(0),
                    (false, true) => Some(1),
                    (true, true) => {
                        let f0 = op.consumed[0] / op.expected[0].max(EPS);
                        let f1 = op.consumed[1] / op.expected[1].max(EPS);
                        Some(if f0 <= f1 { 0 } else { 1 })
                    }
                }
            }
        }
    }

    fn deliver(&mut self, from: usize, amount: f64, t: f64) {
        if amount <= EPS {
            return;
        }
        self.ops[from].delivered += amount;
        let edges = self.ops[from].out_edges.clone();
        for (consumer, side, live) in edges {
            if live {
                self.push(
                    t + self.params.net_latency,
                    consumer,
                    EventKind::Arrive {
                        side,
                        count: amount,
                    },
                );
            }
            // Materialized edges deliver at the consumer's Start instead.
        }
    }

    fn complete(&mut self, id: usize, t: f64) {
        let remainder = self.ops[id].est_out - self.ops[id].delivered;
        self.deliver(id, remainder, t);
        let op = &mut self.ops[id];
        op.completed = true;
        op.complete_time = t;
        op.emitted = op.est_out;
        let dependents = op.dependents.clone();
        for d in dependents {
            self.ops[d].deps_remaining -= 1;
            if self.ops[d].deps_remaining == 0 {
                self.push(t, d, EventKind::Ready);
            }
        }
    }
}

/// Simulates `plan` under `params`, returning the response time and
/// per-operation spans. The plan is validated first. Assumes the paper's
/// non-skewed partitioning premise (§3.5); see [`simulate_skewed`] to
/// drop it.
pub fn simulate(plan: &ParallelPlan, params: &SimParams) -> Result<SimResult> {
    simulate_skewed(plan, params, &crate::skew::SkewModel::uniform())
}

/// Simulates `plan` with hash-partition load imbalance from `skew`.
///
/// Every operation is slowed by the max-over-average fragment ratio of
/// hashing Zipf(θ) keys into `degree` buckets — the barrier semantics of
/// a parallel join (it finishes when its most loaded instance does).
/// With [`SkewModel::uniform`](crate::skew::SkewModel::uniform) this is
/// exactly [`simulate`].
pub fn simulate_skewed(
    plan: &ParallelPlan,
    params: &SimParams,
    skew: &crate::skew::SkewModel,
) -> Result<SimResult> {
    params.validate().map_err(RelalgError::InvalidPlan)?;
    validate_plan(plan)?;
    let mut balance = crate::skew::BalanceCache::new(skew);

    let n = plan.ops.len();
    // Whether an op's output is consumed as a live stream (pipelined) or
    // as a bulk fragment transfer (materialized / final result): live
    // streams pay the per-tuple messaging premium at both endpoints.
    let mut out_live = vec![false; n];
    for op in &plan.ops {
        for operand in [&op.left, &op.right] {
            if let OperandSource::Stream { from } = operand {
                out_live[*from] = true;
            }
        }
    }
    let mut ops = Vec::with_capacity(n);
    let mut handshake_delay = vec![0.0f64; n];
    for op in &plan.ops {
        let mut consume_cost = [0.0f64; 2];
        for (i, (operand, base_cost)) in [(&op.left, params.t_hash), (&op.right, params.t_probe)]
            .iter()
            .enumerate()
        {
            // The symmetric pipelining join hashes *and* probes every
            // incoming tuple (§2.3.2): earliness costs work as well as
            // memory. The simple join performs one action per tuple
            // (insert while building, probe while probing); the pipelining
            // join pays `pipelining_work_factor` actions (its extra probe
            // hits a partially built table).
            let per_tuple = match op.algorithm {
                JoinAlgorithm::Simple => *base_cost,
                JoinAlgorithm::Pipelining => {
                    params.pipelining_work_factor * 0.5 * (params.t_hash + params.t_probe)
                }
            };
            let recv = match operand {
                OperandSource::Stream { .. } => params.t_recv_stream,
                OperandSource::Materialized { .. } => params.t_recv_bulk,
                OperandSource::Base { .. } => 0.0,
            };
            consume_cost[i] = per_tuple + recv;
        }
        let send = if out_live[op.id] {
            params.t_send_stream
        } else {
            params.t_send_bulk
        };
        // Handshakes: the consumer shakes hands with every producer
        // instance of each remote operand; a live producer additionally
        // shakes hands with every consumer instance of its output stream
        // (charged at the producer's start, below).
        for operand in [&op.left, &op.right] {
            if let Some(p) = operand.producer() {
                let pd = plan.ops[p].degree() as f64;
                let extra = match operand {
                    OperandSource::Stream { .. } => pd,
                    // Materialized re-senders are gone; their side of the
                    // handshake is charged to the consumer as well.
                    OperandSource::Materialized { .. } => pd + op.degree() as f64,
                    OperandSource::Base { .. } => unreachable!(),
                };
                handshake_delay[op.id] += extra * params.t_handshake;
            }
        }
        ops.push(OpState {
            // Effective capacity under load imbalance: the op finishes
            // when its most loaded instance does, i.e. it behaves like a
            // balanced op with degree / (max fragment / avg fragment).
            degree: op.degree() as f64 / balance.factor(op.degree()),
            algorithm: op.algorithm,
            expected: [op.est_left as f64, op.est_right as f64],
            consume_cost,
            emit_cost: params.t_result + send,
            est_out: op.est_out as f64,
            deps_remaining: op.start_after.len(),
            started: false,
            ready_time: f64::NAN,
            start_time: f64::NAN,
            arrived: [0.0; 2],
            consumed: [0.0; 2],
            emitted: 0.0,
            delivered: 0.0,
            busy: false,
            completed: false,
            complete_time: f64::NAN,
            dependents: Vec::new(),
            out_edges: Vec::new(),
            busy_intervals: Vec::new(),
        });
    }
    // Wire dependents and output edges; add producer-side handshakes.
    for op in &plan.ops {
        for &d in &op.start_after {
            ops[d].dependents.push(op.id);
        }
        for (side, operand) in [(0usize, &op.left), (1usize, &op.right)] {
            if let Some(p) = operand.producer() {
                let live = matches!(operand, OperandSource::Stream { .. });
                ops[p].out_edges.push((op.id, side, live));
                if live {
                    handshake_delay[p] += op.degree() as f64 * params.t_handshake;
                }
            }
        }
    }

    let mut sim = Sim {
        params,
        ops,
        heap: BinaryHeap::new(),
        seq: 0,
        scheduler_free: 0.0,
        handshake_delay,
    };

    for id in 0..n {
        if sim.ops[id].deps_remaining == 0 {
            sim.push(0.0, id, EventKind::Ready);
        }
    }

    let mut guard = 0u64;
    let guard_limit = 200_000_000u64;
    while let Some(Event {
        time: t,
        op: id,
        kind,
        ..
    }) = sim.heap.pop()
    {
        guard += 1;
        if guard > guard_limit {
            return Err(RelalgError::InvalidPlan(
                "simulation exceeded event budget".into(),
            ));
        }
        match kind {
            EventKind::Ready => {
                sim.ops[id].ready_time = t;
                // Serial scheduler initializes this op's processes.
                let init_start = sim.scheduler_free.max(t);
                let init_end = init_start + sim.ops[id].degree * sim.params.t_init;
                sim.scheduler_free = init_end;
                let start = init_end + sim.handshake_delay[id];
                sim.push(start, id, EventKind::Start);
            }
            EventKind::Start => {
                sim.ops[id].started = true;
                sim.ops[id].start_time = t;
                // Local operands (base fragments and materialized
                // intermediates) are fully readable at start.
                let (left, right) = (plan.ops[id].left.clone(), plan.ops[id].right.clone());
                for (side, operand) in [(0usize, &left), (1usize, &right)] {
                    match operand {
                        OperandSource::Base { .. } | OperandSource::Materialized { .. } => {
                            sim.ops[id].arrived[side] = sim.ops[id].expected[side];
                        }
                        OperandSource::Stream { .. } => {}
                    }
                }
                sim.try_work(id, t);
            }
            EventKind::Arrive { side, count } => {
                let op = &mut sim.ops[id];
                op.arrived[side] = (op.arrived[side] + count).min(op.expected[side]);
                sim.try_work(id, t);
            }
            EventKind::BatchDone { side, count, emit } => {
                {
                    let op = &mut sim.ops[id];
                    op.consumed[side] += count;
                    op.emitted += emit;
                    op.busy = false;
                }
                sim.deliver(id, emit, t);
                let op = &sim.ops[id];
                if op.consumed[0] >= op.expected[0] - EPS && op.consumed[1] >= op.expected[1] - EPS
                {
                    sim.complete(id, t);
                } else {
                    sim.try_work(id, t);
                }
            }
        }
    }

    // Every op must have completed; anything else is a wiring bug.
    if let Some(stuck) = sim.ops.iter().position(|o| !o.completed) {
        return Err(RelalgError::InvalidPlan(format!(
            "simulation deadlock: op {stuck} incomplete (arrived {:?}, consumed {:?}, expected {:?})",
            sim.ops[stuck].arrived, sim.ops[stuck].consumed, sim.ops[stuck].expected
        )));
    }

    let response_time = sim
        .ops
        .iter()
        .map(|o| o.complete_time)
        .fold(0.0f64, f64::max);
    let spans = sim
        .ops
        .iter()
        .enumerate()
        .map(|(id, o)| OpSpan {
            op: id,
            join: plan.ops[id].join,
            procs: plan.ops[id].procs.clone(),
            ready: o.ready_time,
            start: o.start_time,
            complete: o.complete_time,
            busy: o.busy_intervals.clone(),
        })
        .collect();
    Ok(SimResult {
        response_time,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_core::generator::{generate, GeneratorInput};
    use mj_core::strategy::Strategy;
    use mj_plan::cardinality::{node_cards, UniformOneToOne};
    use mj_plan::cost::{tree_costs, CostModel};
    use mj_plan::shapes::{build, Shape};

    fn simulate_case(
        shape: Shape,
        strategy: Strategy,
        n: u64,
        procs: usize,
        params: &SimParams,
    ) -> SimResult {
        let tree = build(shape, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, procs);
        let plan = generate(strategy, &input).unwrap();
        simulate(&plan, params).unwrap()
    }

    #[test]
    fn all_strategies_and_shapes_complete() {
        let params = SimParams::default();
        for shape in Shape::ALL {
            for strategy in Strategy::ALL {
                let r = simulate_case(shape, strategy, 1000, 20, &params);
                assert!(r.response_time.is_finite() && r.response_time > 0.0);
                assert_eq!(r.spans.len(), 9);
                for s in &r.spans {
                    assert!(s.complete >= s.start && s.start >= s.ready);
                }
            }
        }
    }

    #[test]
    fn sp_degrades_with_many_processors_on_small_problems() {
        // Fig. 9 (5K): SP gets *slower* from 20 to 80 processors because
        // startup + coordination dominate.
        let params = SimParams::default();
        let at20 = simulate_case(Shape::LeftLinear, Strategy::SP, 5000, 20, &params);
        let at80 = simulate_case(Shape::LeftLinear, Strategy::SP, 5000, 80, &params);
        assert!(
            at80.response_time > at20.response_time,
            "SP should degrade: 20p={} 80p={}",
            at20.response_time,
            at80.response_time
        );
    }

    #[test]
    fn fp_beats_sp_at_scale_on_linear_trees() {
        // Fig. 9: FP wins at high processor counts.
        let params = SimParams::default();
        let sp = simulate_case(Shape::LeftLinear, Strategy::SP, 5000, 80, &params);
        let fp = simulate_case(Shape::LeftLinear, Strategy::FP, 5000, 80, &params);
        assert!(fp.response_time < sp.response_time);
    }

    #[test]
    fn more_processors_help_fp() {
        let params = SimParams::default();
        let few = simulate_case(Shape::WideBushy, Strategy::FP, 40_000, 30, &params);
        let many = simulate_case(Shape::WideBushy, Strategy::FP, 40_000, 80, &params);
        assert!(many.response_time < few.response_time);
    }

    #[test]
    fn bigger_problems_take_longer() {
        let params = SimParams::default();
        let small = simulate_case(Shape::WideBushy, Strategy::FP, 5000, 40, &params);
        let large = simulate_case(Shape::WideBushy, Strategy::FP, 40_000, 40, &params);
        assert!(large.response_time > 3.0 * small.response_time);
    }

    #[test]
    fn rd_equals_fp_shape_on_right_linear() {
        // Fig. 13: RD coincides with FP for right-linear trees (same
        // dataflow; only the join algorithm differs, which the fluid model
        // prices identically for 1-1 joins).
        let params = SimParams::default();
        let rd = simulate_case(Shape::RightLinear, Strategy::RD, 5000, 40, &params);
        let fp = simulate_case(Shape::RightLinear, Strategy::FP, 5000, 40, &params);
        let ratio = rd.response_time / fp.response_time;
        assert!((0.7..1.3).contains(&ratio), "RD/FP = {ratio}");
    }

    #[test]
    fn se_equals_sp_on_linear_trees() {
        let params = SimParams::default();
        let se = simulate_case(Shape::LeftLinear, Strategy::SE, 5000, 40, &params);
        let sp = simulate_case(Shape::LeftLinear, Strategy::SP, 5000, 40, &params);
        let ratio = se.response_time / sp.response_time;
        assert!((0.99..1.01).contains(&ratio), "SE/SP = {ratio}");
    }

    #[test]
    fn zero_overhead_sim_is_pure_compute() {
        // With idealized params, SP response time equals total work spread
        // over all processors (perfect load balance, §3.1).
        let mut params = SimParams::idealized();
        params.t_result = 0.0;
        let r = simulate_case(Shape::LeftLinear, Strategy::SP, 1000, 10, &params);
        // Work: every tuple consumed costs t_hash/t_probe = 1 ms; operands
        // are 2 x 1000 tuples per join, 9 joins, over 10 processors.
        let expected = 9.0 * 2.0 * 1000.0 * 1e-3 / 10.0;
        let rel = (r.response_time - expected).abs() / expected;
        assert!(rel < 0.05, "got {}, expected ~{expected}", r.response_time);
    }

    #[test]
    fn deterministic() {
        let params = SimParams::default();
        let a = simulate_case(Shape::RightBushy, Strategy::RD, 5000, 40, &params);
        let b = simulate_case(Shape::RightBushy, Strategy::RD, 5000, 40, &params);
        assert_eq!(a.response_time, b.response_time);
    }

    fn simulate_skewed_case(
        strategy: Strategy,
        procs: usize,
        theta: f64,
        params: &SimParams,
    ) -> f64 {
        let tree = build(Shape::WideBushy, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 40_000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let input = GeneratorInput::new(&tree, &cards, &costs, procs);
        let plan = generate(strategy, &input).unwrap();
        let skew = crate::skew::SkewModel::zipf(theta, 40_000);
        simulate_skewed(&plan, params, &skew).unwrap().response_time
    }

    #[test]
    fn uniform_skew_equals_plain_simulation() {
        let params = SimParams::default();
        let tree = build(Shape::RightBushy, 10).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: 5_000 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let plan = generate(
            Strategy::FP,
            &GeneratorInput::new(&tree, &cards, &costs, 40),
        )
        .unwrap();
        let plain = simulate(&plan, &params).unwrap();
        let skewed = simulate_skewed(&plan, &params, &crate::skew::SkewModel::uniform()).unwrap();
        assert_eq!(plain.response_time, skewed.response_time);
    }

    #[test]
    fn skew_never_speeds_a_query_up() {
        let params = SimParams::default();
        for strategy in Strategy::ALL {
            let base = simulate_skewed_case(strategy, 80, 0.0, &params);
            let skewed = simulate_skewed_case(strategy, 80, 0.9, &params);
            assert!(
                skewed >= base - 1e-9,
                "{strategy}: skew sped things up ({base} -> {skewed})"
            );
        }
    }

    #[test]
    fn skew_slowdown_grows_with_theta() {
        let params = SimParams::default();
        let mild = simulate_skewed_case(Strategy::SP, 80, 0.3, &params);
        let heavy = simulate_skewed_case(Strategy::SP, 80, 1.2, &params);
        assert!(heavy > mild, "theta 1.2 ({heavy}) should beat 0.3 ({mild})");
    }

    #[test]
    fn sp_suffers_more_from_skew_than_fp() {
        // SP hashes every operand over all 80 processors; FP over ~9 per
        // join. Fewer, larger buckets are relatively better balanced, so
        // FP's slowdown factor must be smaller — the §3.5 premise matters
        // most for the strategies with the widest partitioning.
        let params = SimParams::default();
        let sp = simulate_skewed_case(Strategy::SP, 80, 0.9, &params)
            / simulate_skewed_case(Strategy::SP, 80, 0.0, &params);
        let fp = simulate_skewed_case(Strategy::FP, 80, 0.9, &params)
            / simulate_skewed_case(Strategy::FP, 80, 0.0, &params);
        assert!(
            sp > fp,
            "SP slowdown {sp:.3} should exceed FP slowdown {fp:.3}"
        );
    }
}
