//! Simulation results and derived metrics.

use serde::{Deserialize, Serialize};

use mj_core::plan_ir::ProcId;
use mj_plan::tree::NodeId;

/// Timing of one operation across the simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpSpan {
    /// Op id within the plan.
    pub op: usize,
    /// Join node the op evaluates.
    pub join: NodeId,
    /// Processors the op ran on.
    pub procs: Vec<ProcId>,
    /// When dependencies were satisfied (scheduler queue entry).
    pub ready: f64,
    /// When the op began processing (after init + handshakes).
    pub start: f64,
    /// When the op finished.
    pub complete: f64,
    /// Busy intervals (processing quanta).
    pub busy: Vec<(f64, f64)>,
}

impl OpSpan {
    /// Total busy seconds.
    pub fn busy_time(&self) -> f64 {
        self.busy.iter().map(|(a, b)| b - a).sum()
    }

    /// Fraction of the span `[start, complete]` the op was busy. 1.0 means
    /// never starved; below that, the op waited on its inputs (the "holes"
    /// of Fig. 6).
    pub fn busy_fraction(&self) -> f64 {
        let span = self.complete - self.start;
        if span <= 0.0 {
            return 1.0;
        }
        (self.busy_time() / span).min(1.0)
    }

    /// When the op first did useful work — `start` plus any initial wait
    /// for input. The difference `first_busy() - start` is the pipeline
    /// *fill delay* at this op (§2.3.3).
    pub fn first_busy(&self) -> f64 {
        self.busy.first().map(|(a, _)| *a).unwrap_or(self.complete)
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// Elapsed time from scheduling start to the last op's completion —
    /// the paper's response-time metric (§4.4).
    pub response_time: f64,
    /// Per-op spans.
    pub spans: Vec<OpSpan>,
}

impl SimResult {
    /// Sum of busy time across ops (proportional to work done).
    pub fn total_busy(&self) -> f64 {
        self.spans.iter().map(OpSpan::busy_time).sum()
    }

    /// Machine utilization: busy processor-seconds over
    /// `processors × response_time`.
    pub fn utilization(&self, processors: usize) -> f64 {
        if self.response_time <= 0.0 || processors == 0 {
            return 0.0;
        }
        let busy_proc_seconds: f64 = self
            .spans
            .iter()
            .map(|s| s.busy_time() * s.procs.len() as f64)
            .sum();
        busy_proc_seconds / (processors as f64 * self.response_time)
    }

    /// The span of the op evaluating `join`.
    pub fn span_for_join(&self, join: NodeId) -> Option<&OpSpan> {
        self.spans.iter().find(|s| s.join == join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(busy: Vec<(f64, f64)>, start: f64, complete: f64) -> OpSpan {
        OpSpan {
            op: 0,
            join: 0,
            procs: vec![0, 1],
            ready: 0.0,
            start,
            complete,
            busy,
        }
    }

    #[test]
    fn busy_metrics() {
        let s = span(vec![(0.0, 1.0), (2.0, 3.0)], 0.0, 4.0);
        assert_eq!(s.busy_time(), 2.0);
        assert_eq!(s.busy_fraction(), 0.5);
    }

    #[test]
    fn degenerate_span_is_fully_busy() {
        let s = span(vec![], 1.0, 1.0);
        assert_eq!(s.busy_fraction(), 1.0);
    }

    #[test]
    fn utilization_accounts_for_degree() {
        let r = SimResult {
            response_time: 2.0,
            spans: vec![span(vec![(0.0, 2.0)], 0.0, 2.0)],
        };
        // 2 procs busy 2s out of 4 procs x 2s.
        assert_eq!(r.utilization(4), 0.5);
        assert_eq!(r.utilization(0), 0.0);
    }

    #[test]
    fn span_lookup() {
        let r = SimResult {
            response_time: 1.0,
            spans: vec![span(vec![], 0.0, 1.0)],
        };
        assert!(r.span_for_join(0).is_some());
        assert!(r.span_for_join(5).is_none());
    }
}
