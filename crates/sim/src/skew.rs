//! Load-imbalance model: what skewed join keys do to the simulation.
//!
//! §3.5 derives the strategies' load balance "assuming non-skewed data
//! partitioning". This module drops that assumption: hash-partitioning
//! Zipf-distributed keys over an operation's instances makes one fragment
//! larger than the average, and under the barrier semantics of a parallel
//! join (the operation finishes when its slowest instance does) the whole
//! operation slows down by the max-over-average fragment ratio.
//!
//! The interesting consequence is *differential*: the imbalance ratio
//! grows with the number of buckets, so SP — which partitions every
//! operation over all processors — suffers more than FP, which gives each
//! join a small private set. [`crate::simulate_skewed`] applies the model
//! per operation; the `ablation-skew` experiment in the `repro` binary
//! reports the end-to-end effect per strategy.

use std::collections::HashMap;

use mj_relalg::hash::bucket_of;
use mj_storage::skew::zipf_keys;

/// Expected hash-partition imbalance under Zipf(θ)-distributed join keys.
///
/// `balance_factor(m)` estimates E[max fragment / average fragment] when
/// `tuples` keys drawn Zipf(θ) from a same-sized domain are hashed into
/// `m` buckets, by deterministic seeded sampling. θ = 0 is the paper's
/// uniform premise (factor 1 up to sampling noise).
#[derive(Clone, Debug)]
pub struct SkewModel {
    /// Zipf exponent; 0 = uniform keys.
    pub theta: f64,
    /// Tuples per operand (sample size for the estimate).
    pub tuples: u64,
    /// Seed for the deterministic sample.
    pub seed: u64,
}

impl SkewModel {
    /// The paper's premise: perfectly uniform keys, factor 1 everywhere.
    pub fn uniform() -> Self {
        SkewModel {
            theta: 0.0,
            tuples: 0,
            seed: 0,
        }
    }

    /// A Zipf(θ) workload of `tuples` keys per operand.
    pub fn zipf(theta: f64, tuples: u64) -> Self {
        SkewModel {
            theta,
            tuples,
            seed: 0x5EED,
        }
    }

    /// True if the model is the uniform no-op.
    pub fn is_uniform(&self) -> bool {
        self.theta <= 0.0 || self.tuples == 0
    }

    /// Max-over-average fragment ratio when hashing into `buckets`
    /// buckets (≥ 1; exactly 1 for a single bucket or a uniform model).
    pub fn balance_factor(&self, buckets: usize) -> f64 {
        if buckets <= 1 || self.is_uniform() {
            return 1.0;
        }
        // Cap the sample: the ratio converges quickly and the factor is
        // queried once per distinct degree (memoized by the caller).
        let n = self.tuples.clamp(1_000, 40_000) as usize;
        let keys = zipf_keys(n, n, self.theta, self.seed);
        let mut counts = vec![0usize; buckets];
        for &k in &keys {
            counts[bucket_of(k, buckets)] += 1;
        }
        let max = *counts.iter().max().expect("buckets >= 1") as f64;
        (max / (n as f64 / buckets as f64)).max(1.0)
    }
}

/// Memoizing wrapper: one [`SkewModel::balance_factor`] sample per
/// distinct bucket count.
#[derive(Debug)]
pub(crate) struct BalanceCache<'a> {
    model: &'a SkewModel,
    cache: HashMap<usize, f64>,
}

impl<'a> BalanceCache<'a> {
    pub(crate) fn new(model: &'a SkewModel) -> Self {
        BalanceCache {
            model,
            cache: HashMap::new(),
        }
    }

    pub(crate) fn factor(&mut self, buckets: usize) -> f64 {
        let model = self.model;
        *self
            .cache
            .entry(buckets)
            .or_insert_with(|| model.balance_factor(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_is_a_no_op() {
        let m = SkewModel::uniform();
        assert!(m.is_uniform());
        for buckets in [1usize, 2, 9, 80] {
            assert_eq!(m.balance_factor(buckets), 1.0);
        }
    }

    #[test]
    fn single_bucket_is_always_balanced() {
        assert_eq!(SkewModel::zipf(1.2, 40_000).balance_factor(1), 1.0);
    }

    #[test]
    fn factor_grows_with_theta() {
        let mild = SkewModel::zipf(0.3, 40_000).balance_factor(16);
        let heavy = SkewModel::zipf(1.2, 40_000).balance_factor(16);
        assert!(mild >= 1.0);
        assert!(heavy > mild, "theta 1.2 ({heavy}) should beat 0.3 ({mild})");
    }

    #[test]
    fn factor_grows_with_bucket_count() {
        // More buckets, smaller average, relatively heavier maximum — the
        // mechanism that punishes SP's all-processor partitioning.
        let m = SkewModel::zipf(0.9, 40_000);
        let few = m.balance_factor(9);
        let many = m.balance_factor(80);
        assert!(
            many > few,
            "80 buckets ({many}) should be worse than 9 ({few})"
        );
    }

    #[test]
    fn deterministic() {
        let m = SkewModel::zipf(0.9, 40_000);
        assert_eq!(m.balance_factor(16), m.balance_factor(16));
    }

    #[test]
    fn cache_memoizes() {
        let m = SkewModel::zipf(0.6, 20_000);
        let mut c = BalanceCache::new(&m);
        let a = c.factor(13);
        let b = c.factor(13);
        assert_eq!(a, b);
        assert_eq!(c.cache.len(), 1);
    }
}
