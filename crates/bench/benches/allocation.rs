//! Criterion bench: proportional processor allocation and plan generation
//! (phase-2 planning overhead should be negligible next to execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mj_core::generator::{generate, GeneratorInput};
use mj_core::proportional_counts;
use mj_core::strategy::Strategy;
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::shapes::{build, Shape};

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for ops in [4usize, 9, 31] {
        let weights: Vec<f64> = (0..ops).map(|i| 1.0 + (i % 7) as f64).collect();
        group.bench_with_input(BenchmarkId::new("proportional", ops), &weights, |b, w| {
            b.iter(|| proportional_counts(w, 80).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("plan_generation");
    let tree = build(Shape::WideBushy, 10).unwrap();
    let cards = node_cards(&tree, &UniformOneToOne { n: 40_000 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("generate", strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let input = GeneratorInput::new(&tree, &cards, &costs, 80);
                    generate(s, &input).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
