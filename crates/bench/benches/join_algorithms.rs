//! Criterion bench: simple vs pipelining hash join (§2.3.2).
//!
//! Measures one-shot join throughput at several operand sizes. The
//! pipelining join is expected to be somewhat slower in *total* work (it
//! maintains two hash tables) — its payoff is earliness, which the
//! instrumented `mj_join::stats` run quantifies separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mj_relalg::{EquiJoin, Relation};
use mj_storage::WisconsinGenerator;

fn inputs(n: usize) -> (Relation, Relation, EquiJoin) {
    let gen = WisconsinGenerator::new(n, 11);
    let left = gen.generate(0);
    let right = gen.generate(1);
    // Regular-query projection for arity-3 compact tuples.
    let spec = mj_plan::query::regular_join_spec(3);
    (left, right, spec)
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    for n in [1_000usize, 10_000, 50_000] {
        let (left, right, spec) = inputs(n);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::new("simple", n), &n, |b, _| {
            b.iter(|| mj_join::simple_hash_join(&left, &right, &spec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pipelining", n), &n, |b, _| {
            b.iter(|| mj_join::pipelining_hash_join(&left, &right, &spec).unwrap())
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_join_50k");
    let (left, right, spec) = inputs(50_000);
    for parts in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("simple", parts), &parts, |b, &parts| {
            b.iter(|| {
                mj_join::partitioned_parallel_join(
                    &left,
                    &right,
                    &spec,
                    parts,
                    mj_relalg::JoinAlgorithm::Simple,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins, bench_partitioned);
criterion_main!(benches);
