//! Criterion bench: simple vs pipelining hash join (§2.3.2), plus
//! [`JoinTable`] insert/probe microbenches with hard allocation-count
//! assertions.
//!
//! Measures one-shot join throughput at several operand sizes. The
//! pipelining join is expected to be somewhat slower in *total* work (it
//! maintains two hash tables) — its payoff is earliness, which the
//! instrumented `mj_join::stats` run quantifies separately.
//!
//! A counting global allocator verifies the zero-copy contract before any
//! timing runs: inserting already-shared tuples into a pre-sized
//! `JoinTable` performs **no** allocation per insert, and probing performs
//! none at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use mj_join::JoinTable;
use mj_relalg::{EquiJoin, Relation, Tuple};
use mj_storage::WisconsinGenerator;

/// Global allocator that counts allocations, for the zero-alloc checks.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Hard zero-allocation assertions on the join-table hot paths; runs
/// before the timed benches, single-threaded.
fn assert_allocation_free_hot_paths() {
    const N: i64 = 10_000;
    // Arity-6 rows take the shared (Arc) representation: cloning one into
    // the table must be a refcount bump, not a payload copy.
    let shared: Vec<Tuple> = (0..N)
        .map(|k| Tuple::from_ints(&[k, k, k, k, k, k]))
        .collect();
    assert!(!shared[0].is_inline());

    let mut table = JoinTable::with_capacity(shared.len());
    let inserts = allocations(|| {
        for t in &shared {
            table.insert(t.int(0).unwrap(), t.clone());
        }
    });
    assert_eq!(
        inserts, 0,
        "inserting {N} already-shared tuples into a pre-sized table allocated {inserts} times"
    );

    let mut hits = 0u64;
    let probes = allocations(|| {
        for k in 0..N {
            hits += table.probe(k).count() as u64;
        }
    });
    assert_eq!(probes, 0, "probing allocated {probes} times");
    assert_eq!(hits, N as u64);

    // Inline all-int rows allocate nothing even without pre-sharing.
    let mut inline_table = JoinTable::with_capacity(N as usize);
    let inline_inserts = allocations(|| {
        for k in 0..N {
            inline_table.insert(k, Tuple::from_ints(&[k, k, k]));
        }
    });
    assert_eq!(
        inline_inserts, 0,
        "inline tuples must construct and insert without heap traffic"
    );
    eprintln!("zero-alloc assertions passed: {N} shared inserts, {N} probes, {N} inline inserts");
}

/// Hard batch-pool assertions: a producer/consumer redistribution edge in
/// steady state must serve (almost) every buffer take from the pool. The
/// pool is sized from both endpoint counts (`edge_buffer_bound`), so misses
/// are bounded by the cold-start buffer population — a regression here
/// means flushed buffers are being dropped and reallocated, defeating the
/// zero-allocation batching contract.
fn assert_batch_pool_hit_rate() {
    use mj_exec::stream::{edge_buffer_bound, operand_channels, Msg, Router};

    const PRODUCERS: usize = 4;
    const CONSUMERS: usize = 4;
    const CAPACITY: usize = 8;
    const BATCH: usize = 64;
    const TUPLES: i64 = 100_000;

    let (txs, rxs, pool) = operand_channels(
        PRODUCERS,
        CONSUMERS,
        CAPACITY,
        mj_relalg::column::ColumnLayout::ints(1),
    );
    let consumers: Vec<_> = rxs
        .into_iter()
        .map(|rx| {
            std::thread::spawn(move || {
                let mut n = 0usize;
                let mut ends = 0usize;
                while ends < PRODUCERS {
                    match rx.recv().expect("stream open") {
                        Msg::Batch(mut b) => n += b.drain().count(),
                        Msg::End => ends += 1,
                    }
                }
                n
            })
        })
        .collect();
    let producers: Vec<_> = (0..PRODUCERS as i64)
        .map(|p| {
            let txs = txs.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut router = Router::new(txs, 0, BATCH, pool);
                for k in (p..TUPLES).step_by(PRODUCERS) {
                    router.route(Tuple::from_ints(&[k])).unwrap();
                }
                router.finish().unwrap();
            })
        })
        .collect();
    drop(txs);
    for p in producers {
        p.join().expect("producer");
    }
    let routed: usize = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer"))
        .sum();
    assert_eq!(routed, TUPLES as usize);

    let bound = edge_buffer_bound(PRODUCERS, CONSUMERS, CAPACITY) as u64;
    assert!(
        pool.misses() <= bound,
        "batch pool thrashed: {} misses exceed the structural bound {bound}",
        pool.misses()
    );
    assert!(
        pool.hit_rate() > 0.9,
        "batch pool hit rate {:.3} below 0.9 ({} takes, {} misses)",
        pool.hit_rate(),
        pool.takes(),
        pool.misses()
    );
    eprintln!(
        "batch-pool assertions passed: {} takes, {} misses, hit rate {:.3}",
        pool.takes(),
        pool.misses(),
        pool.hit_rate()
    );
}

fn bench_join_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_table");
    for n in [10_000usize, 100_000] {
        let tuples: Vec<Tuple> = (0..n as i64)
            .map(|k| Tuple::from_ints(&[k, k, k, k, k, k]))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("insert_shared", n), &n, |b, &n| {
            b.iter(|| {
                let mut table = JoinTable::with_capacity(n);
                for t in &tuples {
                    table.insert(t.int(0).unwrap(), t.clone());
                }
                table.len()
            })
        });
        let mut table = JoinTable::with_capacity(n);
        for t in &tuples {
            table.insert(t.int(0).unwrap(), t.clone());
        }
        group.bench_with_input(BenchmarkId::new("probe", n), &n, |b, &n| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in 0..n as i64 {
                    hits += table.probe(k).count();
                }
                hits
            })
        });
    }
    group.finish();
}

fn inputs(n: usize) -> (Relation, Relation, EquiJoin) {
    let gen = WisconsinGenerator::new(n, 11);
    let left = gen.generate(0);
    let right = gen.generate(1);
    // Regular-query projection for arity-3 compact tuples.
    let spec = mj_plan::query::regular_join_spec(3);
    (left, right, spec)
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_join");
    for n in [1_000usize, 10_000, 50_000] {
        let (left, right, spec) = inputs(n);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::new("simple", n), &n, |b, _| {
            b.iter(|| mj_join::simple_hash_join(&left, &right, &spec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pipelining", n), &n, |b, _| {
            b.iter(|| mj_join::pipelining_hash_join(&left, &right, &spec).unwrap())
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_join_50k");
    let (left, right, spec) = inputs(50_000);
    for parts in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("simple", parts), &parts, |b, &parts| {
            b.iter(|| {
                mj_join::partitioned_parallel_join(
                    &left,
                    &right,
                    &spec,
                    parts,
                    mj_relalg::JoinAlgorithm::Simple,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_table, bench_joins, bench_partitioned);

fn main() {
    assert_allocation_free_hot_paths();
    assert_batch_pool_hit_rate();
    benches();
}
