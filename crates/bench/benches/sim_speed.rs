//! Criterion bench: simulator throughput (a full 40K/80-processor scenario
//! must stay cheap enough to sweep the whole figure grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mj_core::strategy::Strategy;
use mj_plan::shapes::Shape;
use mj_sim::{run_scenario, Scenario, SimParams};

fn bench_sim(c: &mut Criterion) {
    let params = SimParams::default();
    let mut group = c.benchmark_group("simulator");
    for strategy in Strategy::ALL {
        let scenario = Scenario::paper(Shape::WideBushy, strategy, 40_000, 80);
        group.bench_with_input(
            BenchmarkId::new("40k_80p", strategy.label()),
            &scenario,
            |b, s| b.iter(|| run_scenario(s, &params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
