//! Criterion bench: phase-1 optimizers over chain queries ("two-phase
//! optimization seems a reasonable way to cut down on the optimization
//! time", §1.2 — this quantifies phase 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mj_plan::cost::CostModel;
use mj_plan::{
    greedy_tree, iterative_improvement, optimize_bushy, optimize_linear, simulated_annealing,
    AnnealingOptions, IterativeOptions, QueryGraph,
};

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_optimizer");
    for k in [6usize, 10, 14] {
        let graph = QueryGraph::regular_chain(k, 5_000).unwrap();
        group.bench_with_input(BenchmarkId::new("bushy_dp", k), &graph, |b, g| {
            b.iter(|| optimize_bushy(g, &CostModel::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("linear_dp", k), &graph, |b, g| {
            b.iter(|| optimize_linear(g, &CostModel::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", k), &graph, |b, g| {
            b.iter(|| greedy_tree(g, &CostModel::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    // Smaller budgets than the defaults: benches measure cost-per-probe of
    // the search machinery, not solution quality.
    let ii_opts = IterativeOptions {
        restarts: 1,
        patience: 64,
        ..IterativeOptions::default()
    };
    let sa_opts = AnnealingOptions {
        stage_iters: 32,
        frozen_stages: 2,
        ..AnnealingOptions::default()
    };
    let mut group = c.benchmark_group("phase1_local_search");
    for k in [10usize, 20, 30] {
        let graph = QueryGraph::regular_chain(k, 5_000).unwrap();
        group.bench_with_input(
            BenchmarkId::new("iterative_improvement", k),
            &graph,
            |b, g| b.iter(|| iterative_improvement(g, &CostModel::default(), ii_opts).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("simulated_annealing", k),
            &graph,
            |b, g| b.iter(|| simulated_annealing(g, &CostModel::default(), sa_opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers, bench_local_search);
criterion_main!(benches);
