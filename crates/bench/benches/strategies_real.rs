//! Criterion bench: the four strategies end-to-end on the real threaded
//! engine (host scale: 4 logical processors, 6 relations).
//!
//! Not a reproduction of the paper's figures (that is the simulator's
//! job) — this checks that all four strategies are runnable dataflows and
//! tracks their relative host-scale behaviour over time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mj_core::generator::{generate, GeneratorInput};
use mj_core::strategy::Strategy;
use mj_exec::{run_plan, ExecConfig, QueryBinding};
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::shapes::{build, Shape};
use mj_storage::{Catalog, WisconsinGenerator};

fn bench_strategies(c: &mut Criterion) {
    let k = 6usize;
    let n = 5_000usize;
    let procs = 4usize;
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 3).generate_named("R", k) {
        catalog.register(name, rel);
    }

    let mut group = c.benchmark_group("real_engine");
    group.sample_size(10);
    for shape in [Shape::WideBushy, Shape::RightLinear] {
        let tree = build(shape, k).unwrap();
        let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
        let costs = tree_costs(&tree, &cards, &CostModel::default());
        let binding = QueryBinding::regular(&tree, catalog.as_ref()).unwrap();
        for strategy in Strategy::ALL {
            let mut input = GeneratorInput::new(&tree, &cards, &costs, procs);
            input.allow_oversubscribe = true;
            let plan = generate(strategy, &input).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{shape}"), strategy.label()),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let out =
                            run_plan(plan, &binding, catalog.as_ref(), &ExecConfig::default())
                                .unwrap();
                        assert_eq!(out.relation.len(), n);
                        out
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
