//! CSV output for the regenerated figures (plot-ready series).

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes a CSV file, creating parent directories as needed.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_round_trips() {
        let dir = std::env::temp_dir().join("mj-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = fs::remove_dir_all(dir);
    }
}
