//! Benchmark and reproduction harness support.
//!
//! The `repro` binary regenerates every figure and table of the paper's
//! evaluation (see DESIGN.md for the experiment index); this library holds
//! the shared sweep drivers, ASCII table rendering, and CSV output used by
//! the binary and the Criterion benches.

#![warn(missing_docs)]

pub mod ascii;
pub mod bench_json;
pub mod csvout;
pub mod grid;

pub use ascii::format_table;
pub use bench_json::{
    bench10_report, bench10_to_json, bench2_report, bench2_to_json, bench3_report, bench3_to_json,
    bench4_report, bench4_to_json, bench5_report, bench5_to_json, bench6_report, bench6_to_json,
    bench7_report, bench7_to_json, bench8_report, bench8_to_json, bench9_report, bench9_to_json,
    bench_report, report_to_json, validate_bench10_json, validate_bench2_json,
    validate_bench3_json, validate_bench4_json, validate_bench5_json, validate_bench6_json,
    validate_bench7_json, validate_bench8_json, validate_bench9_json, validate_report_json,
    Bench10Report, Bench2Report, Bench3Report, Bench4Report, Bench5Report, Bench6Report,
    Bench7Report, Bench8Report, Bench9Report, BenchReport, PayloadRun, PreparedBench,
    WireFormatBench,
};
pub use csvout::write_csv;
pub use grid::{paper_processor_counts, simulate_tree, sweep, SweepPoint, PAPER_SIZES};
