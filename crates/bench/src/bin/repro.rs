//! `repro` — regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mj-bench --bin repro -- all
//! cargo run --release -p mj-bench --bin repro -- fig9 fig14
//! ```
//!
//! Experiments (see DESIGN.md §3 for the index):
//!   fig3 fig4 fig6 fig7   idealized utilization diagrams (example tree)
//!   fig5                  right-deep segmentation of a bushy tree
//!   fig8                  the five query-tree shapes
//!   fig9..fig13           response-time curves per shape (5K and 40K)
//!   fig14                 best-response-time table
//!   costfn                cost-function shape-invariance (44N)
//!   ablation-mirror       RD with and without tree mirroring (§5)
//!   ablation-memory       RD vs FP peak hash-table memory (§5)
//!   ablation-skew         partition balance under Zipf skew (§3.5)
//!   ablation-pipeline     linear vs bushy pipeline fill delay (§2.3.3)
//!   real                  the four strategies on the real threaded engine
//!   bench [--quick]       machine-readable perf baselines -> BENCH_1.json
//!                         (zero-copy) + BENCH_2.json (concurrent queries)
//!                         + BENCH_3.json (cost-based planner)
//!                         + BENCH_4.json (session streaming latency)
//!                         + BENCH_5.json (filter pushdown)
//!   bench-concurrent      only the concurrent section -> BENCH_2.json
//!   bench-planner         only the planner section -> BENCH_3.json
//!   bench-session         only the streaming section -> BENCH_4.json
//!   bench-operators       only the pushdown section -> BENCH_5.json
//!   bench-robustness      guardrail overhead + noisy-neighbor p99
//!                         -> BENCH_6.json
//!   bench-columnar        columnar vs row-path join kernels + the
//!                         BENCH_5/BENCH_6 scenarios on the columnar
//!                         engine -> BENCH_7.json
//!   bench-simd            scalar vs SIMD kernel microbenchmarks +
//!                         late-vs-eager wide chain + BENCH_5/6/7
//!                         regression re-runs -> BENCH_8.json
//!   bench-server          query-server wire throughput (back-to-back vs
//!                         ~1k concurrent clients), noisy neighbors over
//!                         the wire, worker liveness, and the BENCH_6
//!                         guardrail-overhead re-run with metrics wired
//!                         in -> BENCH_9.json
//!   bench-wire            prepared statements + shared plan cache vs
//!                         ad-hoc re-planning, binary columnar vs JSON
//!                         result frames, and the BENCH_9 wire benchmark
//!                         re-run on the new serving path -> BENCH_10.json
//!
//! CSV series are written to results/.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use mj_bench::{
    bench2_report, bench2_to_json, bench3_report, bench3_to_json, bench4_report, bench4_to_json,
    bench5_report, bench5_to_json, bench6_report, bench6_to_json, bench7_report, bench7_to_json,
    bench_report, format_table, paper_processor_counts, report_to_json, simulate_tree, sweep,
    validate_bench2_json, validate_bench3_json, validate_bench4_json, validate_bench5_json,
    validate_bench6_json, validate_bench7_json, validate_report_json, write_csv, PAPER_SIZES,
};
use mj_core::example::{example_cards, example_tree, example_weights};
use mj_core::generator::{generate, GeneratorInput};
use mj_core::strategy::Strategy;
use mj_exec::{run_plan, ExecConfig, QueryBinding};
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel, TreeCosts};
use mj_plan::segment::segments;
use mj_plan::shapes::{build, Shape};
use mj_plan::transform::right_orient;
use mj_plan::{query, render};
use mj_sim::{peak_bytes_per_processor, render_gantt, run_scenario, simulate, Scenario, SimParams};
use mj_storage::{skew, Catalog, WisconsinGenerator};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "costfn",
            "ablation-twophase",
            "ablation-optimizers",
            "ablation-mirror",
            "ablation-memory",
            "ablation-skew",
            "ablation-pipeline",
            "real",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for exp in wanted {
        let t0 = Instant::now();
        match exp {
            "fig3" => utilization_figure(Strategy::SP, "Figure 3: Sequential Parallel (SP)"),
            "fig4" => utilization_figure(Strategy::SE, "Figure 4: Synchronous Execution (SE)"),
            "fig5" => fig5_segments(),
            "fig6" => utilization_figure(Strategy::RD, "Figure 6: Segmented Right-Deep (RD)"),
            "fig7" => utilization_figure(Strategy::FP, "Figure 7: Full Parallel (FP)"),
            "fig8" => fig8_shapes(),
            "fig9" => response_figure(Shape::LeftLinear, 9),
            "fig10" => response_figure(Shape::LeftBushy, 10),
            "fig11" => response_figure(Shape::WideBushy, 11),
            "fig12" => response_figure(Shape::RightBushy, 12),
            "fig13" => response_figure(Shape::RightLinear, 13),
            "fig14" => fig14_best(),
            "costfn" => costfn_invariance(),
            "ablation-twophase" => ablation_twophase(),
            "ablation-optimizers" => ablation_optimizers(),
            "ablation-mirror" => ablation_mirror(),
            "ablation-memory" => ablation_memory(),
            "ablation-skew" => ablation_skew(),
            "ablation-pipeline" => ablation_pipeline(),
            "real" => real_engine(),
            "bench" => {
                emit_bench_json(quick);
                emit_bench2_json(quick);
                emit_bench3_json(quick);
                emit_bench4_json(quick);
                emit_bench5_json(quick);
                emit_bench6_json(quick);
                emit_bench7_json(quick);
                emit_bench8_json(quick);
                emit_bench9_json(quick);
                emit_bench10_json(quick);
            }
            "bench-concurrent" => emit_bench2_json(quick),
            "bench-planner" => emit_bench3_json(quick),
            "bench-session" => emit_bench4_json(quick),
            "bench-operators" => emit_bench5_json(quick),
            "bench-robustness" => emit_bench6_json(quick),
            "bench-columnar" => emit_bench7_json(quick),
            "bench-simd" => emit_bench8_json(quick),
            "bench-server" => emit_bench9_json(quick),
            "bench-wire" => emit_bench10_json(quick),
            other => eprintln!("unknown experiment `{other}` (see --help text in the source)"),
        }
        eprintln!("[{exp} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}

/// The Fig. 2 example tree with its paper weights, planned and simulated
/// with zero overheads on 10 processors — the idealized diagrams.
fn utilization_figure(strategy: Strategy, title: &str) {
    let (tree, joins) = example_tree();
    let weights = example_weights();
    let mut per_join = vec![0.0; tree.nodes().len()];
    let mut total = 0.0;
    for (id, w) in &weights {
        per_join[*id] = *w;
        total += *w;
    }
    let costs = TreeCosts { per_join, total };
    let cards = example_cards(2000);
    let input = GeneratorInput::new(&tree, &cards, &costs, 10);
    let plan = generate(strategy, &input).expect("example plan");
    let result = simulate(&plan, &SimParams::idealized()).expect("simulate");
    println!("== {title} ==");
    println!("(idealized: zero startup/coordination overhead, 10 processors, Fig. 2 tree)");
    print!(
        "{}",
        render_gantt(&plan, &result, 64, |j| joins
            .label(j)
            .map(|l| char::from_digit(l, 10).unwrap()))
    );
}

fn fig5_segments() {
    println!("== Figure 5: a bushy tree and its right-deep segments ==");
    let tree = build(Shape::RightBushy, 10).expect("tree");
    let seg = segments(&tree);
    println!(
        "{}",
        render::render_with(&tree, |id| seg.seg_of[id].map(|s| format!("segment {s}")))
    );
    for (i, s) in seg.segments.iter().enumerate() {
        println!(
            "segment {i}: joins {:?} (pipeline bottom->top), depends on {:?}",
            s.joins, seg.deps[i]
        );
    }
    println!("waves (concurrent groups): {:?}", seg.waves());
}

fn fig8_shapes() {
    println!("== Figure 8: query shapes used in the experiments ==");
    for shape in Shape::ALL {
        let tree = build(shape, 10).expect("shape");
        println!(
            "--- {shape} (depth {}, right spine {}) ---",
            tree.depth(),
            tree.right_spine_len()
        );
        println!("{}", render::render(&tree));
    }
}

/// One response-time figure: the four strategies over the processor sweep,
/// 5K panel then 40K panel.
fn response_figure(shape: Shape, fig_no: u32) {
    let params = SimParams::default();
    println!("== Figure {fig_no}: {shape} query tree — simulated response times (s) ==");
    for tuples in PAPER_SIZES {
        let pts = sweep(shape, tuples, &params).expect("sweep");
        let procs = paper_processor_counts(tuples);
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for &p in &procs {
            let mut row = vec![p.to_string()];
            let mut csv_row = vec![p.to_string()];
            for strategy in Strategy::ALL {
                let pt = pts
                    .iter()
                    .find(|x| x.processors == p && x.strategy == strategy)
                    .expect("grid cell");
                row.push(format!("{:.2}", pt.seconds));
                csv_row.push(format!("{:.4}", pt.seconds));
            }
            rows.push(row);
            csv_rows.push(csv_row);
        }
        println!("--- {}K tuples/relation ---", tuples / 1000);
        println!(
            "{}",
            format_table(&["procs", "SP", "SE", "RD", "FP"], &rows)
        );
        let path = format!("results/fig{fig_no}_{}k.csv", tuples / 1000);
        write_csv(&path, &["procs", "SP", "SE", "RD", "FP"], &csv_rows).expect("csv");
        println!("[series written to {path}]");
    }
}

/// Figure 14: best response time per (shape, size) with its argmin.
fn fig14_best() {
    let params = SimParams::default();
    println!("== Figure 14: best response times (s) over all strategies and processor counts ==");
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for shape in Shape::ALL {
        let mut row = vec![shape.label().to_string()];
        let mut csv_row = vec![shape.label().to_string()];
        for tuples in PAPER_SIZES {
            let pts = sweep(shape, tuples, &params).expect("sweep");
            let best = pts
                .iter()
                .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
                .expect("non-empty");
            row.push(format!(
                "{:.1} ({}{})",
                best.seconds, best.strategy, best.processors
            ));
            csv_row.push(format!("{:.4}", best.seconds));
            csv_row.push(format!("{}{}", best.strategy, best.processors));
        }
        rows.push(row);
        csv_rows.push(csv_row);
    }
    println!("{}", format_table(&["shape", "5K best", "40K best"], &rows));
    write_csv(
        "results/fig14.csv",
        &[
            "shape",
            "best_5k_s",
            "best_5k_cfg",
            "best_40k_s",
            "best_40k_cfg",
        ],
        &csv_rows,
    )
    .expect("csv");
    println!("[table written to results/fig14.csv]");
    println!("(paper: 5K best 5.2-10.1s, 40K best 26-34s; bushy shapes give the best minima)");
}

/// §4.1/§4.3: every shape of the regular query has the same total cost.
fn costfn_invariance() {
    println!("== Cost-function invariance: total cost of the regular 10-relation query ==");
    let mut rows = Vec::new();
    for n in [5_000u64, 40_000] {
        for shape in Shape::ALL {
            let tree = build(shape, 10).expect("shape");
            let cards = node_cards(&tree, &UniformOneToOne { n });
            let costs = tree_costs(&tree, &cards, &CostModel::default());
            rows.push(vec![
                format!("{}K", n / 1000),
                shape.label().to_string(),
                format!("{:.0}", costs.total),
                format!("{:.1}N", costs.total / n as f64),
            ]);
        }
    }
    println!(
        "{}",
        format_table(&["size", "shape", "total cost (units)", "per N"], &rows)
    );
    println!("(the paper's premise: all trees cost 44N, so response-time differences are pure parallelization)");
}

/// §1.2: the paper adopts two-phase optimization from \[HoS91\] — phase 1
/// minimizes total cost ignoring parallelism — while \[SrE93\] disputes the
/// premise. For the regular query the dispute is maximal: *every* tree has
/// total cost 44N, so phase 1 cannot distinguish shapes at all, yet their
/// best parallelizations differ. This ablation quantifies the regret of
/// letting phase 1 pick blindly versus a joint search over
/// (shape, strategy, processors) with the simulator as cost oracle.
fn ablation_twophase() {
    let params = SimParams::default();
    println!("== Ablation: two-phase optimization vs joint (shape x strategy x procs) search ==");
    let mut rows = Vec::new();
    for tuples in PAPER_SIZES {
        // Phase 1: the classical bushy DP. All regular-query trees tie on
        // total cost, so it returns an arbitrary minimal tree.
        let graph = mj_plan::QueryGraph::regular_chain(10, tuples).expect("chain");
        let phase1 = mj_plan::optimize_bushy(&graph, &CostModel::default()).expect("dp");
        let procs = paper_processor_counts(tuples);
        let mut two_phase = f64::INFINITY;
        let mut two_phase_cfg = String::new();
        for &p in &procs {
            for strategy in Strategy::ALL {
                let (_, sim) =
                    simulate_tree(&phase1.tree, strategy, tuples, p, &params).expect("sim");
                if sim.response_time < two_phase {
                    two_phase = sim.response_time;
                    two_phase_cfg = format!("{strategy}{p}");
                }
            }
        }
        // Joint: additionally search the five shapes.
        let mut joint = f64::INFINITY;
        let mut joint_cfg = String::new();
        for shape in Shape::ALL {
            for pt in sweep(shape, tuples, &params).expect("sweep") {
                if pt.seconds < joint {
                    joint = pt.seconds;
                    joint_cfg = format!("{} {}{}", shape.label(), pt.strategy, pt.processors);
                }
            }
        }
        rows.push(vec![
            format!("{}K", tuples / 1000),
            format!(
                "depth {}, spine {}",
                phase1.tree.depth(),
                phase1.tree.right_spine_len()
            ),
            format!("{two_phase:.1}s ({two_phase_cfg})"),
            format!("{joint:.1}s ({joint_cfg})"),
            format!("{:.0}%", 100.0 * (two_phase / joint - 1.0)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "size",
                "phase-1 tree",
                "two-phase best",
                "joint best",
                "regret"
            ],
            &rows
        )
    );
    println!("(phase 1 cannot rank the regular query's trees — all cost 44N — so the tree it");
    println!(" happens to return determines how much the two-phase shortcut leaves on the table)");
}

/// Phase-1 optimizer quality and cost on queries where tree choice
/// matters: exhaustive bushy DP (optimum), System-R linear DP, greedy,
/// random-restart iterative improvement, simulated annealing, and a
/// random tree as the floor.
fn ablation_optimizers() {
    use mj_plan::{
        greedy_tree, iterative_improvement, optimize_bushy, optimize_linear, random_tree,
        simulated_annealing, AnnealingOptions, IterativeOptions, QueryGraph,
    };
    println!("== Ablation: phase-1 optimizers on a skewed chain and a star query ==");
    let cm = CostModel::default();

    let mut skewed = QueryGraph::new();
    for i in 0..12usize {
        skewed
            .add_relation(format!("R{i}"), 10u64.pow(1 + (i % 4) as u32) * 50)
            .unwrap();
    }
    for i in 0..11usize {
        skewed.add_edge(i, i + 1, 1e-2).expect("edge");
    }
    let mut star = QueryGraph::new();
    let fact = star.add_relation("fact", 2_000_000).unwrap();
    for d in 0..8usize {
        let dim = star
            .add_relation(format!("dim{d}"), 200 + 100 * d as u64)
            .unwrap();
        star.add_edge(fact, dim, 1e-4).expect("edge");
    }

    let mut rows = Vec::new();
    for (name, graph) in [("skewed chain (12)", &skewed), ("star (1+8)", &star)] {
        let optimum = optimize_bushy(graph, &cm).expect("dp").total_cost;
        let timed = |label: &str, plan: mj_plan::optimize::OptimizedPlan, us: f64| {
            vec![
                name.to_string(),
                label.to_string(),
                format!("{:.3e}", plan.total_cost),
                format!("{:.2}x", plan.total_cost / optimum),
                format!("{us:.0} us"),
            ]
        };
        let t = Instant::now();
        let dp = optimize_bushy(graph, &cm).expect("dp");
        rows.push(timed(
            "bushy DP (optimum)",
            dp,
            t.elapsed().as_secs_f64() * 1e6,
        ));
        let t = Instant::now();
        let lin = optimize_linear(graph, &cm).expect("linear dp");
        rows.push(timed("linear DP", lin, t.elapsed().as_secs_f64() * 1e6));
        let t = Instant::now();
        let gr = greedy_tree(graph, &cm).expect("greedy");
        rows.push(timed("greedy", gr, t.elapsed().as_secs_f64() * 1e6));
        let t = Instant::now();
        let ii = iterative_improvement(graph, &cm, IterativeOptions::default()).expect("ii");
        rows.push(timed(
            "iterative improvement",
            ii,
            t.elapsed().as_secs_f64() * 1e6,
        ));
        let t = Instant::now();
        let sa = simulated_annealing(graph, &cm, AnnealingOptions::default()).expect("sa");
        rows.push(timed(
            "simulated annealing",
            sa,
            t.elapsed().as_secs_f64() * 1e6,
        ));
        let t = Instant::now();
        let rnd = random_tree(graph, &cm, 1).expect("random");
        rows.push(timed("random tree", rnd, t.elapsed().as_secs_f64() * 1e6));
    }
    println!(
        "{}",
        format_table(
            &["query", "optimizer", "total cost", "vs optimum", "time"],
            &rows
        )
    );
}

/// §5: "it is possible without cost penalty to mirror (parts of) a query to
/// make it more right-oriented, so that in practice RD is expected to work
/// quite well."
fn ablation_mirror() {
    let params = SimParams::default();
    println!("== Ablation: RD with and without right-orienting transform (40K tuples) ==");
    let mut rows = Vec::new();
    for shape in [Shape::LeftLinear, Shape::LeftBushy, Shape::WideBushy] {
        let tree = build(shape, 10).expect("shape");
        let oriented = right_orient(&tree);
        for procs in [40usize, 80] {
            let (_, plain) =
                simulate_tree(&tree, Strategy::RD, 40_000, procs, &params).expect("sim");
            let (_, mirrored) =
                simulate_tree(&oriented, Strategy::RD, 40_000, procs, &params).expect("sim");
            rows.push(vec![
                shape.label().to_string(),
                procs.to_string(),
                format!("{:.2}", plain.response_time),
                format!("{:.2}", mirrored.response_time),
                format!("{:.2}x", plain.response_time / mirrored.response_time),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "shape",
                "procs",
                "RD as-is (s)",
                "RD mirrored (s)",
                "speedup"
            ],
            &rows
        )
    );
}

/// §5: "RD uses less memory than FP because only one hash-table needs to
/// be built."
fn ablation_memory() {
    let params = SimParams::default();
    println!("== Ablation: peak hash-table bytes per processor, RD vs FP ==");
    let mut rows = Vec::new();
    for tuples in PAPER_SIZES {
        for shape in [Shape::RightBushy, Shape::WideBushy, Shape::RightLinear] {
            let mut cells = vec![format!("{}K", tuples / 1000), shape.label().to_string()];
            let mut values = Vec::new();
            for strategy in [Strategy::RD, Strategy::FP] {
                let scenario = Scenario::paper(shape, strategy, tuples, 40);
                let r = run_scenario(&scenario, &params).expect("scenario");
                let peak = peak_bytes_per_processor(&r.plan, &r.sim, &params);
                values.push(peak);
                cells.push(format!("{:.0} KB", peak / 1024.0));
            }
            cells.push(format!("{:.2}x", values[1] / values[0]));
            rows.push(cells);
        }
    }
    println!(
        "{}",
        format_table(&["size", "shape", "RD peak", "FP peak", "FP/RD"], &rows)
    );
}

/// §3.5 assumes non-skewed partitioning; quantify what Zipf skew does to
/// hash-partition balance (the load-balance premise of every strategy).
fn ablation_skew() {
    println!("== Ablation: hash-partition balance under Zipf-skewed join keys ==");
    let n = 40_000usize;
    let parts = 16usize;
    let mut rows = Vec::new();
    for theta in [0.0f64, 0.3, 0.6, 0.9, 1.2] {
        let keys = skew::zipf_keys(n, n, theta, 7);
        let mut counts = vec![0usize; parts];
        for &k in &keys {
            counts[mj_relalg::hash::bucket_of(k, parts)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let avg = n as f64 / parts as f64;
        rows.push(vec![
            format!("{theta:.1}"),
            format!("{:.3}", skew::top_key_fraction(&keys)),
            format!("{:.2}", max / avg),
            format!("{:.1}%", 100.0 * (1.0 - avg / max)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "theta",
                "top-key share",
                "max/avg fragment",
                "idle at barrier"
            ],
            &rows
        )
    );
    println!(
        "(at theta >= 0.9 one fragment dominates: the proportional-allocation premise breaks)"
    );

    // End-to-end: the same imbalance applied per operation in the
    // simulator (wide bushy, 40K, 80 processors). SP partitions every
    // operand over all 80 processors, so it suffers the largest factor;
    // FP's ~9-processor buckets stay best balanced.
    println!();
    println!("-- response time under Zipf skew (wide bushy, 40K tuples, 80 processors) --");
    let params = SimParams::default();
    let tree = build(Shape::WideBushy, 10).expect("shape");
    let cards = node_cards(&tree, &UniformOneToOne { n: 40_000 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let mut base = Vec::new();
    let mut rows = Vec::new();
    for theta in [0.0f64, 0.3, 0.6, 0.9, 1.2] {
        let mut row = vec![format!("{theta:.1}")];
        for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
            let input = GeneratorInput::new(&tree, &cards, &costs, 80);
            let plan = generate(strategy, &input).expect("plan");
            let model = mj_sim::SkewModel::zipf(theta, 40_000);
            let rt = mj_sim::simulate_skewed(&plan, &params, &model)
                .expect("simulate")
                .response_time;
            if theta == 0.0 {
                base.push(rt);
                row.push(format!("{rt:.1}s"));
            } else {
                row.push(format!("{rt:.1}s ({:.2}x)", rt / base[i]));
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["theta", "SP", "SE", "RD", "FP"], &rows)
    );
    println!("(slowdown vs theta=0: wide partitioning amplifies skew — SP and RD's spine degrade");
    println!(
        " ~5x at theta=1.2 while FP's narrow private buckets hold at 3x, flipping the ranking)"
    );
}

/// §2.3.3: a linear-pipeline step costs a constant delay; a bushy step
/// costs a delay proportional to operand size.
///
/// Measured by response-time differencing with the per-join processor
/// budget held constant (5 processors per join), so the added stage brings
/// its own capacity and the difference isolates the *step delay*:
/// lengthening a right-linear FP pipeline by one join adds a roughly
/// constant delay regardless of operand size, while adding a level to a
/// balanced bushy FP tree (joins of two intermediates) adds a delay that
/// scales with the operand size, because a bushy join's output ramp is the
/// product of its input ramps.
fn ablation_pipeline() {
    let params = SimParams::default();
    const PROCS_PER_JOIN: usize = 5;
    println!("== Ablation: per-step pipeline delay, linear vs bushy (FP, 5 procs/join) ==");

    // Linear: response time of a k-join right-linear pipeline.
    let rt_linear = |k: usize, n: u64| -> f64 {
        let tree = build(Shape::RightLinear, k + 1).expect("relations >= 2");
        simulate_tree(&tree, Strategy::FP, n, PROCS_PER_JOIN * k, &params)
            .expect("sim")
            .1
            .response_time
    };
    // Bushy: response time of a balanced tree over 2^d relations (depth d).
    let rt_bushy = |d: u32, n: u64| -> f64 {
        let tree = build(Shape::WideBushy, 1usize << d).expect("power of two");
        let joins = (1usize << d) - 1;
        simulate_tree(&tree, Strategy::FP, n, PROCS_PER_JOIN * joins, &params)
            .expect("sim")
            .1
            .response_time
    };

    let mut rows = Vec::new();
    for n in [5_000u64, 10_000, 20_000, 40_000] {
        let lin_step = (rt_linear(9, n) - rt_linear(5, n)) / 4.0;
        let bushy_step = rt_bushy(3, n) - rt_bushy(2, n);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", lin_step),
            format!("{:.2}", bushy_step),
        ]);
    }
    println!(
        "{}",
        format_table(&["tuples/rel", "linear step (s)", "bushy level (s)"], &rows)
    );
    println!("(linear step stays ~constant; the bushy level grows with operand size — [WiA93])");
}

/// Produces `BENCH_1.json`: the machine-readable perf baseline for this
/// machine (see `mj_bench::bench_json`). `--quick` shrinks the workload
/// for CI smoke validation.
fn emit_bench_json(quick: bool) {
    println!(
        "== BENCH_1.json: zero-copy perf baseline ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench_report(quick).expect("bench report");
    let hot = &report.pipelining_hot_path;
    println!(
        "pipelining hot path ({} workers): deep-copy {:.2}s ({:.0} tuples/s) -> shared {:.2}s ({:.0} tuples/s), speedup {:.2}x",
        hot.workers,
        hot.baseline_deep_copy.elapsed_s,
        hot.baseline_deep_copy.tuples_per_sec,
        hot.shared_zero_copy.elapsed_s,
        hot.shared_zero_copy.tuples_per_sec,
        hot.speedup,
    );
    let mut rows = Vec::new();
    for r in &report.strategies {
        rows.push(vec![
            r.strategy.clone(),
            format!("{:.1} ms", r.elapsed_s * 1e3),
            format!("{:.0}", r.tuples_per_sec),
            format!("{} KB", r.peak_table_bytes / 1024),
            r.result_tuples.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["strategy", "elapsed", "tuples/s", "peak table", "result"],
            &rows
        )
    );
    let json = report_to_json(&report);
    validate_report_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_quick.json"
    } else {
        "BENCH_1.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && hot.speedup < 1.5 {
        eprintln!(
            "WARNING: hot-path speedup {:.2}x below the 1.5x acceptance floor",
            hot.speedup
        );
    }
}

/// Produces `BENCH_2.json`: N-queries-in-flight throughput on the shared
/// worker-pool engine vs the same queries back-to-back (see
/// `mj_bench::bench_json::concurrent_comparison`).
fn emit_bench2_json(quick: bool) {
    println!(
        "== BENCH_2.json: concurrent-query scheduler baseline ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench2_report(quick).expect("bench2 report");
    let c = &report.concurrent;
    println!(
        "{} workers, {} x {}-relation FP queries (n={}, {} procs/query):",
        c.workers, c.queries, c.relations, c.tuples_per_relation, c.procs_per_query
    );
    println!(
        "back-to-back {:.3}s ({:.0} tuples/s) -> concurrent {:.3}s ({:.0} tuples/s), speedup {:.2}x",
        c.back_to_back.elapsed_s,
        c.back_to_back.tuples_per_sec,
        c.concurrent.elapsed_s,
        c.concurrent.tuples_per_sec,
        c.speedup,
    );
    println!(
        "worker threads spawned across all {} queries: {} (pool bound: {})",
        c.back_to_back.queries + c.concurrent.queries,
        c.worker_threads_spawned,
        c.workers,
    );
    assert_eq!(
        c.worker_threads_spawned, c.workers as u64,
        "the engine must never spawn beyond its fixed pool"
    );
    let json = bench2_to_json(&report);
    validate_bench2_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_2_quick.json"
    } else {
        "BENCH_2.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && c.speedup < 1.5 {
        eprintln!(
            "WARNING: concurrent speedup {:.2}x below the 1.5x acceptance floor",
            c.speedup
        );
    }
}

/// Produces `BENCH_3.json`: the cost-based planner's pick vs every fixed
/// strategy on the three query families (see
/// `mj_bench::bench_json::bench3_report`).
fn emit_bench3_json(quick: bool) {
    println!(
        "== BENCH_3.json: cost-based planner vs fixed strategies ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench3_report(quick).expect("bench3 report");
    let mut rows = Vec::new();
    for f in &report.families {
        rows.push(vec![
            f.family.clone(),
            f.planner_pick.clone(),
            format!("{:.2} ms", f.planner_elapsed_s * 1e3),
            format!("{} ({:.2} ms)", f.best_fixed, f.best_fixed_elapsed_s * 1e3),
            format!(
                "{} ({:.2} ms)",
                f.worst_fixed,
                f.worst_fixed_elapsed_s * 1e3
            ),
            format!("{:.2}", f.ratio_vs_best),
            format!("{:.2}", f.max_q_error),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "family",
                "planner pick",
                "planner",
                "best fixed",
                "worst fixed",
                "vs best",
                "q-err"
            ],
            &rows
        )
    );
    let json = bench3_to_json(&report);
    validate_bench3_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_3_quick.json"
    } else {
        "BENCH_3.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    for f in &report.families {
        if !quick && f.ratio_vs_best > 1.10 {
            eprintln!(
                "WARNING: planner pick on `{}` is {:.2}x the best fixed strategy \
                 (acceptance: within 10%)",
                f.family, f.ratio_vs_best
            );
        }
    }
}

/// Produces `BENCH_4.json`: time-to-first-batch vs full materialization
/// for an FP chain query through the session facade (see
/// `mj_bench::bench_json::session_comparison`).
fn emit_bench4_json(quick: bool) {
    println!(
        "== BENCH_4.json: session streaming latency ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench4_report(quick).expect("bench4 report");
    let s = &report.session;
    println!(
        "{}-relation {} chain (n={}, {} workers): first batch {:.2} ms, \
         full stream {:.2} ms, materialized {:.2} ms",
        s.relations,
        s.strategy,
        s.tuples_per_relation,
        s.workers,
        s.streamed.first_batch_s * 1e3,
        s.streamed.full_stream_s * 1e3,
        s.materialized_s * 1e3,
    );
    println!(
        "first-batch speedup: {:.2}x ({} batches, {} tuples streamed)",
        s.first_batch_speedup, s.streamed.batches, s.streamed.result_tuples,
    );
    let json = bench4_to_json(&report);
    validate_bench4_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_4_quick.json"
    } else {
        "BENCH_4.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && s.first_batch_speedup <= 1.0 {
        eprintln!(
            "WARNING: first batch ({:.2} ms) did not beat full materialization ({:.2} ms)",
            s.streamed.first_batch_s * 1e3,
            s.materialized_s * 1e3,
        );
    }
}

fn emit_bench5_json(quick: bool) {
    println!(
        "== BENCH_5.json: filter pushdown on a selective chain ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench5_report(quick).expect("bench5 report");
    let o = &report.operators;
    println!(
        "{}-relation chain (n={}, {} workers), query: {}",
        o.relations, o.tuples_per_relation, o.workers, o.query
    );
    println!(
        "pushdown on  ({}): {:.2} ms; pushdown off ({}): {:.2} ms -> {:.2}x \
         ({} result tuples)",
        o.pushdown_on.strategy,
        o.pushdown_on.elapsed_s * 1e3,
        o.pushdown_off.strategy,
        o.pushdown_off.elapsed_s * 1e3,
        o.pushdown_speedup,
        o.pushdown_on.result_tuples,
    );
    let json = bench5_to_json(&report);
    validate_bench5_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_5_quick.json"
    } else {
        "BENCH_5.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && o.pushdown_speedup < 1.5 {
        eprintln!(
            "WARNING: pushdown speedup {:.2}x below the 1.5x acceptance bar",
            o.pushdown_speedup
        );
    }
}

fn emit_bench6_json(quick: bool) {
    println!(
        "== BENCH_6.json: robustness guardrails ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench6_report(quick).expect("bench6 report");
    let o = &report.overhead;
    println!(
        "{}-relation {} chain (n={}, {} workers): guardrails off {:.2} ms, \
         on {:.2} ms -> overhead {:.3}x",
        o.relations,
        o.strategy,
        o.tuples_per_relation,
        o.workers,
        o.guardrails_off.elapsed_s * 1e3,
        o.guardrails_on.elapsed_s * 1e3,
        o.overhead_ratio,
    );
    let a = &report.admission;
    println!(
        "{} light (n={}) vs {} noisy (n={}) queries, max_concurrent={}, \
         noisy budget {} KB:",
        a.light_queries,
        a.light_tuples,
        a.noisy_queries,
        a.noisy_tuples,
        a.max_concurrent,
        a.noisy_budget_bytes / 1024,
    );
    println!(
        "light p99 unprotected {:.2} ms -> protected {:.2} ms ({:.2}x better, \
         {} noisy queries shed by budget)",
        a.unprotected.p99_s * 1e3,
        a.protected.p99_s * 1e3,
        a.p99_improvement,
        a.noisy_budget_aborts,
    );
    let json = bench6_to_json(&report);
    validate_bench6_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_6_quick.json"
    } else {
        "BENCH_6.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && report.overhead.overhead_ratio > 1.05 {
        eprintln!(
            "WARNING: guardrail overhead {:.3}x above the 1.05x acceptance cap",
            report.overhead.overhead_ratio
        );
    }
    if !quick && a.p99_improvement < 1.5 {
        eprintln!(
            "WARNING: noisy-neighbor p99 improvement {:.2}x below the 1.5x acceptance floor",
            a.p99_improvement
        );
    }
}

fn emit_bench8_json(quick: bool) {
    println!(
        "== BENCH_8.json: SIMD kernels + late materialization ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = mj_bench::bench8_report(quick).expect("bench8 report");
    let s = &report.simd_kernels;
    println!(
        "simd kernels over {} elements (x{} passes, best of {}, avx2 {}):",
        s.elements,
        s.passes,
        s.reps,
        if s.simd_enabled { "on" } else { "off" },
    );
    for k in &s.kernels {
        println!(
            "  {:<12} scalar {:>8.3} ms, simd {:>8.3} ms -> {:.2}x (ships {})",
            k.name,
            k.scalar_s * 1e3,
            k.simd_s * 1e3,
            k.speedup,
            k.shipped,
        );
    }
    let l = &report.late_materialization;
    println!(
        "late materialization, {}-relation chain x {} rows ({} payload cols): \
         eager {:.2} ms, late {:.2} ms -> {:.2}x ({} rows both)",
        l.relations,
        l.tuples_per_relation,
        l.payload_cols,
        l.eager.elapsed_s * 1e3,
        l.late.elapsed_s * 1e3,
        l.late_speedup,
        l.late.result_tuples,
    );
    let r = &report.reruns;
    println!(
        "regression re-runs: pushdown {:.2}x, guardrail overhead {:.3}x, join kernel {:.2}x",
        r.pushdown.pushdown_speedup, r.guardrail_overhead.overhead_ratio, r.join_kernels.speedup,
    );
    let json = mj_bench::bench8_to_json(&report);
    mj_bench::validate_bench8_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_8_quick.json"
    } else {
        "BENCH_8.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick {
        if l.late_speedup < 1.3 {
            eprintln!(
                "WARNING: late-materialization speedup {:.2}x below the 1.3x acceptance floor",
                l.late_speedup
            );
        }
        if s.simd_enabled {
            for k in &s.kernels {
                if k.shipped == "simd" && k.speedup < 1.0 {
                    eprintln!(
                        "WARNING: shipped SIMD kernel `{}` at {:.2}x, below scalar",
                        k.name, k.speedup
                    );
                }
            }
        }
        // Within 5% of the BENCH_5/6/7 acceptance bars.
        if r.pushdown.pushdown_speedup < 1.5 * 0.95 {
            eprintln!(
                "WARNING: pushdown re-run {:.2}x regressed past the 5% band",
                r.pushdown.pushdown_speedup
            );
        }
        if r.guardrail_overhead.overhead_ratio > 1.05 / 0.95 {
            eprintln!(
                "WARNING: guardrail overhead re-run {:.3}x regressed past the 5% band",
                r.guardrail_overhead.overhead_ratio
            );
        }
        if r.join_kernels.speedup < 1.3 * 0.95 {
            eprintln!(
                "WARNING: join kernel re-run {:.2}x regressed past the 5% band",
                r.join_kernels.speedup
            );
        }
    }
}

fn emit_bench9_json(quick: bool) {
    println!(
        "== BENCH_9.json: query server over the wire ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = mj_bench::bench9_report(quick).expect("bench9 report");
    println!(
        "{}-relation chain (n={}), startup cost {} ms per process:",
        report.relations, report.tuples_per_relation, report.startup_cost_ms,
    );
    let b = &report.back_to_back;
    println!(
        "back-to-back: {} queries over 1 connection in {:.2}s -> {:.1} qps \
         (p50 {:.1} ms, p99 {:.1} ms)",
        b.queries, b.elapsed_s, b.qps, b.p50_ms, b.p99_ms,
    );
    let c = &report.concurrent;
    println!(
        "concurrent: {} clients x {} queries in {:.2}s -> {:.1} qps \
         (p50 {:.1} ms, p99 {:.1} ms) -> {:.2}x over back-to-back",
        c.clients,
        c.queries / c.clients.max(1),
        c.elapsed_s,
        c.qps,
        c.p50_ms,
        c.p99_ms,
        report.concurrency_speedup,
    );
    let n = &report.noisy;
    println!(
        "noisy wire neighbors: {} clients at {} KB budget, light p99 {:.1} ms \
         vs idle p50 {:.1} ms -> {:.2}x ({} noisy queries shed)",
        n.noisy_clients,
        n.noisy_budget_bytes / 1024,
        n.light_p99_ms,
        n.idle_p50_ms,
        n.p99_vs_idle_p50,
        n.noisy_budget_aborts,
    );
    let l = &report.liveness;
    println!(
        "liveness: {}/{} engine workers alive, {}/{} conn-worker probes answered, \
         {} panics contained",
        l.engine_workers_alive,
        l.engine_workers,
        l.post_load_probes_ok,
        l.conn_workers,
        l.panics_contained,
    );
    let g = &report.guardrail_rerun;
    // The metrics layer proves its cost against BENCH_6's checked-in
    // guardrail baseline: the re-run ratio must stay within 1.05x of it.
    let bench6_baseline = std::fs::read_to_string("BENCH_6.json")
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .and_then(|v: serde::JsonValue| {
            match v.get("overhead").and_then(|o| o.get("overhead_ratio")) {
                Some(serde::JsonValue::Float(f)) => Some(*f),
                Some(serde::JsonValue::Int(i)) => Some(*i as f64),
                _ => None,
            }
        });
    match bench6_baseline {
        Some(baseline) => println!(
            "guardrail overhead re-run (metrics wired in): {:.3}x vs BENCH_6 \
             baseline {:.3}x -> {:.3}x the baseline",
            g.overhead_ratio,
            baseline,
            g.overhead_ratio / baseline,
        ),
        None => println!(
            "guardrail overhead re-run (metrics wired in): {:.3}x \
             (no BENCH_6.json baseline in cwd)",
            g.overhead_ratio
        ),
    }
    let json = mj_bench::bench9_to_json(&report);
    mj_bench::validate_bench9_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_9_quick.json"
    } else {
        "BENCH_9.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick {
        if report.concurrency_speedup < 1.5 {
            eprintln!(
                "WARNING: concurrent qps only {:.2}x back-to-back, below the 1.5x floor",
                report.concurrency_speedup
            );
        }
        if n.p99_vs_idle_p50 > 2.0 {
            eprintln!(
                "WARNING: light p99 under noise {:.2}x idle p50, above the 2x ceiling",
                n.p99_vs_idle_p50
            );
        }
        let baseline = bench6_baseline.unwrap_or(1.0);
        if g.overhead_ratio > baseline * 1.05 {
            eprintln!(
                "WARNING: guardrail+metrics overhead {:.3}x exceeds 1.05x the \
                 BENCH_6 baseline ({:.3}x)",
                g.overhead_ratio, baseline
            );
        }
        if l.engine_workers_alive != l.engine_workers || l.post_load_probes_ok != l.conn_workers {
            eprintln!("WARNING: worker liveness check failed after the concurrent hammer");
        }
    }
}

fn emit_bench10_json(quick: bool) {
    println!(
        "== BENCH_10.json: prepared statements + binary wire format ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = mj_bench::bench10_report(quick).expect("bench10 report");
    let p = &report.prepared;
    println!(
        "prepared vs ad-hoc, {}-relation chain (n={}): ad-hoc {:.1} qps \
         (p50 {:.2} ms), prepared {:.1} qps (p50 {:.2} ms) -> {:.2}x \
         ({} cache hits, {} misses, {} evictions)",
        p.relations,
        p.tuples_per_relation,
        p.adhoc.qps,
        p.adhoc.p50_ms,
        p.prepared.qps,
        p.prepared.p50_ms,
        p.speedup,
        p.plan_cache_hits,
        p.plan_cache_misses,
        p.plan_cache_evictions,
    );
    let w = &report.wire_format;
    println!(
        "json vs binary frames, {}-relation chain (n={}, ~{} rows/query): \
         json {:.0} rows/s, bin {:.0} rows/s -> {:.2}x",
        w.relations,
        w.tuples_per_relation,
        w.rows_per_query,
        w.json.rows_per_s,
        w.bin.rows_per_s,
        w.bin_speedup,
    );
    let r = &report.bench9_rerun;
    println!(
        "BENCH_9 rerun on the new serving path: back-to-back {:.1} qps, \
         concurrent {:.1} qps -> {:.2}x, light p99 under noise {:.2}x idle p50",
        r.back_to_back.qps, r.concurrent.qps, r.concurrency_speedup, r.noisy.p99_vs_idle_p50,
    );
    let json = mj_bench::bench10_to_json(&report);
    mj_bench::validate_bench10_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_10_quick.json"
    } else {
        "BENCH_10.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick {
        if p.speedup < 2.0 {
            eprintln!(
                "WARNING: prepared execution only {:.2}x ad-hoc, below the 2.0x floor",
                p.speedup
            );
        }
        if w.bin_speedup < 1.5 {
            eprintln!(
                "WARNING: binary frames only {:.2}x JSON throughput, below the 1.5x floor",
                w.bin_speedup
            );
        }
    }
}

fn emit_bench7_json(quick: bool) {
    println!(
        "== BENCH_7.json: columnar vs row-path kernels ({}) ==",
        if quick { "quick" } else { "full" }
    );
    let report = bench7_report(quick).expect("bench7 report");
    let k = &report.join_kernels;
    println!(
        "join kernel, n={} ({}-row batches, best of {}): row path {:.2} ms, \
         columnar {:.2} ms -> {:.2}x ({} matches both)",
        k.rows,
        k.batch_rows,
        k.reps,
        k.row_path.elapsed_s * 1e3,
        k.columnar.elapsed_s * 1e3,
        k.speedup,
        k.row_path.matches,
    );
    let p = &report.pushdown;
    println!(
        "pushdown chain on the columnar engine: on {:.2} ms, off {:.2} ms -> {:.2}x",
        p.pushdown_on.elapsed_s * 1e3,
        p.pushdown_off.elapsed_s * 1e3,
        p.pushdown_speedup,
    );
    let o = &report.guardrail_overhead;
    println!(
        "guardrails on the columnar engine: off {:.2} ms, on {:.2} ms -> overhead {:.3}x",
        o.guardrails_off.elapsed_s * 1e3,
        o.guardrails_on.elapsed_s * 1e3,
        o.overhead_ratio,
    );
    let json = bench7_to_json(&report);
    validate_bench7_json(&json).expect("schema");
    // Quick smoke runs must never clobber the checked-in full baseline.
    let path = if quick {
        "BENCH_7_quick.json"
    } else {
        "BENCH_7.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("[baseline written to {path}]");
    if !quick && k.speedup < 1.3 {
        eprintln!(
            "WARNING: columnar kernel speedup {:.2}x below the 1.3x acceptance floor",
            k.speedup
        );
    }
    if !quick && p.pushdown_speedup < 1.5 {
        eprintln!(
            "WARNING: pushdown speedup {:.2}x below the 1.5x acceptance bar",
            p.pushdown_speedup
        );
    }
    if !quick && o.overhead_ratio > 1.05 {
        eprintln!(
            "WARNING: guardrail overhead {:.3}x above the 1.05x acceptance cap",
            o.overhead_ratio
        );
    }
}

/// The four strategies on the real threaded engine (host-scale sanity).
fn real_engine() {
    println!("== Real engine: 10-relation regular query, n=2000, 4 logical processors ==");
    let catalog = Arc::new(Catalog::new());
    let n = 2000usize;
    let gen = WisconsinGenerator::new(n, 42);
    for (name, rel) in gen.generate_named("R", 10) {
        catalog.register(name, rel);
    }
    let mut rows = Vec::new();
    let mut reference: HashMap<Shape, mj_relalg::Relation> = HashMap::new();
    for shape in [Shape::LeftLinear, Shape::WideBushy, Shape::RightLinear] {
        let tree = build(shape, 10).expect("shape");
        let xra = query::to_xra(&tree, 3, mj_relalg::JoinAlgorithm::Simple);
        reference.insert(shape, xra.eval(catalog.as_ref()).expect("oracle"));
        for strategy in Strategy::ALL {
            let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
            let costs = tree_costs(&tree, &cards, &CostModel::default());
            let mut input = GeneratorInput::new(&tree, &cards, &costs, 4);
            input.allow_oversubscribe = true;
            let plan = generate(strategy, &input).expect("plan");
            let binding = QueryBinding::regular(&tree, catalog.as_ref()).expect("binding");
            let outcome =
                run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default()).expect("run");
            let ok = outcome.relation.multiset_eq(&reference[&shape]);
            rows.push(vec![
                shape.label().to_string(),
                strategy.label().to_string(),
                format!("{:.1} ms", outcome.elapsed.as_secs_f64() * 1e3),
                outcome.metrics.processes.to_string(),
                outcome.metrics.streams.to_string(),
                outcome.relation.len().to_string(),
                if ok { "ok".into() } else { "MISMATCH".into() },
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "shape",
                "strategy",
                "elapsed",
                "processes",
                "streams",
                "result",
                "vs oracle"
            ],
            &rows
        )
    );
}
