//! Machine-readable benchmark baselines (`BENCH_<n>.json`).
//!
//! Emitted by `repro bench [--quick]`, one file per perf PR, so the
//! repository accumulates a performance trajectory that later PRs can
//! extend and compare against.
//!
//! Two measurement families:
//!
//! * **Pipelining hot path, before/after** — the same 4-worker
//!   producer/router/pipelining-join dataflow run twice: once with the
//!   seed's data movement (deep-copied tuples, `concat().project()`
//!   projection, a fresh `Vec` per flushed batch) and once with the
//!   zero-copy path (shared/inline tuples, scratch projection, pooled
//!   batch buffers). The ratio is the representation change in isolation,
//!   measured on this machine, by this binary.
//! * **Real engine per strategy** — wall clock, tuples/sec, and peak
//!   logical hash-table bytes for the four strategies on the threaded
//!   engine, recording that `est_bytes` still reports the paper's
//!   *logical* memory (RD < FP must hold even though tuples are shared).

use std::sync::Arc;
use std::time::Instant;

use mj_core::generator::{generate, GeneratorInput};
use mj_core::plan_ir::ParallelPlan;
use mj_core::strategy::Strategy;
use mj_exec::stream::{operand_channels, Msg, Router};
use mj_exec::{run_plan, Engine, ExecConfig, ExecOutcome, QueryBinding};
use mj_join::{JoinTable, PipeliningJoinState};
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::query::regular_join_spec;
use mj_plan::shapes::{build, Shape};
use mj_relalg::column::ColumnLayout;
use mj_relalg::{Result, Tuple};
use mj_storage::{Catalog, WisconsinGenerator};
use serde::{JsonValue, Serialize};

/// Workers (producer and consumer instances) in the hot-path benchmark;
/// the acceptance floor is 4.
pub const HOT_PATH_WORKERS: usize = 4;

/// One timed mode of the hot-path benchmark.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HotPathRun {
    /// Tuples pushed through the dataflow.
    pub tuples: u64,
    /// Result tuples produced by the joins.
    pub matches: u64,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Input tuples per second.
    pub tuples_per_sec: f64,
}

/// Before/after measurement of the pipelining hot path.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HotPathComparison {
    /// Producer/consumer worker instances.
    pub workers: usize,
    /// Seed-equivalent data movement: deep copies everywhere.
    pub baseline_deep_copy: HotPathRun,
    /// Zero-copy data movement: shared tuples, scratch projection, pooled
    /// batches.
    pub shared_zero_copy: HotPathRun,
    /// `shared_zero_copy.tuples_per_sec / baseline_deep_copy.tuples_per_sec`.
    pub speedup: f64,
}

/// One strategy measured on the real threaded engine.
#[derive(Clone, Debug, Serialize)]
pub struct StrategyRun {
    /// Strategy label (SP/SE/RD/FP).
    pub strategy: String,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Total tuples consumed by all operators per second.
    pub tuples_per_sec: f64,
    /// Peak logical hash-table bytes summed across instances.
    pub peak_table_bytes: u64,
    /// Result cardinality (must equal tuples per relation).
    pub result_tuples: u64,
}

/// The whole `BENCH_1.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run (written to
    /// `BENCH_quick.json`, never to the checked-in baseline).
    pub quick: bool,
    /// Tuples per relation used by the engine runs.
    pub tuples_per_relation: u64,
    /// Relations in the engine query.
    pub relations: usize,
    /// Logical processors given to the engine.
    pub processors: usize,
    /// Channel batch size.
    pub batch_size: usize,
    /// The isolated hot-path comparison.
    pub pipelining_hot_path: HotPathComparison,
    /// Full-engine runs, one per strategy.
    pub strategies: Vec<StrategyRun>,
}

/// How tuples move through the hot-path benchmark.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Movement {
    /// The seed representation's behaviour: every hop deep-copies, every
    /// projection materializes the concatenated row, every flush allocates
    /// a fresh batch buffer.
    DeepCopy,
    /// The zero-copy path as the engine now runs it.
    Shared,
}

/// Runs a `workers`-way partition → route → pipelining-join dataflow over
/// `n` build and `n` probe tuples of arity 6 (wide enough to defeat the
/// inline fast path, so `DeepCopy` vs `Shared` isolates payload sharing;
/// the projection output is arity 3 and exercises the inline path in
/// `Shared` mode).
fn hot_path(n: usize, workers: usize, movement: Movement) -> Result<HotPathRun> {
    let spec = regular_join_spec(6);
    let gen = WisconsinGenerator::new(n, 17);
    let wide = |stream: usize| -> Vec<Tuple> {
        // Arity-6 all-int rows: unique1, unique2, and four payload ints.
        let base = gen.generate(stream);
        base.iter()
            .map(|t| {
                let u1 = t.int(0).expect("unique1");
                let u2 = t.int(1).expect("unique2");
                Tuple::from_ints(&[u1, u2, u1, u2, u1, u2])
            })
            .collect()
    };
    let left = wide(0);
    let right = wide(1);

    let started = Instant::now();

    // Partition the build side by index (Shared) or row-by-row deep copy
    // (DeepCopy), mirroring the seed's `split_by` clone-per-row.
    let mut build_parts: Vec<Vec<Tuple>> = (0..workers).map(|_| Vec::new()).collect();
    for t in &left {
        let dest = mj_relalg::hash::bucket_of(t.int(0)?, workers);
        build_parts[dest].push(match movement {
            Movement::DeepCopy => t.deep_clone(),
            Movement::Shared => t.clone(),
        });
    }

    let (txs, rxs, pool) = operand_channels(
        workers,
        workers,
        ExecConfig::default().channel_capacity,
        ColumnLayout::ints(6),
    );
    let batch = ExecConfig::default().batch_size;

    // Consumers: one pipelining-join instance per worker; the build side
    // is immediate, the probe side streams.
    let consumers: Vec<_> = rxs
        .into_iter()
        .zip(build_parts)
        .map(|(rx, build)| {
            let spec = spec.clone();
            std::thread::spawn(move || -> Result<(u64, u64)> {
                let mut out = Vec::with_capacity(batch);
                let mut seen = 0u64;
                let mut matches = 0u64;
                match movement {
                    Movement::Shared => {
                        let mut state = PipeliningJoinState::with_capacity(spec, build.len(), 0);
                        for t in build {
                            state.push_left(t, &mut out)?;
                        }
                        matches += out.len() as u64;
                        out.clear();
                        let mut remaining = workers;
                        while remaining > 0 {
                            match rx.recv() {
                                Ok(Msg::Batch(mut b)) => {
                                    for t in b.drain() {
                                        seen += 1;
                                        state.push_right(t, &mut out)?;
                                        if out.len() >= batch {
                                            matches += out.len() as u64;
                                            out.clear();
                                        }
                                    }
                                }
                                Ok(Msg::End) => remaining -= 1,
                                Err(_) => break,
                            }
                        }
                    }
                    Movement::DeepCopy => {
                        // Seed semantics, spelled out against the raw join
                        // table: deep-copy on insert, probe emitting via
                        // concat().project(), a second table fed with deep
                        // copies — exactly what the pre-sharing
                        // PipeliningJoinState did physically.
                        let mut left_table = JoinTable::with_capacity(build.len());
                        let mut right_table = JoinTable::new();
                        for t in build {
                            left_table.insert(t.int(spec.left_key)?, t.deep_clone());
                        }
                        let mut remaining = workers;
                        while remaining > 0 {
                            match rx.recv() {
                                Ok(Msg::Batch(b)) => {
                                    for t in &b.to_tuples() {
                                        seen += 1;
                                        let key = t.int(spec.right_key)?;
                                        for l in left_table.probe(key) {
                                            out.push(l.concat(t).project(spec.projection.cols())?);
                                        }
                                        right_table.insert(key, t.deep_clone());
                                        if out.len() >= batch {
                                            matches += out.len() as u64;
                                            out.clear();
                                        }
                                    }
                                }
                                Ok(Msg::End) => remaining -= 1,
                                Err(_) => break,
                            }
                        }
                    }
                }
                matches += out.len() as u64;
                Ok((seen, matches))
            })
        })
        .collect();

    // Producers: route the probe side, split `workers` ways.
    // Exactly `workers` producer slices (possibly empty), so the End
    // protocol's producer count always matches.
    let mut right_parts: Vec<Vec<Tuple>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, t) in right.iter().enumerate() {
        right_parts[i % workers].push(t.clone());
    }
    let producers: Vec<_> = right_parts
        .into_iter()
        .map(|part| {
            let txs = txs.clone();
            let pool = pool.clone();
            std::thread::spawn(move || -> Result<()> {
                match movement {
                    Movement::Shared => {
                        let mut router = Router::new(txs, 0, batch, pool);
                        for t in part {
                            router.route(t)?;
                        }
                        router.finish()?;
                    }
                    Movement::DeepCopy => {
                        // Seed semantics: per-destination buffers, a deep
                        // copy per routed tuple, and a *fresh* Vec per
                        // flushed batch.
                        let mut buffers: Vec<Vec<Tuple>> =
                            txs.iter().map(|_| Vec::with_capacity(batch)).collect();
                        for t in part {
                            let dest = mj_relalg::hash::bucket_of(t.int(0)?, txs.len());
                            buffers[dest].push(t.deep_clone());
                            if buffers[dest].len() >= batch {
                                let full = std::mem::replace(
                                    &mut buffers[dest],
                                    Vec::with_capacity(batch),
                                );
                                txs[dest]
                                    .send(Msg::Batch(mj_exec::stream::Batch::from_tuples(&full)?))
                                    .map_err(|_| {
                                        mj_relalg::RelalgError::InvalidPlan(
                                            "consumer hung up".into(),
                                        )
                                    })?;
                            }
                        }
                        for (dest, buf) in buffers.into_iter().enumerate() {
                            if !buf.is_empty() {
                                txs[dest]
                                    .send(Msg::Batch(mj_exec::stream::Batch::from_tuples(&buf)?))
                                    .map_err(|_| {
                                        mj_relalg::RelalgError::InvalidPlan(
                                            "consumer hung up".into(),
                                        )
                                    })?;
                            }
                        }
                        for tx in &txs {
                            tx.send(Msg::End).map_err(|_| {
                                mj_relalg::RelalgError::InvalidPlan("consumer hung up".into())
                            })?;
                        }
                    }
                }
                Ok(())
            })
        })
        .collect();
    drop(txs);

    for p in producers {
        p.join().expect("producer thread")?;
    }
    let mut seen = 0u64;
    let mut matches = 0u64;
    for c in consumers {
        let (s, m) = c.join().expect("consumer thread")?;
        seen += s;
        matches += m;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total = (left.len() + right.len()) as u64;
    debug_assert_eq!(seen, right.len() as u64);
    Ok(HotPathRun {
        tuples: total,
        matches,
        elapsed_s: elapsed,
        tuples_per_sec: total as f64 / elapsed,
    })
}

/// Measures the hot path in both modes, best-of-`reps`.
pub fn hot_path_comparison(n: usize, reps: usize) -> Result<HotPathComparison> {
    let best = |movement: Movement| -> Result<HotPathRun> {
        let mut best: Option<HotPathRun> = None;
        for _ in 0..reps.max(1) {
            let run = hot_path(n, HOT_PATH_WORKERS, movement)?;
            if best.map(|b| run.elapsed_s < b.elapsed_s).unwrap_or(true) {
                best = Some(run);
            }
        }
        Ok(best.expect("at least one rep"))
    };
    let baseline = best(Movement::DeepCopy)?;
    let shared = best(Movement::Shared)?;
    Ok(HotPathComparison {
        workers: HOT_PATH_WORKERS,
        baseline_deep_copy: baseline,
        shared_zero_copy: shared,
        speedup: shared.tuples_per_sec / baseline.tuples_per_sec,
    })
}

/// Runs the four strategies on the real engine (right-linear regular
/// query) and reports wall clock, throughput, and peak table bytes.
pub fn strategy_runs(relations: usize, n: usize, processors: usize) -> Result<Vec<StrategyRun>> {
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", relations) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::RightLinear, relations).expect("tree shape");
    let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let binding = QueryBinding::regular(&tree, catalog.as_ref())?;
    let mut out = Vec::new();
    for strategy in Strategy::ALL {
        let mut input = GeneratorInput::new(&tree, &cards, &costs, processors);
        input.allow_oversubscribe = processors < tree.join_count();
        let plan = generate(strategy, &input)?;
        let outcome = run_plan(&plan, &binding, catalog.as_ref(), &ExecConfig::default())?;
        let consumed: u64 = outcome
            .metrics
            .ops
            .iter()
            .map(|o| o.tuples_in[0] + o.tuples_in[1])
            .sum();
        let peak: u64 = outcome.metrics.ops.iter().map(|o| o.table_bytes).sum();
        out.push(StrategyRun {
            strategy: strategy.label().to_string(),
            elapsed_s: outcome.elapsed.as_secs_f64(),
            tuples_per_sec: consumed as f64 / outcome.elapsed.as_secs_f64(),
            peak_table_bytes: peak,
            result_tuples: outcome.relation.len() as u64,
        });
    }
    Ok(out)
}

/// Produces the full report. `quick` shrinks the workload for CI smoke
/// runs; the checked-in baseline uses the full size.
pub fn bench_report(quick: bool) -> Result<BenchReport> {
    let (hot_n, reps, n, relations, processors) = if quick {
        (20_000, 1, 2_000, 5, 4)
    } else {
        (200_000, 3, 20_000, 10, 8)
    };
    Ok(BenchReport {
        bench: 1,
        quick,
        tuples_per_relation: n as u64,
        relations,
        processors,
        batch_size: ExecConfig::default().batch_size,
        pipelining_hot_path: hot_path_comparison(hot_n, reps)?,
        strategies: strategy_runs(relations, n, processors)?,
    })
}

/// One timed mode of the concurrency benchmark.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ConcurrentRun {
    /// Queries executed.
    pub queries: u64,
    /// Tuples consumed by all operators across all queries.
    pub tuples: u64,
    /// Wall-clock seconds for the whole set.
    pub elapsed_s: f64,
    /// Operator-consumed tuples per second.
    pub tuples_per_sec: f64,
}

/// N-queries-in-flight throughput on one shared engine vs the same
/// queries run back-to-back — the worker-pool scheduler's reason to exist.
#[derive(Clone, Debug, Serialize)]
pub struct ConcurrentComparison {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Queries in flight.
    pub queries: usize,
    /// Relations per query.
    pub relations: usize,
    /// Tuples per relation.
    pub tuples_per_relation: u64,
    /// Logical processors per query plan (kept small so a single query
    /// cannot saturate the pool by itself).
    pub procs_per_query: usize,
    /// Per-operation-process startup cost in milliseconds, set to the
    /// simulator's PRISMA-calibrated `t_init`. Startup is the §3.5
    /// overhead the shared pool exists to hide: while one query's
    /// processes initialize, the workers run other queries' tuples. Set
    /// to 0 and back-to-back ≈ concurrent on a single-core host (the
    /// pool is already saturated); on multicore hosts concurrency
    /// additionally overlaps execution.
    pub startup_cost_ms: f64,
    /// The same engine, queries issued one at a time.
    pub back_to_back: ConcurrentRun,
    /// All queries issued at once from separate client threads.
    pub concurrent: ConcurrentRun,
    /// `concurrent.tuples_per_sec / back_to_back.tuples_per_sec`.
    pub speedup: f64,
    /// Worker threads spawned by the engine over the whole benchmark —
    /// must equal `workers` no matter how many queries ran.
    pub worker_threads_spawned: u64,
}

/// The whole `BENCH_2.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct Bench2Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// The concurrency scenario.
    pub concurrent: ConcurrentComparison,
}

fn consumed_tuples(outcome: &ExecOutcome) -> u64 {
    outcome
        .metrics
        .ops
        .iter()
        .map(|o| o.tuples_in[0] + o.tuples_in[1])
        .sum()
}

/// Measures N pipelining queries through one shared engine, back-to-back
/// and then concurrently. Every query is FP (all edges live streams) on a
/// deliberately small logical processor count, so one query leaves pool
/// headroom; each operation process pays the simulator's PRISMA-calibrated
/// startup cost (`SimParams::default().t_init`, §3.5). Back-to-back, every
/// query's startup stalls the whole pool; concurrently, the pool hides one
/// query's startup behind the others' tuple work — and on multicore hosts
/// additionally overlaps execution.
pub fn concurrent_comparison(
    relations: usize,
    n: usize,
    workers: usize,
    queries: usize,
    reps: usize,
) -> Result<ConcurrentComparison> {
    const PROCS_PER_QUERY: usize = 1;
    let startup = std::time::Duration::from_secs_f64(mj_sim::SimParams::default().t_init);
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 23).generate_named("R", relations) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::RightLinear, relations).expect("tree shape");
    let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let binding = QueryBinding::regular(&tree, catalog.as_ref())?;
    let mut input = GeneratorInput::new(&tree, &cards, &costs, PROCS_PER_QUERY);
    input.allow_oversubscribe = true;
    let plan: ParallelPlan = generate(Strategy::FP, &input)?;

    let engine = Engine::new(
        catalog.clone(),
        ExecConfig {
            workers,
            startup_cost: Some(startup),
            ..ExecConfig::default()
        },
    )?;

    // Warm-up: fill allocator/page caches so both modes measure steady
    // state.
    consumed_tuples(&engine.run(&plan, &binding)?);

    let back_to_back = |queries: usize| -> Result<ConcurrentRun> {
        let started = Instant::now();
        let mut tuples = 0u64;
        for _ in 0..queries {
            tuples += consumed_tuples(&engine.run(&plan, &binding)?);
        }
        let elapsed = started.elapsed().as_secs_f64();
        Ok(ConcurrentRun {
            queries: queries as u64,
            tuples,
            elapsed_s: elapsed,
            tuples_per_sec: tuples as f64 / elapsed,
        })
    };
    let concurrent = |queries: usize| -> Result<ConcurrentRun> {
        let started = Instant::now();
        let mut tuples = 0u64;
        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = (0..queries)
                .map(|_| {
                    let engine = &engine;
                    let plan = &plan;
                    let binding = &binding;
                    scope.spawn(move || engine.run(plan, binding).map(|o| consumed_tuples(&o)))
                })
                .collect();
            for h in handles {
                tuples += h.join().expect("client thread")?;
            }
            Ok(())
        })?;
        let elapsed = started.elapsed().as_secs_f64();
        Ok(ConcurrentRun {
            queries: queries as u64,
            tuples,
            elapsed_s: elapsed,
            tuples_per_sec: tuples as f64 / elapsed,
        })
    };

    // Best-of-reps for both modes (same discipline as the hot-path bench).
    let mut best_seq: Option<ConcurrentRun> = None;
    let mut best_conc: Option<ConcurrentRun> = None;
    for _ in 0..reps.max(1) {
        let s = back_to_back(queries)?;
        if best_seq.map(|b| s.elapsed_s < b.elapsed_s).unwrap_or(true) {
            best_seq = Some(s);
        }
        let c = concurrent(queries)?;
        if best_conc.map(|b| c.elapsed_s < b.elapsed_s).unwrap_or(true) {
            best_conc = Some(c);
        }
    }
    let back_to_back = best_seq.expect("at least one rep");
    let concurrent = best_conc.expect("at least one rep");
    // Per-pool count (not the process-global spawn counter, which other
    // pools in the same process would race): the engine's pool holds
    // exactly this many threads for its whole lifetime.
    let spawned = engine.pool().threads() as u64;

    Ok(ConcurrentComparison {
        workers,
        queries,
        relations,
        tuples_per_relation: n as u64,
        procs_per_query: PROCS_PER_QUERY,
        startup_cost_ms: startup.as_secs_f64() * 1e3,
        back_to_back,
        concurrent,
        speedup: concurrent.tuples_per_sec / back_to_back.tuples_per_sec,
        worker_threads_spawned: spawned,
    })
}

/// Produces the `BENCH_2.json` report: 4 pipelining queries on a 4-worker
/// shared engine (the acceptance configuration). `quick` shrinks the
/// workload for CI smoke runs.
pub fn bench2_report(quick: bool) -> Result<Bench2Report> {
    let (relations, n, reps) = if quick { (3, 2_000, 1) } else { (3, 6_000, 3) };
    Ok(Bench2Report {
        bench: 2,
        quick,
        concurrent: concurrent_comparison(relations, n, 4, 4, reps)?,
    })
}

/// Renders a `BENCH_2.json` report as pretty-enough JSON.
pub fn bench2_to_json(report: &Bench2Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("\"concurrent\":{", "\n\"concurrent\":{\n  ")
        .replace("\"back_to_back\":", "\n  \"back_to_back\":")
        .replace(
            "\"concurrent\":{\n  \"queries\"",
            "\n  \"concurrent\":{\"queries\"",
        )
        .replace("\"speedup\":", "\n  \"speedup\":")
        .replace("{\"bench\"", "{\n\"bench\"")
}

/// Validates the schema of an emitted `BENCH_2.json` (CI smoke run).
pub fn validate_bench2_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "concurrent"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let c = v.get("concurrent").expect("checked");
    for key in [
        "workers",
        "queries",
        "relations",
        "tuples_per_relation",
        "procs_per_query",
        "startup_cost_ms",
        "back_to_back",
        "concurrent",
        "speedup",
        "worker_threads_spawned",
    ] {
        if c.get(key).is_none() {
            return Err(format!("missing key `concurrent.{key}`"));
        }
    }
    for mode in ["back_to_back", "concurrent"] {
        let m = c.get(mode).expect("checked");
        for key in ["queries", "tuples", "elapsed_s", "tuples_per_sec"] {
            if m.get(key).is_none() {
                return Err(format!("missing key `concurrent.{mode}.{key}`"));
            }
        }
    }
    Ok(())
}

/// One fixed strategy measured against the planner on one query family.
#[derive(Clone, Debug, Serialize)]
pub struct FixedStrategyRun {
    /// Strategy label (SP/SE/RD/FP).
    pub strategy: String,
    /// The planner's estimated schedule cost for this strategy's best
    /// candidate (§4.3 cost units).
    pub est_cost: f64,
    /// Best (minimum) wall-clock seconds over the benchmark repetitions.
    pub elapsed_s: f64,
}

/// Planner pick vs the fixed-strategy grid on one query family.
#[derive(Clone, Debug, Serialize)]
pub struct PlannerFamilyRun {
    /// Family label (chain/star/skewed).
    pub family: String,
    /// Relations in the query.
    pub relations: usize,
    /// Base relation size.
    pub tuples: usize,
    /// The strategy the planner picked.
    pub planner_pick: String,
    /// The planner's estimated cost of its pick.
    pub planner_est_cost: f64,
    /// Best (minimum) wall-clock seconds of the planner's plan.
    pub planner_elapsed_s: f64,
    /// Every fixed strategy, measured on the same engine.
    pub strategies: Vec<FixedStrategyRun>,
    /// Fastest fixed strategy (measured).
    pub best_fixed: String,
    /// Its best wall-clock seconds.
    pub best_fixed_elapsed_s: f64,
    /// Slowest fixed strategy (measured).
    pub worst_fixed: String,
    /// Its best wall-clock seconds.
    pub worst_fixed_elapsed_s: f64,
    /// `planner_elapsed_s / best_fixed_elapsed_s` — the acceptance metric
    /// (<= 1.10 means the planner is within 10% of the best fixed
    /// strategy).
    pub ratio_vs_best: f64,
    /// Result cardinality (identical across all plans, engine-verified).
    pub result_tuples: u64,
    /// Worst per-operator cardinality q-error of the planner's plan.
    pub max_q_error: f64,
}

/// The whole `BENCH_3.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct Bench3Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Logical processors per plan.
    pub processors: usize,
    /// Repetitions per measurement (best-of-reps minimum taken).
    pub reps: usize,
    /// One entry per query family.
    pub families: Vec<PlannerFamilyRun>,
}

fn best_elapsed(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Benchmarks the planner's pick against every fixed strategy on one
/// query family. All plans run the planner's phase-1 tree selection (a
/// fixed strategy still gets the planner-chosen tree and allocation for
/// that strategy), so the comparison isolates *strategy choice*.
fn planner_family_run(
    family: mj_exec::QueryFamily,
    k: usize,
    n: usize,
    processors: usize,
    reps: usize,
    seed: u64,
) -> Result<PlannerFamilyRun> {
    use mj_exec::{generate_family, Planner, PlannerOptions};

    let instance = generate_family(family, k, n, seed)?;
    let config = ExecConfig::default();

    let auto = Planner::new(PlannerOptions::new(processors)).plan(&instance.query)?;
    let planner_pick = auto.strategy().label().to_string();

    // Plan all four fixed strategies up front.
    let fixed: Vec<mj_exec::PlannedQuery> = Strategy::ALL
        .iter()
        .map(|&strategy| {
            let mut options = PlannerOptions::new(processors);
            options.strategy = Some(strategy);
            Planner::new(options).plan(&instance.query)
        })
        .collect::<Result<_>>()?;

    // Warm-up + best-of-reps, with the repetitions *interleaved* across
    // strategies (round-robin): host jitter and thermal drift then hit
    // every strategy alike instead of biasing whichever ran last. Rep 0
    // is an untimed warm-up filling allocator and page caches.
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); fixed.len()];
    let mut result_tuples = 0u64;
    let mut max_q_error = 1.0f64;
    for rep in 0..reps.max(1) + 1 {
        for (i, planned) in fixed.iter().enumerate() {
            let outcome = run_plan(
                &planned.plan,
                &planned.binding,
                instance.catalog.as_ref(),
                &config,
            )?;
            let tuples = outcome.relation.len() as u64;
            if rep == 0 && i == 0 {
                result_tuples = tuples;
            } else if tuples != result_tuples {
                return Err(mj_relalg::RelalgError::InvalidPlan(format!(
                    "{} returned {tuples} tuples, expected {result_tuples}",
                    planned.strategy()
                )));
            }
            if planned.plan == auto.plan {
                max_q_error = outcome.metrics.max_q_error();
            }
            if rep > 0 {
                samples[i].push(outcome.elapsed.as_secs_f64());
            }
        }
    }

    let strategies: Vec<FixedStrategyRun> = fixed
        .iter()
        .zip(&samples)
        .map(|(planned, s)| FixedStrategyRun {
            strategy: planned.strategy().label().to_string(),
            est_cost: planned.estimate.makespan,
            elapsed_s: best_elapsed(s),
        })
        .collect();
    // The planner's pick *is* one of the fixed candidates; reusing its
    // measurement (instead of timing the identical plan twice) keeps the
    // ratio free of between-measurement noise.
    let planner_elapsed_s = fixed
        .iter()
        .zip(&strategies)
        .find(|(planned, _)| planned.plan == auto.plan)
        .map(|(_, run)| run.elapsed_s)
        .unwrap_or_else(|| {
            strategies
                .iter()
                .find(|r| r.strategy == planner_pick)
                .expect("pick is one of the four strategies")
                .elapsed_s
        });
    let best = strategies
        .iter()
        .min_by(|a, b| a.elapsed_s.partial_cmp(&b.elapsed_s).unwrap())
        .expect("four strategies")
        .clone();
    let worst = strategies
        .iter()
        .max_by(|a, b| a.elapsed_s.partial_cmp(&b.elapsed_s).unwrap())
        .expect("four strategies")
        .clone();

    Ok(PlannerFamilyRun {
        family: family.label().to_string(),
        relations: k,
        tuples: n,
        planner_pick,
        planner_est_cost: auto.estimate.makespan,
        planner_elapsed_s,
        ratio_vs_best: planner_elapsed_s / best.elapsed_s,
        best_fixed: best.strategy,
        best_fixed_elapsed_s: best.elapsed_s,
        worst_fixed: worst.strategy,
        worst_fixed_elapsed_s: worst.elapsed_s,
        strategies,
        result_tuples,
        max_q_error,
    })
}

/// Produces the `BENCH_3.json` report: the planner's pick vs the best and
/// worst fixed strategy on the three query families. `quick` shrinks the
/// workload for CI smoke runs.
pub fn bench3_report(quick: bool) -> Result<Bench3Report> {
    let (k, n, processors, reps) = if quick {
        (5, 800, 4, 3)
    } else {
        (6, 20_000, 4, 11)
    };
    let mut families = Vec::new();
    for family in mj_exec::QueryFamily::ALL {
        families.push(planner_family_run(family, k, n, processors, reps, 42)?);
    }
    Ok(Bench3Report {
        bench: 3,
        quick,
        processors,
        reps,
        families,
    })
}

/// Renders a `BENCH_3.json` report as pretty-enough JSON.
pub fn bench3_to_json(report: &Bench3Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"families\":[", "\"families\":[\n  ")
        .replace("},{\"family\"", "},\n  {\"family\"")
        .replace("\"strategies\":[", "\n    \"strategies\":[\n      ")
        .replace("},{\"strategy\"", "},\n      {\"strategy\"")
        .replace("],\"best_fixed\"", "],\n    \"best_fixed\"")
        .replace("]}", "\n]}")
}

/// Validates the schema of an emitted `BENCH_3.json` (CI smoke run).
pub fn validate_bench3_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "processors", "reps", "families"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let families = match v.get("families") {
        Some(JsonValue::Arr(items)) if items.len() == 3 => items,
        _ => return Err("`families` must be an array of 3 runs".into()),
    };
    for f in families {
        for key in [
            "family",
            "relations",
            "tuples",
            "planner_pick",
            "planner_est_cost",
            "planner_elapsed_s",
            "strategies",
            "best_fixed",
            "best_fixed_elapsed_s",
            "worst_fixed",
            "worst_fixed_elapsed_s",
            "ratio_vs_best",
            "result_tuples",
            "max_q_error",
        ] {
            if f.get(key).is_none() {
                return Err(format!("missing key `families[].{key}`"));
            }
        }
        match f.get("strategies") {
            Some(JsonValue::Arr(items)) if items.len() == 4 => {}
            _ => return Err("`families[].strategies` must be an array of 4 runs".into()),
        }
    }
    Ok(())
}

/// The streamed run of the session benchmark: when the first batch
/// reached the client vs when the stream fully drained.
#[derive(Clone, Debug, Serialize)]
pub struct SessionStreamRun {
    /// Wall-clock seconds from submit to the first batch at the client.
    pub first_batch_s: f64,
    /// Wall-clock seconds from submit to the stream's final `End`.
    pub full_stream_s: f64,
    /// Batches delivered.
    pub batches: u64,
    /// Result tuples delivered.
    pub result_tuples: u64,
}

/// Time-to-first-batch vs time-to-full-materialization for one FP chain
/// query submitted through the session facade — the reason the root
/// output streams instead of materializing into `ExecOutcome.relation`.
#[derive(Clone, Debug, Serialize)]
pub struct SessionComparison {
    /// Relations in the chain query.
    pub relations: usize,
    /// Tuples per base relation.
    pub tuples_per_relation: u64,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// The forced strategy (FP: every edge a live pipeline).
    pub strategy: String,
    /// The text query submitted through `Database::query`.
    pub query: String,
    /// The streamed run (best-of-reps on full drain; first-batch is the
    /// minimum observed).
    pub streamed: SessionStreamRun,
    /// Wall-clock seconds for the same plan via the materializing wrapper
    /// (`Engine::run`), which only returns once everything is drained.
    pub materialized_s: f64,
    /// `materialized_s / streamed.first_batch_s` — how much sooner a
    /// streaming client sees its first results (> 1 is the acceptance
    /// criterion).
    pub first_batch_speedup: f64,
}

/// The whole `BENCH_4.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct Bench4Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// The session streaming scenario.
    pub session: SessionComparison,
}

/// Measures time-to-first-batch vs time-to-full-materialization for an FP
/// chain query submitted through the session facade. Both paths run the
/// *same* planned query on the same engine; the streamed path is measured
/// from submit to first batch and to full drain, the materialized path is
/// `Engine::run` (drain-then-return). Best-of-`reps` each.
pub fn session_comparison(
    relations: usize,
    n: usize,
    workers: usize,
    reps: usize,
) -> Result<SessionComparison> {
    use mj_exec::{generate_family, Database, DbConfig, PlannerOptions, QueryFamily};
    use mj_relalg::RelationProvider;

    let instance = generate_family(QueryFamily::Chain, relations, n, 42)?;
    let mut config = DbConfig::default();
    config.exec.workers = workers;
    let mut planner = PlannerOptions::new(8);
    planner.strategy = Some(Strategy::FP);
    config.planner = planner;
    let db = Database::open(config)
        .map_err(|e| mj_relalg::RelalgError::InvalidPlan(format!("open session database: {e}")))?;
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name)?)
            .map_err(|e| mj_relalg::RelalgError::InvalidPlan(e.to_string()))?;
    }
    db.analyze()
        .map_err(|e| mj_relalg::RelalgError::InvalidPlan(e.to_string()))?;

    let query = mj_exec::chain_query_sql(relations);
    let planned = db
        .plan(&query)
        .map_err(|e| mj_relalg::RelalgError::InvalidPlan(e.to_string()))?;
    let engine = db.engine();

    // Warm-up: fill allocator/page caches so both modes measure steady
    // state.
    engine.run(&planned.plan, &planned.binding)?;

    let mut best_stream: Option<SessionStreamRun> = None;
    let mut best_first = f64::INFINITY;
    let mut best_materialized = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // Streamed: submit, stamp the first batch, drain.
        let started = Instant::now();
        let mut handle = engine.submit(&planned.plan, &planned.binding)?;
        let mut stream = handle.stream();
        let mut first_batch_s = None;
        let mut batches = 0u64;
        let mut tuples = 0u64;
        while let Some(batch) = stream.next_batch() {
            if first_batch_s.is_none() {
                first_batch_s = Some(started.elapsed().as_secs_f64());
            }
            batches += 1;
            tuples += batch.len() as u64;
        }
        drop(stream);
        handle.outcome()?;
        let full_stream_s = started.elapsed().as_secs_f64();
        let first = first_batch_s.unwrap_or(full_stream_s);
        best_first = best_first.min(first);
        if best_stream
            .as_ref()
            .map(|b| full_stream_s < b.full_stream_s)
            .unwrap_or(true)
        {
            best_stream = Some(SessionStreamRun {
                first_batch_s: first,
                full_stream_s,
                batches,
                result_tuples: tuples,
            });
        }

        // Materialized: the wrapper returns only after the full drain.
        let started = Instant::now();
        let outcome = engine.run(&planned.plan, &planned.binding)?;
        debug_assert_eq!(outcome.relation.len() as u64, tuples);
        best_materialized = best_materialized.min(started.elapsed().as_secs_f64());
    }
    let mut streamed = best_stream.expect("at least one rep");
    streamed.first_batch_s = best_first;

    Ok(SessionComparison {
        relations,
        tuples_per_relation: n as u64,
        workers,
        strategy: planned.strategy().label().to_string(),
        query,
        first_batch_speedup: best_materialized / streamed.first_batch_s,
        streamed,
        materialized_s: best_materialized,
    })
}

/// Produces the `BENCH_4.json` report: first-batch latency vs full
/// materialization for an FP chain query through the session facade.
/// `quick` shrinks the workload for CI smoke runs.
pub fn bench4_report(quick: bool) -> Result<Bench4Report> {
    let (relations, n, reps) = if quick { (4, 3_000, 1) } else { (6, 40_000, 5) };
    Ok(Bench4Report {
        bench: 4,
        quick,
        session: session_comparison(relations, n, 4, reps)?,
    })
}

/// Renders a `BENCH_4.json` report as pretty-enough JSON.
pub fn bench4_to_json(report: &Bench4Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"session\":{", "\n\"session\":{\n  ")
        .replace("\"streamed\":", "\n  \"streamed\":")
        .replace("\"materialized_s\":", "\n  \"materialized_s\":")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_4.json` (CI smoke run).
pub fn validate_bench4_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "session"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let s = v.get("session").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "workers",
        "strategy",
        "query",
        "streamed",
        "materialized_s",
        "first_batch_speedup",
    ] {
        if s.get(key).is_none() {
            return Err(format!("missing key `session.{key}`"));
        }
    }
    let run = s.get("streamed").expect("checked");
    for key in ["first_batch_s", "full_stream_s", "batches", "result_tuples"] {
        if run.get(key).is_none() {
            return Err(format!("missing key `session.streamed.{key}`"));
        }
    }
    Ok(())
}

/// One pushdown mode of the operator benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct PushdownRun {
    /// Whether the planner pushed the WHERE filter below the joins.
    pub pushdown: bool,
    /// Strategy the planner picked in this mode.
    pub strategy: String,
    /// Best-of-reps wall-clock seconds for the full query (setup-inclusive:
    /// pushed filters run during base fragmentation).
    pub elapsed_s: f64,
    /// Result tuples (must agree across modes).
    pub result_tuples: u64,
}

/// Filter pushdown on a selective chain query: the same WHERE query
/// planned with pushdown on (filters at the scans, selectivity folded
/// into every estimate) vs off (a residual `FilterOp` stage above the
/// root join) — the headline number of the operator-framework PR.
#[derive(Clone, Debug, Serialize)]
pub struct OperatorComparison {
    /// Relations in the chain.
    pub relations: usize,
    /// Tuples per base relation.
    pub tuples_per_relation: u64,
    /// Worker threads in each engine pool.
    pub workers: usize,
    /// The text query (WHERE keeps ~2% of the filtered relation).
    pub query: String,
    /// Pushdown enabled (the default planner behaviour).
    pub pushdown_on: PushdownRun,
    /// Pushdown disabled (filter runs above the joins).
    pub pushdown_off: PushdownRun,
    /// `pushdown_off.elapsed_s / pushdown_on.elapsed_s` (> 1 means the
    /// pushdown wins; the checked-in baseline must show >= 1.5).
    pub pushdown_speedup: f64,
}

/// The whole `BENCH_5.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct Bench5Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// The filter-pushdown scenario.
    pub operators: OperatorComparison,
}

/// Measures the selective filtered chain with pushdown on vs off. Both
/// modes run the *same* text query on identically seeded databases;
/// elapsed time is wall clock around a materializing run (best of `reps`)
/// and includes setup, since pushed filters execute during base
/// fragmentation. Results are checked multiset-equal across modes.
pub fn operator_comparison(
    relations: usize,
    n: usize,
    workers: usize,
    reps: usize,
) -> Result<OperatorComparison> {
    use mj_exec::{generate_family, Database, DbConfig, QueryFamily};
    use mj_relalg::RelationProvider;

    let err = |e: mj_exec::MjError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let instance = generate_family(QueryFamily::Chain, relations, n, 42)?;
    // ~2% of the filtered relation survives.
    let query = format!(
        "{} WHERE R0.id < {}",
        mj_exec::chain_query_sql(relations),
        (n / 50).max(1)
    );

    let mut runs: Vec<PushdownRun> = Vec::new();
    let mut results: Vec<mj_relalg::Relation> = Vec::new();
    for pushdown in [true, false] {
        let mut config = DbConfig::default();
        config.exec.workers = workers;
        config.planner.pushdown = pushdown;
        let db = Database::open(config).map_err(err)?;
        let mut names = instance.catalog.names();
        names.sort();
        for name in &names {
            db.register(name, instance.catalog.relation(name)?)
                .map_err(err)?;
        }
        db.analyze().map_err(err)?;
        let planned = db.plan(&query).map_err(err)?;
        // Warm-up run (also captures the result for cross-mode checks).
        let warm = db.engine().run(&planned.plan, &planned.binding)?;
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let started = Instant::now();
            let outcome = db.engine().run(&planned.plan, &planned.binding)?;
            best = best.min(started.elapsed().as_secs_f64());
            debug_assert_eq!(outcome.relation.len(), warm.relation.len());
        }
        runs.push(PushdownRun {
            pushdown,
            strategy: planned.strategy().label().to_string(),
            elapsed_s: best,
            result_tuples: warm.relation.len() as u64,
        });
        results.push(warm.relation);
    }
    if !results[0].multiset_eq(&results[1]) {
        return Err(mj_relalg::RelalgError::InvalidPlan(format!(
            "pushdown changed the result: {} vs {} rows",
            results[0].len(),
            results[1].len()
        )));
    }
    let off = runs.pop().expect("two runs");
    let on = runs.pop().expect("two runs");
    Ok(OperatorComparison {
        relations,
        tuples_per_relation: n as u64,
        workers,
        query,
        pushdown_speedup: off.elapsed_s / on.elapsed_s,
        pushdown_on: on,
        pushdown_off: off,
    })
}

/// Produces the `BENCH_5.json` report: filter pushdown on a selective
/// chain query. `quick` shrinks the workload for CI smoke runs.
pub fn bench5_report(quick: bool) -> Result<Bench5Report> {
    let (relations, n, reps) = if quick { (4, 4_000, 2) } else { (6, 40_000, 5) };
    Ok(Bench5Report {
        bench: 5,
        quick,
        operators: operator_comparison(relations, n, 4, reps)?,
    })
}

/// Renders a `BENCH_5.json` report as pretty-enough JSON.
pub fn bench5_to_json(report: &Bench5Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"operators\":{", "\n\"operators\":{\n  ")
        .replace("\"pushdown_on\":", "\n  \"pushdown_on\":")
        .replace("\"pushdown_off\":", "\n  \"pushdown_off\":")
        .replace("\"pushdown_speedup\":", "\n  \"pushdown_speedup\":")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_5.json` (CI smoke run).
pub fn validate_bench5_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "operators"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let o = v.get("operators").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "workers",
        "query",
        "pushdown_on",
        "pushdown_off",
        "pushdown_speedup",
    ] {
        if o.get(key).is_none() {
            return Err(format!("missing key `operators.{key}`"));
        }
    }
    for mode in ["pushdown_on", "pushdown_off"] {
        let run = o.get(mode).expect("checked");
        for key in ["pushdown", "strategy", "elapsed_s", "result_tuples"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `operators.{mode}.{key}`"));
            }
        }
    }
    Ok(())
}

/// One guardrail mode of the overhead benchmark.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GuardrailRun {
    /// Best-of-reps wall-clock seconds for the join workload.
    pub elapsed_s: f64,
    /// Operator-consumed tuples per second at that best time.
    pub tuples_per_sec: f64,
}

/// Guardrails-on vs guardrails-off on the BENCH_1 join hot path.
///
/// Both modes run the identical FP right-linear chain on engines over the
/// same catalog; the *on* engine additionally carries a (generous)
/// deadline, a stall watchdog, a memory budget, and admission control, so
/// the ratio isolates the per-step limit checks, the coordinator's
/// watchdog tick, the budget sync, and the admission handshake. The
/// acceptance bar is `overhead_ratio <= 1.05`.
#[derive(Clone, Debug, Serialize)]
pub struct OverheadComparison {
    /// Relations in the chain query.
    pub relations: usize,
    /// Tuples per base relation.
    pub tuples_per_relation: u64,
    /// Worker threads in each engine pool.
    pub workers: usize,
    /// The strategy both modes run (FP: the pipelining hot path).
    pub strategy: String,
    /// No deadline, no stall watchdog, no budget cap, no admission —
    /// `ExecConfig::default()`, the pre-guardrail engine.
    pub guardrails_off: GuardrailRun,
    /// Every guardrail armed with limits the workload never reaches.
    pub guardrails_on: GuardrailRun,
    /// `guardrails_on.elapsed_s / guardrails_off.elapsed_s` (1.0 = free;
    /// the checked-in baseline must stay <= 1.05).
    pub overhead_ratio: f64,
}

/// Latency distribution of the well-behaved queries in one admission mode.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NoisyNeighborRun {
    /// p99 (with 8 samples per rep: the worst latency) in seconds,
    /// best-of-reps.
    pub p99_s: f64,
    /// Mean latency in seconds over all samples of the best rep.
    pub mean_s: f64,
    /// Light-query latency samples per repetition.
    pub samples: u64,
}

/// Well-behaved query latency under budget-busting noisy neighbors, with
/// the guardrail layer on vs off.
///
/// Four noisy chain queries large enough to monopolize the pool are
/// launched, then eight small "well-behaved" queries are timed submit to
/// drain. *Unprotected*, everything shares the pool and the small queries
/// inherit the neighbors' runtime. *Protected*, admission control bounds
/// in-flight queries (FIFO queue, no rejection at this depth) and each
/// noisy query carries a memory budget it immediately busts, so the
/// guardrails abort it with `ResourceExhausted` and the slot frees for the
/// well-behaved traffic. The acceptance bar is `p99_improvement >= 1.5`.
#[derive(Clone, Debug, Serialize)]
pub struct AdmissionComparison {
    /// Worker threads in each engine pool.
    pub workers: usize,
    /// Well-behaved queries timed per repetition.
    pub light_queries: usize,
    /// Noisy-neighbor queries launched per repetition.
    pub noisy_queries: usize,
    /// Tuples per relation of the well-behaved chain.
    pub light_tuples: u64,
    /// Tuples per relation of the noisy chain.
    pub noisy_tuples: u64,
    /// `ExecConfig::max_concurrent` in the protected engine.
    pub max_concurrent: usize,
    /// Per-query memory budget (bytes) given to noisy queries in the
    /// protected engine — sized so they bust it within a few steps.
    pub noisy_budget_bytes: u64,
    /// No admission control, no budgets: everyone shares the pool.
    pub unprotected: NoisyNeighborRun,
    /// Admission control + noisy budgets: the guardrail layer at work.
    pub protected: NoisyNeighborRun,
    /// Budget aborts recorded by the protected engine (at least
    /// `noisy_queries * reps`: every noisy query must have been shed).
    pub noisy_budget_aborts: u64,
    /// `unprotected.p99_s / protected.p99_s` (> 1 means the guardrails
    /// protect the well-behaved tenants; the checked-in baseline must
    /// show >= 1.5).
    pub p99_improvement: f64,
}

/// The whole `BENCH_6.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct Bench6Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Guardrails-on vs off on the join hot path.
    pub overhead: OverheadComparison,
    /// Noisy-neighbor p99 with vs without the guardrail layer.
    pub admission: AdmissionComparison,
}

/// Warm-up once, then best-of-`reps` on one engine.
fn guardrail_run(
    engine: &Engine,
    plan: &ParallelPlan,
    binding: &QueryBinding,
    reps: usize,
) -> Result<GuardrailRun> {
    consumed_tuples(&engine.run(plan, binding)?);
    let mut best: Option<GuardrailRun> = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let tuples = consumed_tuples(&engine.run(plan, binding)?);
        let elapsed = started.elapsed().as_secs_f64();
        if best.map(|b| elapsed < b.elapsed_s).unwrap_or(true) {
            best = Some(GuardrailRun {
                elapsed_s: elapsed,
                tuples_per_sec: tuples as f64 / elapsed,
            });
        }
    }
    Ok(best.expect("at least one rep"))
}

/// Measures the guardrail layer's overhead on the BENCH_1-style join
/// workload: the same FP chain plan on a bare engine vs one with every
/// guardrail armed (at limits the workload never reaches, so the cost is
/// pure bookkeeping).
pub fn overhead_comparison(
    relations: usize,
    n: usize,
    workers: usize,
    reps: usize,
) -> Result<OverheadComparison> {
    let catalog = Arc::new(Catalog::new());
    for (name, rel) in WisconsinGenerator::new(n, 42).generate_named("R", relations) {
        catalog.register(name, rel);
    }
    let tree = build(Shape::RightLinear, relations).expect("tree shape");
    let cards = node_cards(&tree, &UniformOneToOne { n: n as u64 });
    let costs = tree_costs(&tree, &cards, &CostModel::default());
    let binding = QueryBinding::regular(&tree, catalog.as_ref())?;
    let mut input = GeneratorInput::new(&tree, &cards, &costs, workers);
    input.allow_oversubscribe = workers < tree.join_count();
    let plan = generate(Strategy::FP, &input)?;

    let off_cfg = ExecConfig {
        workers,
        ..ExecConfig::default()
    };
    let on_cfg = ExecConfig {
        workers,
        deadline: Some(std::time::Duration::from_secs(300)),
        stall_timeout: Some(std::time::Duration::from_secs(30)),
        memory_budget: Some(4 << 30),
        max_concurrent: Some(8),
        ..ExecConfig::default()
    };
    let off_engine = Engine::new(catalog.clone(), off_cfg)?;
    let on_engine = Engine::new(catalog.clone(), on_cfg)?;
    // Interleave the repetitions (same discipline as BENCH_3): host
    // jitter and thermal drift then hit both modes alike instead of
    // biasing whichever ran last.
    let mut off: Option<GuardrailRun> = None;
    let mut on: Option<GuardrailRun> = None;
    for _ in 0..reps.max(1) {
        let o = guardrail_run(&off_engine, &plan, &binding, 1)?;
        if off.map(|b| o.elapsed_s < b.elapsed_s).unwrap_or(true) {
            off = Some(o);
        }
        let o = guardrail_run(&on_engine, &plan, &binding, 1)?;
        if on.map(|b| o.elapsed_s < b.elapsed_s).unwrap_or(true) {
            on = Some(o);
        }
    }
    let off = off.expect("at least one rep");
    let on = on.expect("at least one rep");

    Ok(OverheadComparison {
        relations,
        tuples_per_relation: n as u64,
        workers,
        strategy: Strategy::FP.label().to_string(),
        overhead_ratio: on.elapsed_s / off.elapsed_s,
        guardrails_off: off,
        guardrails_on: on,
    })
}

/// The chain-family SQL with relations registered under `prefix{i}`
/// instead of `R{i}` (so light and noisy relation sets coexist in one
/// catalog).
fn prefixed_chain_sql(prefix: &str, k: usize) -> String {
    let mut q = format!("SELECT * FROM {prefix}0");
    for i in 1..k {
        q.push_str(&format!(
            " JOIN {prefix}{i} ON {prefix}{}.b = {prefix}{i}.a",
            i - 1
        ));
    }
    q
}

/// Measures light-query p99 under noisy neighbors with the guardrail
/// layer off (`protect = false`: plain shared pool) and on (`protect =
/// true`: admission control bounds in-flight queries and every noisy
/// query carries a budget it busts).
pub fn admission_comparison(
    light_k: usize,
    light_n: usize,
    noisy_k: usize,
    noisy_n: usize,
    workers: usize,
    reps: usize,
) -> Result<AdmissionComparison> {
    use mj_exec::{generate_family, Database, DbConfig, QueryFamily, QueryOptions};
    use mj_relalg::RelationProvider;

    const NOISY: usize = 4;
    const LIGHT: usize = 8;
    const MAX_CONCURRENT: usize = 2;
    const NOISY_BUDGET: u64 = 128 * 1024;

    let err = |e: mj_exec::MjError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let lights = generate_family(QueryFamily::Chain, light_k, light_n, 5)?;
    let noisy = generate_family(QueryFamily::Chain, noisy_k, noisy_n, 6)?;
    let light_sql = prefixed_chain_sql("L", light_k);
    let noisy_sql = prefixed_chain_sql("N", noisy_k);

    let open_db = |protect: bool| -> Result<Database> {
        let mut config = DbConfig::default();
        config.exec.workers = workers;
        if protect {
            config.exec.max_concurrent = Some(MAX_CONCURRENT);
        }
        let db = Database::open(config).map_err(err)?;
        for i in 0..light_k {
            db.register(format!("L{i}"), lights.catalog.relation(&format!("R{i}"))?)
                .map_err(err)?;
        }
        for i in 0..noisy_k {
            db.register(format!("N{i}"), noisy.catalog.relation(&format!("R{i}"))?)
                .map_err(err)?;
        }
        db.analyze().map_err(err)?;
        Ok(db)
    };

    let run_mode = |db: &Database, protect: bool| -> Result<NoisyNeighborRun> {
        // Warm-up: allocator and page caches, and the light plan itself.
        db.query(&light_sql).map_err(err)?.collect()?;
        let mut best: Option<NoisyNeighborRun> = None;
        for _ in 0..reps.max(1) {
            let latencies: Vec<f64> = std::thread::scope(|scope| -> Result<Vec<f64>> {
                // Noisy neighbors first, so they are established by the
                // time the well-behaved queries arrive. Protected, each
                // carries a budget it busts within a few quanta —
                // `ResourceExhausted` here is the guardrail working, so
                // only submission errors are real failures.
                let noisy_handles: Vec<_> = (0..NOISY)
                    .map(|_| {
                        scope.spawn(|| {
                            let opts = if protect {
                                QueryOptions::new().with_memory_budget(NOISY_BUDGET)
                            } else {
                                QueryOptions::default()
                            };
                            db.query_with(&noisy_sql, opts).map(|h| {
                                let _ = h.collect();
                            })
                        })
                    })
                    .collect();
                std::thread::sleep(std::time::Duration::from_millis(10));
                let light_handles: Vec<_> = (0..LIGHT)
                    .map(|_| {
                        scope.spawn(|| -> Result<f64> {
                            let started = Instant::now();
                            db.query(&light_sql).map_err(err)?.collect()?;
                            Ok(started.elapsed().as_secs_f64())
                        })
                    })
                    .collect();
                let mut latencies = Vec::with_capacity(LIGHT);
                for h in light_handles {
                    latencies.push(h.join().expect("light client thread")?);
                }
                for h in noisy_handles {
                    h.join().expect("noisy client thread").map_err(err)?;
                }
                Ok(latencies)
            })?;
            let p99 = latencies.iter().copied().fold(0.0f64, f64::max);
            let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
            if best.map(|b| p99 < b.p99_s).unwrap_or(true) {
                best = Some(NoisyNeighborRun {
                    p99_s: p99,
                    mean_s: mean,
                    samples: latencies.len() as u64,
                });
            }
        }
        Ok(best.expect("at least one rep"))
    };

    let unprotected_db = open_db(false)?;
    let protected_db = open_db(true)?;
    let unprotected = run_mode(&unprotected_db, false)?;
    let protected = run_mode(&protected_db, true)?;
    let noisy_budget_aborts = protected_db.stats().budget_aborts;

    Ok(AdmissionComparison {
        workers,
        light_queries: LIGHT,
        noisy_queries: NOISY,
        light_tuples: light_n as u64,
        noisy_tuples: noisy_n as u64,
        max_concurrent: MAX_CONCURRENT,
        noisy_budget_bytes: NOISY_BUDGET,
        p99_improvement: unprotected.p99_s / protected.p99_s,
        unprotected,
        protected,
        noisy_budget_aborts,
    })
}

/// Produces the `BENCH_6.json` report: guardrail overhead on the join hot
/// path plus noisy-neighbor p99 with vs without the guardrail layer.
/// `quick` shrinks the workload for CI smoke runs.
pub fn bench6_report(quick: bool) -> Result<Bench6Report> {
    let (relations, n, reps) = if quick { (4, 2_000, 2) } else { (6, 20_000, 5) };
    let (light_n, noisy_n, adm_reps) = if quick {
        (500, 4_000, 1)
    } else {
        (1_000, 8_000, 3)
    };
    Ok(Bench6Report {
        bench: 6,
        quick,
        overhead: overhead_comparison(relations, n, 4, reps)?,
        admission: admission_comparison(3, light_n, 4, noisy_n, 4, adm_reps)?,
    })
}

/// Renders a `BENCH_6.json` report as pretty-enough JSON.
pub fn bench6_to_json(report: &Bench6Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"overhead\":{", "\n\"overhead\":{\n  ")
        .replace("\"guardrails_off\":", "\n  \"guardrails_off\":")
        .replace("\"guardrails_on\":", "\n  \"guardrails_on\":")
        .replace("\"admission\":{", "\n\"admission\":{\n  ")
        .replace("\"unprotected\":", "\n  \"unprotected\":")
        .replace("\"protected\":", "\n  \"protected\":")
        .replace("\"p99_improvement\":", "\n  \"p99_improvement\":")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_6.json` (CI smoke run).
pub fn validate_bench6_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "overhead", "admission"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let o = v.get("overhead").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "workers",
        "strategy",
        "guardrails_off",
        "guardrails_on",
        "overhead_ratio",
    ] {
        if o.get(key).is_none() {
            return Err(format!("missing key `overhead.{key}`"));
        }
    }
    for mode in ["guardrails_off", "guardrails_on"] {
        let run = o.get(mode).expect("checked");
        for key in ["elapsed_s", "tuples_per_sec"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `overhead.{mode}.{key}`"));
            }
        }
    }
    let a = v.get("admission").expect("checked");
    for key in [
        "workers",
        "light_queries",
        "noisy_queries",
        "light_tuples",
        "noisy_tuples",
        "max_concurrent",
        "noisy_budget_bytes",
        "unprotected",
        "protected",
        "noisy_budget_aborts",
        "p99_improvement",
    ] {
        if a.get(key).is_none() {
            return Err(format!("missing key `admission.{key}`"));
        }
    }
    for mode in ["unprotected", "protected"] {
        let run = a.get(mode).expect("checked");
        for key in ["p99_s", "mean_s", "samples"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `admission.{mode}.{key}`"));
            }
        }
    }
    Ok(())
}

/// One timed kernel mode of the columnar-vs-row benchmark.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct KernelRun {
    /// Probe rows pushed through the kernel.
    pub rows: u64,
    /// Join matches produced (must agree across modes).
    pub matches: u64,
    /// Best-of-reps wall-clock seconds (build + probe + output assembly).
    pub elapsed_s: f64,
    /// Probe rows per second at that best time.
    pub rows_per_sec: f64,
}

/// The BENCH_1 join hot path re-measured kernel-for-kernel: the retained
/// row-at-a-time join ([`SimpleJoinState`](mj_join::SimpleJoinState):
/// per-`Tuple` build, per-`Tuple` probe, one output `Tuple` per match)
/// against the columnar kernel ([`ColumnarTable`](mj_join::ColumnarTable):
/// batch build over a dense key column, `probe_into` match-pair vectors,
/// `append_concat_gather` output assembly). Both consume the same
/// relations in the same batch rhythm and must produce the same match
/// count. The checked-in baseline must show `speedup >= 1.3`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct JoinKernelComparison {
    /// Rows per relation.
    pub rows: u64,
    /// Probe-batch granularity (the engine's default batch size).
    pub batch_rows: usize,
    /// Timing repetitions (best-of).
    pub reps: usize,
    /// The seed's per-tuple kernel.
    pub row_path: KernelRun,
    /// The vectorized kernel.
    pub columnar: KernelRun,
    /// `row_path.elapsed_s / columnar.elapsed_s` (> 1 means the columnar
    /// kernel wins).
    pub speedup: f64,
}

/// The whole `BENCH_7.json` document: the columnar flip measured three
/// ways — the join kernel in isolation, and the BENCH_5 pushdown chain
/// plus the BENCH_6 guardrail-overhead scenario re-run end-to-end on the
/// columnar engine (CI gates the latter two against the row-era
/// baselines: no more than 5% regression).
#[derive(Clone, Debug, Serialize)]
pub struct Bench7Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Columnar vs row-path join kernels.
    pub join_kernels: JoinKernelComparison,
    /// The BENCH_5 selective pushdown chain on the columnar engine.
    pub pushdown: OperatorComparison,
    /// The BENCH_6 guardrails-on/off chain on the columnar engine.
    pub guardrail_overhead: OverheadComparison,
}

/// Measures the row-path and columnar join kernels over identical data:
/// `n`-row build and probe relations in the Wisconsin shape
/// (`unique1, unique2, filler`), joined on a permutation key (every probe
/// row matches exactly once), output projected to three columns. Probes
/// arrive in `batch_rows` chunks and the output buffer is drained per
/// chunk — the engine's flush rhythm — so neither mode gets to amortize
/// into one giant allocation.
pub fn join_kernel_comparison(n: usize, reps: usize) -> Result<JoinKernelComparison> {
    use mj_relalg::column::ColumnBatch;
    use mj_relalg::{EquiJoin, Projection};

    const BATCH_ROWS: usize = 1024;
    let mut rels = WisconsinGenerator::new(n, 7).generate_named("J", 2);
    let (_, probe_rel) = rels.pop().expect("two relations");
    let (_, build_rel) = rels.pop().expect("two relations");
    // Join on unique1 = unique1, keep (build.unique2, key, probe.unique2).
    let spec = EquiJoin::new(0, 0, Projection::new(vec![1, 0, 4]));

    // Row path: the seed's per-tuple kernel, kept in mj-join.
    let mut row = KernelRun {
        rows: n as u64,
        matches: 0,
        elapsed_s: f64::INFINITY,
        rows_per_sec: 0.0,
    };
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let mut state = mj_join::SimpleJoinState::with_capacity(spec.clone(), n);
        for t in build_rel.tuples() {
            state.build(t.clone())?;
        }
        state.finish_build();
        let mut matches = 0u64;
        let mut out: Vec<Tuple> = Vec::new();
        for chunk in probe_rel.tuples().chunks(BATCH_ROWS) {
            for t in chunk {
                state.probe(t, &mut out)?;
            }
            matches += out.len() as u64;
            out.clear(); // flushed downstream
        }
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed < row.elapsed_s {
            row.elapsed_s = elapsed;
            row.rows_per_sec = n as f64 / elapsed;
        }
        row.matches = matches;
    }

    // Columnar path: batch build, vectorized probe, gathered output.
    let mut col = KernelRun {
        rows: n as u64,
        matches: 0,
        elapsed_s: f64::INFINITY,
        rows_per_sec: 0.0,
    };
    let build_cols = ColumnBatch::from_relation(&build_rel)?;
    let probe_cols = ColumnBatch::from_relation(&probe_rel)?;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let mut table = mj_join::ColumnarTable::with_capacity(n);
        table.insert_batch(&build_cols, spec.left_key, 0..build_cols.rows())?;
        let keys = probe_cols.int_col(spec.right_key)?;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut out = ColumnBatch::shapeless();
        let mut matches = 0u64;
        let mut start = 0;
        while start < probe_cols.rows() {
            let end = (start + BATCH_ROWS).min(probe_cols.rows());
            pairs.clear();
            table.probe_into(keys, start..end, &mut pairs);
            out.append_concat_gather(table.rows(), &probe_cols, spec.projection.cols(), &pairs)?;
            matches += out.rows() as u64;
            out.clear(); // flushed downstream (buffer recycled)
            start = end;
        }
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed < col.elapsed_s {
            col.elapsed_s = elapsed;
            col.rows_per_sec = n as f64 / elapsed;
        }
        col.matches = matches;
    }

    if row.matches != col.matches {
        return Err(mj_relalg::RelalgError::InvalidPlan(format!(
            "kernel disagreement: row path {} matches, columnar {}",
            row.matches, col.matches
        )));
    }
    Ok(JoinKernelComparison {
        rows: n as u64,
        batch_rows: BATCH_ROWS,
        reps: reps.max(1),
        speedup: row.elapsed_s / col.elapsed_s,
        row_path: row,
        columnar: col,
    })
}

/// Produces the `BENCH_7.json` report. `quick` shrinks the workload for
/// CI smoke runs; the checked-in baseline uses the full size.
pub fn bench7_report(quick: bool) -> Result<Bench7Report> {
    let (kernel_n, kernel_reps) = if quick { (50_000, 2) } else { (400_000, 5) };
    // Same workload shapes as the BENCH_5 / BENCH_6 baselines so the
    // end-to-end numbers are directly comparable across the flip.
    let (p_relations, p_n, p_reps) = if quick { (4, 4_000, 2) } else { (6, 40_000, 5) };
    let (o_relations, o_n, o_reps) = if quick { (4, 2_000, 2) } else { (6, 20_000, 5) };
    Ok(Bench7Report {
        bench: 7,
        quick,
        join_kernels: join_kernel_comparison(kernel_n, kernel_reps)?,
        pushdown: operator_comparison(p_relations, p_n, 4, p_reps)?,
        guardrail_overhead: overhead_comparison(o_relations, o_n, 4, o_reps)?,
    })
}

/// Renders a `BENCH_7.json` report as pretty-enough JSON.
pub fn bench7_to_json(report: &Bench7Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"join_kernels\":{", "\n\"join_kernels\":{\n  ")
        .replace("\"row_path\":", "\n  \"row_path\":")
        .replace("\"columnar\":", "\n  \"columnar\":")
        .replace("\"speedup\":", "\n  \"speedup\":")
        .replace("\"pushdown\":{", "\n\"pushdown\":{\n  ")
        .replace("\"pushdown_on\":", "\n  \"pushdown_on\":")
        .replace("\"pushdown_off\":", "\n  \"pushdown_off\":")
        .replace("\"pushdown_speedup\":", "\n  \"pushdown_speedup\":")
        .replace("\"guardrail_overhead\":{", "\n\"guardrail_overhead\":{\n  ")
        .replace("\"guardrails_off\":", "\n  \"guardrails_off\":")
        .replace("\"guardrails_on\":", "\n  \"guardrails_on\":")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_7.json` (CI smoke run).
pub fn validate_bench7_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in [
        "bench",
        "quick",
        "join_kernels",
        "pushdown",
        "guardrail_overhead",
    ] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let k = v.get("join_kernels").expect("checked");
    for key in [
        "rows",
        "batch_rows",
        "reps",
        "row_path",
        "columnar",
        "speedup",
    ] {
        if k.get(key).is_none() {
            return Err(format!("missing key `join_kernels.{key}`"));
        }
    }
    for mode in ["row_path", "columnar"] {
        let run = k.get(mode).expect("checked");
        for key in ["rows", "matches", "elapsed_s", "rows_per_sec"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `join_kernels.{mode}.{key}`"));
            }
        }
    }
    let p = v.get("pushdown").expect("checked");
    for key in ["pushdown_on", "pushdown_off", "pushdown_speedup"] {
        if p.get(key).is_none() {
            return Err(format!("missing key `pushdown.{key}`"));
        }
    }
    let o = v.get("guardrail_overhead").expect("checked");
    for key in ["guardrails_off", "guardrails_on", "overhead_ratio"] {
        if o.get(key).is_none() {
            return Err(format!("missing key `guardrail_overhead.{key}`"));
        }
    }
    Ok(())
}

/// One microbenchmarked SIMD kernel: the scalar reference against the
/// runtime-dispatched vector path over identical inputs.
#[derive(Clone, Debug, Serialize)]
pub struct SimdKernelBench {
    /// Kernel name (`select_cmp`, `gather`, `gather_pairs`, `aggregate`,
    /// `bucket_hash`).
    pub name: String,
    /// Best-of-reps scalar seconds.
    pub scalar_s: f64,
    /// Best-of-reps vector-path seconds (falls back to scalar on hosts
    /// without AVX2, where `speedup` hovers near 1.0).
    pub simd_s: f64,
    /// `scalar_s / simd_s`.
    pub speedup: f64,
    /// Which variant the engine actually ships for this kernel
    /// (`"simd"` behind runtime detection, or `"scalar"` when the vector
    /// path did not pay — bucket hashing ships scalar).
    pub shipped: String,
}

/// The per-kernel SIMD section of `BENCH_8.json`.
#[derive(Clone, Debug, Serialize)]
pub struct SimdSection {
    /// Whether the measuring host dispatched the AVX2 paths.
    pub simd_enabled: bool,
    /// Elements per kernel invocation.
    pub elements: u64,
    /// Kernel passes per timed rep (amortizes clock granularity).
    pub passes: usize,
    /// Timing repetitions (best-of).
    pub reps: usize,
    /// One entry per kernel.
    pub kernels: Vec<SimdKernelBench>,
}

/// One end-to-end arm of the late-vs-eager comparison.
#[derive(Clone, Debug, Serialize)]
pub struct LateRun {
    /// The `LateMode` forced for this arm.
    pub late_mode: String,
    /// Best-of-reps wall-clock seconds.
    pub elapsed_s: f64,
    /// Result rows (must agree across arms).
    pub result_tuples: u64,
}

/// The end-to-end late-materialization comparison: a wide 6-relation
/// chain evaluated eagerly (payloads copied through every join) and late
/// (joins move refs, one gather at the root). Both arms must return the
/// same multiset; the checked-in baseline must show
/// `late_speedup >= 1.3`.
#[derive(Clone, Debug, Serialize)]
pub struct LateComparison {
    /// Relations in the chain.
    pub relations: usize,
    /// Rows per relation.
    pub tuples_per_relation: u64,
    /// Payload columns per relation (beyond the two chain keys).
    pub payload_cols: usize,
    /// Worker threads.
    pub workers: usize,
    /// The SQL text.
    pub query: String,
    /// The ref-carrying arm (`LateMode::Always`).
    pub late: LateRun,
    /// The payload-copying arm (`LateMode::Never`).
    pub eager: LateRun,
    /// `eager.elapsed_s / late.elapsed_s`.
    pub late_speedup: f64,
}

/// The BENCH_5/6/7 scenarios re-run on the SIMD + late-materialization
/// engine. CI gates each headline within 5% of its original acceptance
/// bar (pushdown >= 1.43x, overhead <= 1.10x, kernel >= 1.24x), so the
/// new hot paths cannot regress what earlier PRs banked.
#[derive(Clone, Debug, Serialize)]
pub struct Bench8Reruns {
    /// The BENCH_5 selective pushdown chain.
    pub pushdown: OperatorComparison,
    /// The BENCH_6 guardrails-on/off chain.
    pub guardrail_overhead: OverheadComparison,
    /// The BENCH_7 row-vs-columnar join kernels.
    pub join_kernels: JoinKernelComparison,
}

/// The whole `BENCH_8.json` document: per-kernel scalar-vs-SIMD
/// microbenchmarks, the end-to-end late-vs-eager chain, and the
/// BENCH_5/6/7 regression re-runs.
#[derive(Clone, Debug, Serialize)]
pub struct Bench8Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Scalar vs AVX2 kernel microbenchmarks.
    pub simd_kernels: SimdSection,
    /// End-to-end late materialization on the wide chain.
    pub late_materialization: LateComparison,
    /// BENCH_5/6/7 regression re-runs.
    pub reruns: Bench8Reruns,
}

/// Times `f` as `reps` best-of measurements of `passes` calls each.
fn best_of(reps: usize, passes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        for _ in 0..passes.max(1) {
            f();
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Microbenchmarks every SIMD kernel against its scalar reference over
/// identical inputs, in the shapes the engine feeds them: selection over
/// a full key column, gathers driven by a half-selective selection
/// vector, pair-gathers from join match pairs, whole-column aggregation,
/// and partition bucketing. `n` is sized like the engine's working sets
/// (tens of thousands of rows per fragment column, cache-resident) —
/// at DRAM-bound sizes every kernel converges on memory bandwidth and
/// the comparison measures the machine, not the code.
pub fn simd_kernel_benches(n: usize, passes: usize, reps: usize) -> SimdSection {
    use mj_relalg::simd;
    use mj_relalg::CmpOp;

    let shipped = |on: bool| if on { "simd" } else { "scalar" }.to_string();
    let keys: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % n as i64).collect();
    let lit = n as i64 / 2;
    let mut kernels = Vec::new();

    // select_cmp: full-column compare into a selection vector.
    let mut sel: Vec<u32> = Vec::with_capacity(n);
    let scalar_s = best_of(reps, passes, || {
        sel.clear();
        simd::select_cmp_scalar(&keys, CmpOp::Lt, lit, &mut sel);
    });
    let simd_s = best_of(reps, passes, || {
        sel.clear();
        simd::select_cmp(&keys, CmpOp::Lt, lit, &mut sel);
    });
    kernels.push(SimdKernelBench {
        name: "select_cmp".into(),
        scalar_s,
        simd_s,
        speedup: scalar_s / simd_s,
        shipped: shipped(simd::SELECT_CMP_SIMD),
    });

    // gather: survivors of the (half-selective) selection above.
    sel.clear();
    simd::select_cmp(&keys, CmpOp::Lt, lit, &mut sel);
    let mut dst: Vec<i64> = Vec::with_capacity(sel.len());
    let scalar_s = best_of(reps, passes, || {
        dst.clear();
        simd::gather_i64_scalar(&keys, &sel, &mut dst);
    });
    let simd_s = best_of(reps, passes, || {
        dst.clear();
        simd::gather_i64(&keys, &sel, &mut dst);
    });
    kernels.push(SimdKernelBench {
        name: "gather".into(),
        scalar_s,
        simd_s,
        speedup: scalar_s / simd_s,
        shipped: shipped(simd::GATHER_SIMD),
    });

    // gather_pairs: join-emission shape (build,probe) index pairs.
    let pairs: Vec<(u32, u32)> = sel
        .iter()
        .map(|&i| (i, (n as u32 - 1).saturating_sub(i)))
        .collect();
    let scalar_s = best_of(reps, passes, || {
        dst.clear();
        simd::gather_pairs_i64_scalar(&keys, &pairs, true, &mut dst);
    });
    let simd_s = best_of(reps, passes, || {
        dst.clear();
        simd::gather_pairs_i64(&keys, &pairs, true, &mut dst);
    });
    kernels.push(SimdKernelBench {
        name: "gather_pairs".into(),
        scalar_s,
        simd_s,
        speedup: scalar_s / simd_s,
        shipped: shipped(simd::GATHER_PAIRS_SIMD),
    });

    // aggregate: the SUM/MIN/MAX slice folds of the aggregate operator.
    let mut sink = 0i64;
    let scalar_s = best_of(reps, passes, || {
        sink = sink.wrapping_add(simd::sum_i64_scalar(&keys));
        sink = sink.wrapping_add(simd::min_i64_scalar(&keys).unwrap_or(0));
        sink = sink.wrapping_add(simd::max_i64_scalar(&keys).unwrap_or(0));
    });
    let simd_s = best_of(reps, passes, || {
        sink = sink.wrapping_add(simd::sum_i64(&keys));
        sink = sink.wrapping_add(simd::min_i64(&keys).unwrap_or(0));
        sink = sink.wrapping_add(simd::max_i64(&keys).unwrap_or(0));
    });
    std::hint::black_box(sink);
    kernels.push(SimdKernelBench {
        name: "aggregate".into(),
        scalar_s,
        simd_s,
        speedup: scalar_s / simd_s,
        shipped: shipped(simd::AGG_SIMD),
    });

    // bucket_hash: partition bucketing (ships scalar — the multiply-
    // shift hash did not pay off vectorized; measured to prove it).
    let mut buckets: Vec<u32> = Vec::with_capacity(n);
    let scalar_s = best_of(reps, passes, || {
        buckets.clear();
        simd::bucket_keys_scalar(&keys, 8, &mut buckets);
    });
    let simd_s = best_of(reps, passes, || {
        buckets.clear();
        simd::bucket_keys_simd_for_bench(&keys, 8, &mut buckets);
    });
    kernels.push(SimdKernelBench {
        name: "bucket_hash".into(),
        scalar_s,
        simd_s,
        speedup: scalar_s / simd_s,
        shipped: shipped(simd::BUCKET_HASH_SIMD),
    });

    SimdSection {
        simd_enabled: mj_relalg::simd::simd_enabled(),
        elements: n as u64,
        passes,
        reps,
        kernels,
    }
}

/// Measures the wide chain late-vs-eager: `relations` relations of
/// `(a, b, p0..p<payload_cols>)` rows chained on `b = a`, `SELECT *` so
/// every payload column must reach the client. The eager arm copies all
/// payloads through every join; the late arm moves refs and gathers once
/// at the root.
pub fn late_comparison(
    relations: usize,
    n: usize,
    payload_cols: usize,
    workers: usize,
    reps: usize,
) -> Result<LateComparison> {
    use mj_exec::{Database, DbConfig, LateMode};
    use mj_relalg::{Attribute, Relation, Schema, Tuple, Value};

    let err = |e: mj_exec::MjError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let query = mj_exec::chain_query_sql(relations);

    // Chain relations: `a` unique 0..n, `b` a permutation of 0..n (every
    // join matches exactly once), `payload_cols` payload columns.
    let mut attrs = vec![Attribute::int("a"), Attribute::int("b")];
    for p in 0..payload_cols {
        attrs.push(Attribute::int(format!("p{p}")));
    }
    let schema = Schema::new(attrs).shared();
    let mut catalog: Vec<(String, Arc<Relation>)> = Vec::with_capacity(relations);
    for r in 0..relations {
        let tuples = (0..n as i64)
            .map(|i| {
                let mut vals = Vec::with_capacity(2 + payload_cols);
                vals.push(Value::Int(i));
                vals.push(Value::Int((i * 7919 + r as i64) % n as i64));
                for p in 0..payload_cols as i64 {
                    vals.push(Value::Int(i * 100 + p));
                }
                Tuple::new(vals)
            })
            .collect();
        catalog.push((
            format!("R{r}"),
            Arc::new(Relation::new_unchecked(schema.clone(), tuples)),
        ));
    }

    let mut runs: Vec<LateRun> = Vec::new();
    let mut results: Vec<mj_relalg::Relation> = Vec::new();
    for late in [LateMode::Always, LateMode::Never] {
        let mut config = DbConfig::default();
        config.exec.workers = workers;
        config.exec.late = late;
        let db = Database::open(config).map_err(err)?;
        for (name, rel) in &catalog {
            db.register(name, rel.clone()).map_err(err)?;
        }
        db.analyze().map_err(err)?;
        let planned = db.plan(&query).map_err(err)?;
        let warm = db.engine().run(&planned.plan, &planned.binding)?;
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let started = Instant::now();
            let outcome = db.engine().run(&planned.plan, &planned.binding)?;
            best = best.min(started.elapsed().as_secs_f64());
            debug_assert_eq!(outcome.relation.len(), warm.relation.len());
        }
        runs.push(LateRun {
            late_mode: format!("{late:?}"),
            elapsed_s: best,
            result_tuples: warm.relation.len() as u64,
        });
        results.push(warm.relation);
    }
    if !results[0].multiset_eq(&results[1]) {
        return Err(mj_relalg::RelalgError::InvalidPlan(format!(
            "late materialization changed the result: {} vs {} rows",
            results[0].len(),
            results[1].len()
        )));
    }
    let eager = runs.pop().expect("two runs");
    let late = runs.pop().expect("two runs");
    Ok(LateComparison {
        relations,
        tuples_per_relation: n as u64,
        payload_cols,
        workers,
        query,
        late_speedup: eager.elapsed_s / late.elapsed_s,
        late,
        eager,
    })
}

/// Produces the `BENCH_8.json` report. `quick` shrinks the workload for
/// CI smoke runs; the checked-in baseline uses the full size.
pub fn bench8_report(quick: bool) -> Result<Bench8Report> {
    let (simd_n, passes, simd_reps) = if quick {
        (1 << 14, 8, 2)
    } else {
        (1 << 16, 64, 5)
    };
    let (l_relations, l_n, l_payload, l_reps) = if quick {
        (4, 4_000, 6, 2)
    } else {
        (6, 40_000, 6, 5)
    };
    // The original BENCH_5/6/7 workload shapes, so the re-runs are
    // directly comparable to the checked-in baselines.
    let (p_relations, p_n, p_reps) = if quick { (4, 4_000, 2) } else { (6, 40_000, 5) };
    let (o_relations, o_n, o_reps) = if quick { (4, 2_000, 2) } else { (6, 20_000, 5) };
    let (kernel_n, kernel_reps) = if quick { (50_000, 2) } else { (400_000, 5) };
    Ok(Bench8Report {
        bench: 8,
        quick,
        simd_kernels: simd_kernel_benches(simd_n, passes, simd_reps),
        late_materialization: late_comparison(l_relations, l_n, l_payload, 4, l_reps)?,
        reruns: Bench8Reruns {
            pushdown: operator_comparison(p_relations, p_n, 4, p_reps)?,
            guardrail_overhead: overhead_comparison(o_relations, o_n, 4, o_reps)?,
            join_kernels: join_kernel_comparison(kernel_n, kernel_reps)?,
        },
    })
}

/// Renders a `BENCH_8.json` report as pretty-enough JSON.
pub fn bench8_to_json(report: &Bench8Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"simd_kernels\":{", "\n\"simd_kernels\":{\n  ")
        .replace("\"kernels\":[", "\n  \"kernels\":[\n    ")
        .replace("},{\"name\"", "},\n    {\"name\"")
        .replace(
            "\"late_materialization\":{",
            "\n\"late_materialization\":{\n  ",
        )
        .replace("\"late\":{", "\n  \"late\":{")
        .replace("\"eager\":{", "\n  \"eager\":{")
        .replace("\"late_speedup\":", "\n  \"late_speedup\":")
        .replace("\"reruns\":{", "\n\"reruns\":{\n  ")
        .replace("\"pushdown\":{", "\n  \"pushdown\":{")
        .replace("\"guardrail_overhead\":{", "\n  \"guardrail_overhead\":{")
        .replace("\"join_kernels\":{", "\n  \"join_kernels\":{")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_8.json` (CI smoke run).
pub fn validate_bench8_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in [
        "bench",
        "quick",
        "simd_kernels",
        "late_materialization",
        "reruns",
    ] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let s = v.get("simd_kernels").expect("checked");
    for key in ["simd_enabled", "elements", "passes", "reps", "kernels"] {
        if s.get(key).is_none() {
            return Err(format!("missing key `simd_kernels.{key}`"));
        }
    }
    let kernels = match s.get("kernels") {
        Some(JsonValue::Arr(items)) if items.len() == 5 => items,
        _ => return Err("`simd_kernels.kernels` must list the 5 kernels".into()),
    };
    for k in kernels {
        for key in ["name", "scalar_s", "simd_s", "speedup", "shipped"] {
            if k.get(key).is_none() {
                return Err(format!("missing key `simd_kernels.kernels[].{key}`"));
            }
        }
    }
    let l = v.get("late_materialization").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "payload_cols",
        "workers",
        "query",
        "late",
        "eager",
        "late_speedup",
    ] {
        if l.get(key).is_none() {
            return Err(format!("missing key `late_materialization.{key}`"));
        }
    }
    for arm in ["late", "eager"] {
        let run = l.get(arm).expect("checked");
        for key in ["late_mode", "elapsed_s", "result_tuples"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `late_materialization.{arm}.{key}`"));
            }
        }
    }
    let r = v.get("reruns").expect("checked");
    for key in ["pushdown", "guardrail_overhead", "join_kernels"] {
        if r.get(key).is_none() {
            return Err(format!("missing key `reruns.{key}`"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// BENCH_9: the query server — wire throughput, concurrency, noisy
// neighbors over the wire, and a guardrail-overhead rerun proving the
// metrics registry costs < 5%.
// ---------------------------------------------------------------------------

/// One timed server workload: some clients each running some queries
/// against one shared served engine.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ServerRun {
    /// Concurrent wire clients.
    pub clients: u64,
    /// Total queries completed across all clients.
    pub queries: u64,
    /// Wall-clock seconds from first send to last reply.
    pub elapsed_s: f64,
    /// Sustained queries per second over that wall-clock window.
    pub qps: f64,
    /// Median per-query wire latency (send to terminal frame) in ms.
    pub p50_ms: f64,
    /// 99th-percentile per-query wire latency in ms.
    pub p99_ms: f64,
}

/// The noisy-neighbor section, measured over the wire: a paced light
/// client sampled while budget-shedding noisy clients hammer the same
/// server.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NoisyServerRun {
    /// Continuously querying noisy clients.
    pub noisy_clients: u64,
    /// Per-noisy-query memory budget (bytes) sent as a wire option; the
    /// noisy query busts it, so the engine sheds the load with typed
    /// `resource_exhausted` errors.
    pub noisy_budget_bytes: u64,
    /// Light-query latency samples taken.
    pub samples: u64,
    /// Light p50 under noise, ms.
    pub light_p50_ms: f64,
    /// Light p99 under noise, ms.
    pub light_p99_ms: f64,
    /// Idle p50 (the back-to-back section's p50), ms.
    pub idle_p50_ms: f64,
    /// The headline gate: light p99 under noise over idle p50.
    pub p99_vs_idle_p50: f64,
    /// Noisy queries the engine aborted for busting their budget —
    /// nonzero proves the shedding actually engaged.
    pub noisy_budget_aborts: u64,
}

/// Liveness accounting after the concurrent hammer.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ServerLiveness {
    /// Engine worker threads configured.
    pub engine_workers: u64,
    /// Engine worker threads alive after the load (must equal
    /// `engine_workers`).
    pub engine_workers_alive: u64,
    /// Connection workers configured.
    pub conn_workers: u64,
    /// Fresh post-load probe connections that answered (one per
    /// connection worker, dealt round-robin — must equal `conn_workers`).
    pub post_load_probes_ok: u64,
    /// Operator-task panics the engine contained during the whole bench.
    pub panics_contained: u64,
}

/// The `BENCH_9.json` report.
#[derive(Clone, Debug, Serialize)]
pub struct Bench9Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Chain length of the benchmark query.
    pub relations: u64,
    /// Base tuples per light relation.
    pub tuples_per_relation: u64,
    /// The paper's per-process startup cost (ms) configured on the
    /// engine — the latency that concurrency must overlap to win.
    pub startup_cost_ms: u64,
    /// One client, back-to-back queries: the sequential wire baseline.
    pub back_to_back: ServerRun,
    /// Many clients on one shared engine.
    pub concurrent: ServerRun,
    /// `concurrent.qps / back_to_back.qps` — the headline gate (≥ 1.5:
    /// overlapped startup + pipelined connections must beat sequential).
    pub concurrency_speedup: f64,
    /// Light-query latency under budget-shedding noisy wire clients.
    pub noisy: NoisyServerRun,
    /// Worker-thread liveness after the hammer.
    pub liveness: ServerLiveness,
    /// BENCH_6's guardrail-overhead workload, re-run with the metrics
    /// registry wired in — bands against the checked-in BENCH_6 prove
    /// the metrics cost stays under 5%.
    pub guardrail_rerun: OverheadComparison,
}

/// Percentile over unsorted latency samples (nearest-rank).
fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1] * 1e3
}

/// Builds the served database for the wire benchmark: a light chain
/// family `R0..` and a heavier noisy chain `N0..` in one catalog, with
/// the paper's startup cost configured.
fn bench9_db(
    relations: usize,
    n: usize,
    noisy_n: usize,
    startup_ms: u64,
    workers: usize,
) -> Result<Arc<mj_exec::Database>> {
    use mj_exec::{generate_family, Database, DbConfig, QueryFamily};
    use mj_relalg::RelationProvider;

    let err = |e: mj_exec::MjError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let light = generate_family(QueryFamily::Chain, relations, n, 5)?;
    let noisy = generate_family(QueryFamily::Chain, relations + 1, noisy_n, 6)?;
    let mut config = DbConfig::default();
    config.exec.workers = workers;
    config.exec.startup_cost = Some(std::time::Duration::from_millis(startup_ms));
    let db = Database::open(config).map_err(err)?;
    for i in 0..relations {
        db.register(format!("R{i}"), light.catalog.relation(&format!("R{i}"))?)
            .map_err(err)?;
    }
    for i in 0..relations + 1 {
        db.register(format!("N{i}"), noisy.catalog.relation(&format!("R{i}"))?)
            .map_err(err)?;
    }
    db.analyze().map_err(err)?;
    Ok(Arc::new(db))
}

/// Runs `clients` wire clients, each issuing `per_client` queries
/// back-to-back, all against `addr`. Clients connect first, then start
/// together off a barrier so the wall-clock window measures sustained
/// concurrent load, not connection setup.
fn server_hammer(
    addr: std::net::SocketAddr,
    query: &str,
    clients: usize,
    per_client: usize,
) -> Result<ServerRun> {
    use mj_server::Client;
    use std::sync::Barrier;

    let barrier = Arc::new(Barrier::new(clients));
    let query = Arc::new(query.to_string());
    let wire_err = |e: mj_server::ClientError| mj_relalg::RelalgError::InvalidPlan(e.to_string());

    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    let started = std::thread::scope(|scope| -> Result<Instant> {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = barrier.clone();
                let query = query.clone();
                scope.spawn(
                    move || -> std::result::Result<Vec<f64>, mj_server::ClientError> {
                        // Connect before the barrier: setup is excluded from
                        // the measured window.
                        let mut client =
                            Client::connect_timeout(addr, std::time::Duration::from_secs(30))?;
                        barrier.wait();
                        let mut lats = Vec::with_capacity(per_client);
                        for _ in 0..per_client {
                            let sent = Instant::now();
                            let reply = client.query(&query)?;
                            debug_assert!(!reply.rows.is_empty());
                            lats.push(sent.elapsed().as_secs_f64());
                        }
                        Ok(lats)
                    },
                )
            })
            .collect();
        let started = Instant::now();
        for h in handles {
            latencies.extend(h.join().expect("client thread").map_err(wire_err)?);
        }
        Ok(started)
    })?;
    // `started` is captured after spawning (threads hold at the barrier
    // until all are connected); elapsed covers barrier release to last
    // reply, minus a negligible connect tail.
    let elapsed = started.elapsed().as_secs_f64();
    let queries = latencies.len() as u64;
    let p50 = percentile_ms(&mut latencies, 0.50);
    let p99 = percentile_ms(&mut latencies, 0.99);
    Ok(ServerRun {
        clients: clients as u64,
        queries,
        elapsed_s: elapsed,
        qps: queries as f64 / elapsed,
        p50_ms: p50,
        p99_ms: p99,
    })
}

/// The noisy-neighbor section: `noisy_clients` wire clients loop a
/// heavier query carrying a memory budget it busts (typed
/// `resource_exhausted` shedding), while one light client takes paced
/// latency samples. Best-of-`reps` by p99, same discipline as BENCH_6.
#[allow(clippy::too_many_arguments)]
fn noisy_server_run(
    addr: std::net::SocketAddr,
    db: &mj_exec::Database,
    light_query: &str,
    noisy_query: &str,
    noisy_clients: usize,
    noisy_budget: u64,
    samples: usize,
    idle_p50_ms: f64,
    reps: usize,
) -> Result<NoisyServerRun> {
    use mj_server::{Client, ClientError};
    use std::sync::atomic::{AtomicBool, Ordering};

    let wire_err = |e: ClientError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let mut best: Option<(f64, f64)> = None; // (p99_ms, p50_ms)
    for _ in 0..reps.max(1) {
        let stop = Arc::new(AtomicBool::new(false));
        let light = std::thread::scope(|scope| -> Result<Vec<f64>> {
            let noisy_handles: Vec<_> = (0..noisy_clients)
                .map(|_| {
                    let stop = stop.clone();
                    scope.spawn(move || -> std::result::Result<(), ClientError> {
                        let mut client =
                            Client::connect_timeout(addr, std::time::Duration::from_secs(30))?;
                        while !stop.load(Ordering::Relaxed) {
                            client.send_query_with(noisy_query, None, Some(noisy_budget))?;
                            match client.collect_reply() {
                                // The budget doing its job is not a failure.
                                Ok(_) | Err(ClientError::Server(_)) => {}
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            // Let the noise establish itself.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut client = Client::connect_timeout(addr, std::time::Duration::from_secs(30))
                .map_err(wire_err)?;
            let mut lats = Vec::with_capacity(samples);
            for _ in 0..samples {
                let sent = Instant::now();
                client.query(light_query).map_err(wire_err)?;
                lats.push(sent.elapsed().as_secs_f64());
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
            stop.store(true, Ordering::Relaxed);
            for h in noisy_handles {
                h.join().expect("noisy client thread").map_err(wire_err)?;
            }
            Ok(lats)
        })?;
        let mut lats = light;
        let p50 = percentile_ms(&mut lats, 0.50);
        let p99 = percentile_ms(&mut lats, 0.99);
        if best.map(|(b, _)| p99 < b).unwrap_or(true) {
            best = Some((p99, p50));
        }
    }
    let (p99, p50) = best.expect("at least one rep");
    Ok(NoisyServerRun {
        noisy_clients: noisy_clients as u64,
        noisy_budget_bytes: noisy_budget,
        samples: samples as u64,
        light_p50_ms: p50,
        light_p99_ms: p99,
        idle_p50_ms,
        p99_vs_idle_p50: p99 / idle_p50_ms,
        noisy_budget_aborts: db.stats().budget_aborts,
    })
}

/// Produces the `BENCH_9.json` report: wire throughput back-to-back vs
/// ~1k concurrent clients on one shared engine, noisy-neighbor latency
/// over the wire, post-load worker liveness, and the BENCH_6 guardrail
/// rerun. `quick` shrinks the workload for CI smoke runs.
pub fn bench9_report(quick: bool) -> Result<Bench9Report> {
    use mj_server::{Client, MetricsFormat, Server, ServerConfig};

    const RELATIONS: usize = 3;
    const STARTUP_MS: u64 = 12;
    const ENGINE_WORKERS: usize = 2;
    const CONN_WORKERS: usize = 4;

    let (n, noisy_n) = if quick { (300, 2_000) } else { (400, 4_000) };
    let (b2b_queries, clients, per_client) = if quick { (30, 64, 3) } else { (120, 1_000, 5) };
    let (noisy_clients, noisy_samples, noisy_reps) = if quick { (2, 15, 1) } else { (4, 40, 3) };
    let (o_relations, o_n, o_reps) = if quick { (4, 2_000, 2) } else { (6, 20_000, 5) };

    // The guardrail rerun goes first, before the wire hammer churns the
    // allocator: it is banded against BENCH_6, which also measured on a
    // fresh process.
    let guardrail_rerun = overhead_comparison(o_relations, o_n, 4, o_reps)?;

    let db = bench9_db(RELATIONS, n, noisy_n, STARTUP_MS, ENGINE_WORKERS)?;
    let server = Server::start(
        db.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: CONN_WORKERS,
            // Headroom above the concurrent fleet plus probes.
            max_clients: clients + 64,
        },
    )
    .map_err(|e| mj_relalg::RelalgError::InvalidPlan(format!("server start: {e}")))?;
    let addr = server.local_addr();
    let light_query = prefixed_chain_sql("R", RELATIONS);
    let noisy_query = prefixed_chain_sql("N", RELATIONS + 1);

    // Warm up the planner and allocator out of band.
    server_hammer(addr, &light_query, 1, 5)?;

    let back_to_back = server_hammer(addr, &light_query, 1, b2b_queries)?;
    let concurrent = server_hammer(addr, &light_query, clients, per_client)?;

    // Liveness after the hammer: the engine pool is intact and every
    // connection worker still answers a fresh probe (probes are dealt
    // round-robin, so `conn_workers` consecutive connects cover the pool).
    let stats = db.stats();
    let mut probes_ok = 0u64;
    for _ in 0..CONN_WORKERS {
        let mut probe = Client::connect_timeout(addr, std::time::Duration::from_secs(10))
            .map_err(|e| mj_relalg::RelalgError::InvalidPlan(e.to_string()))?;
        if probe.metrics(MetricsFormat::Json).is_ok() {
            probes_ok += 1;
        }
    }
    let liveness = ServerLiveness {
        engine_workers: ENGINE_WORKERS as u64,
        engine_workers_alive: stats.workers_total,
        conn_workers: CONN_WORKERS as u64,
        post_load_probes_ok: probes_ok,
        panics_contained: stats.panics_contained,
    };

    let noisy = noisy_server_run(
        addr,
        &db,
        &light_query,
        &noisy_query,
        noisy_clients,
        128 * 1024,
        noisy_samples,
        back_to_back.p50_ms,
        noisy_reps,
    )?;
    server.shutdown();

    Ok(Bench9Report {
        bench: 9,
        quick,
        relations: RELATIONS as u64,
        tuples_per_relation: n as u64,
        startup_cost_ms: STARTUP_MS,
        concurrency_speedup: concurrent.qps / back_to_back.qps,
        back_to_back,
        concurrent,
        noisy,
        liveness,
        guardrail_rerun,
    })
}

/// Renders a `BENCH_9.json` report as pretty-enough JSON.
pub fn bench9_to_json(report: &Bench9Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace("\"back_to_back\":{", "\n\"back_to_back\":{")
        .replace("\"concurrent\":{", "\n\"concurrent\":{")
        .replace("\"concurrency_speedup\":", "\n\"concurrency_speedup\":")
        .replace("\"noisy\":{", "\n\"noisy\":{")
        .replace("\"liveness\":{", "\n\"liveness\":{")
        .replace("\"guardrail_rerun\":{", "\n\"guardrail_rerun\":{\n  ")
        .replace("\"guardrails_off\":", "\n  \"guardrails_off\":")
        .replace("\"guardrails_on\":", "\n  \"guardrails_on\":")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_9.json` (CI smoke run).
pub fn validate_bench9_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in [
        "bench",
        "quick",
        "relations",
        "tuples_per_relation",
        "startup_cost_ms",
        "back_to_back",
        "concurrent",
        "concurrency_speedup",
        "noisy",
        "liveness",
        "guardrail_rerun",
    ] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    for section in ["back_to_back", "concurrent"] {
        let run = v.get(section).expect("checked");
        for key in ["clients", "queries", "elapsed_s", "qps", "p50_ms", "p99_ms"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `{section}.{key}`"));
            }
        }
    }
    let n = v.get("noisy").expect("checked");
    for key in [
        "noisy_clients",
        "noisy_budget_bytes",
        "samples",
        "light_p50_ms",
        "light_p99_ms",
        "idle_p50_ms",
        "p99_vs_idle_p50",
        "noisy_budget_aborts",
    ] {
        if n.get(key).is_none() {
            return Err(format!("missing key `noisy.{key}`"));
        }
    }
    let l = v.get("liveness").expect("checked");
    for key in [
        "engine_workers",
        "engine_workers_alive",
        "conn_workers",
        "post_load_probes_ok",
        "panics_contained",
    ] {
        if l.get(key).is_none() {
            return Err(format!("missing key `liveness.{key}`"));
        }
    }
    let g = v.get("guardrail_rerun").expect("checked");
    for key in ["overhead_ratio", "guardrails_off", "guardrails_on"] {
        if g.get(key).is_none() {
            return Err(format!("missing key `guardrail_rerun.{key}`"));
        }
    }
    Ok(())
}

/// One single-client payload-throughput run of the wide-result query —
/// the unit of the BENCH_10 JSON-vs-binary comparison. Throughput is
/// measured client-side: rows fully decoded per wall-clock second.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PayloadRun {
    /// Queries issued back-to-back over one connection.
    pub queries: u64,
    /// Total rows decoded across all queries.
    pub rows: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Client-side decoded-row throughput.
    pub rows_per_s: f64,
}

/// The prepared-statement section of BENCH_10: a short-query hammer
/// where planning dominates execution, ad-hoc (re-plan every time) vs
/// prepare-once + execute (shared plan cache + parameter binding).
#[derive(Clone, Debug, Serialize)]
pub struct PreparedBench {
    /// Chain length of the hammered query.
    pub relations: u64,
    /// Tuples per relation (tiny on purpose: execution is the noise
    /// floor, planning is the signal).
    pub tuples_per_relation: u64,
    /// Every query sent as fresh text: parse + bind + plan per request.
    pub adhoc: ServerRun,
    /// One `prepare` per client, then parameterized `execute`s.
    pub prepared: ServerRun,
    /// `prepared.qps / adhoc.qps` — the headline gate (≥ 2.0).
    pub speedup: f64,
    /// Plan-cache hits observed during this section.
    pub plan_cache_hits: u64,
    /// Plan-cache misses observed during this section.
    pub plan_cache_misses: u64,
    /// Plan-cache evictions observed during this section.
    pub plan_cache_evictions: u64,
}

/// The wire-format section of BENCH_10: the same wide result streamed
/// as row-pivoted JSON vs binary columnar frames.
#[derive(Clone, Debug, Serialize)]
pub struct WireFormatBench {
    /// Chain length of the payload query (short: payload dominates).
    pub relations: u64,
    /// Tuples per relation.
    pub tuples_per_relation: u64,
    /// Result rows per query (measured).
    pub rows_per_query: u64,
    /// Row-pivoted JSON `batch` lines.
    pub json: PayloadRun,
    /// Length-prefixed binary columnar frames.
    pub bin: PayloadRun,
    /// `bin.rows_per_s / json.rows_per_s` — the headline gate (≥ 1.5).
    pub bin_speedup: f64,
}

/// The `BENCH_10.json` report.
#[derive(Clone, Debug, Serialize)]
pub struct Bench10Report {
    /// Monotone bench index (`BENCH_<bench>.json`).
    pub bench: u32,
    /// True for a shrunken `--quick` smoke run.
    pub quick: bool,
    /// Prepared statements + shared plan cache vs ad-hoc re-planning.
    pub prepared: PreparedBench,
    /// Binary columnar vs JSON result encoding.
    pub wire_format: WireFormatBench,
    /// The full BENCH_9 wire benchmark re-run with the plan cache and
    /// binary encoder compiled in — its gates must still pass, and CI
    /// bands its concurrency speedup against the checked-in BENCH_9.
    pub bench9_rerun: Bench9Report,
}

/// Builds a served chain-family database for the BENCH_10 sections.
fn bench10_db(
    relations: usize,
    n: usize,
    seed: u64,
    workers: usize,
) -> Result<Arc<mj_exec::Database>> {
    use mj_exec::{generate_family, Database, DbConfig, QueryFamily};
    use mj_relalg::RelationProvider;

    let err = |e: mj_exec::MjError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let instance = generate_family(QueryFamily::Chain, relations, n, seed)?;
    let mut config = DbConfig::default();
    config.exec.workers = workers;
    let db = Database::open(config).map_err(err)?;
    for i in 0..relations {
        db.register(
            format!("R{i}"),
            instance.catalog.relation(&format!("R{i}"))?,
        )
        .map_err(err)?;
    }
    db.analyze().map_err(err)?;
    Ok(Arc::new(db))
}

/// Runs `clients` wire clients issuing `per_client` filtered chain
/// queries each, either as fresh ad-hoc text (`prepared = false`, a full
/// parse/bind/plan per request) or through one prepared statement per
/// client (`prepared = true`). The filter argument rotates through
/// `0..arg_mod` so both modes sweep the same literals; prepare and
/// connect both happen before the barrier, so the measured window is
/// pure request throughput.
fn prepared_hammer(
    addr: std::net::SocketAddr,
    base: &str,
    filter_col: &str,
    arg_mod: usize,
    clients: usize,
    per_client: usize,
    prepared: bool,
) -> Result<ServerRun> {
    use mj_server::Client;
    use std::sync::Barrier;

    let barrier = Arc::new(Barrier::new(clients));
    let base = Arc::new(base.to_string());
    let filter_col = Arc::new(filter_col.to_string());
    let wire_err = |e: mj_server::ClientError| mj_relalg::RelalgError::InvalidPlan(e.to_string());

    let mut latencies: Vec<f64> = Vec::with_capacity(clients * per_client);
    let started = std::thread::scope(|scope| -> Result<Instant> {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = barrier.clone();
                let base = base.clone();
                let filter_col = filter_col.clone();
                scope.spawn(
                    move || -> std::result::Result<Vec<f64>, mj_server::ClientError> {
                        let mut client =
                            Client::connect_timeout(addr, std::time::Duration::from_secs(30))?;
                        let stmt = if prepared {
                            Some(client.prepare(&format!("{base} WHERE {filter_col} < ?1"))?)
                        } else {
                            None
                        };
                        barrier.wait();
                        let mut lats = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let arg = (i % arg_mod) as i64;
                            let sent = Instant::now();
                            match &stmt {
                                Some(s) => {
                                    client.execute(s.id, &[arg])?;
                                }
                                None => {
                                    client.query(&format!("{base} WHERE {filter_col} < {arg}"))?;
                                }
                            }
                            lats.push(sent.elapsed().as_secs_f64());
                        }
                        Ok(lats)
                    },
                )
            })
            .collect();
        let started = Instant::now();
        for h in handles {
            latencies.extend(h.join().expect("client thread").map_err(wire_err)?);
        }
        Ok(started)
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    let queries = latencies.len() as u64;
    let p50 = percentile_ms(&mut latencies, 0.50);
    let p99 = percentile_ms(&mut latencies, 0.99);
    Ok(ServerRun {
        clients: clients as u64,
        queries,
        elapsed_s: elapsed,
        qps: queries as f64 / elapsed,
        p50_ms: p50,
        p99_ms: p99,
    })
}

/// One client, `queries` wide-payload queries back-to-back, decoding
/// every row — `bin` switches the result stream to binary columnar
/// frames.
fn payload_run(
    addr: std::net::SocketAddr,
    query: &str,
    queries: usize,
    bin: bool,
) -> Result<PayloadRun> {
    use mj_server::Client;

    let wire_err = |e: mj_server::ClientError| mj_relalg::RelalgError::InvalidPlan(e.to_string());
    let mut client =
        Client::connect_timeout(addr, std::time::Duration::from_secs(30)).map_err(wire_err)?;
    let started = Instant::now();
    let mut rows = 0u64;
    for _ in 0..queries {
        if bin {
            let reply = client.query_bin(query).map_err(wire_err)?;
            // The decode is already typed; touch the columns so the
            // compiler cannot elide it.
            let decoded: usize = reply.batches.iter().map(|b| b.row_count).sum();
            assert_eq!(decoded as u64, reply.rows, "bin decode row count");
            rows += reply.rows;
        } else {
            let reply = client.query(query).map_err(wire_err)?;
            rows += reply.rows.len() as u64;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    Ok(PayloadRun {
        queries: queries as u64,
        rows,
        elapsed_s: elapsed,
        rows_per_s: rows as f64 / elapsed,
    })
}

/// Produces the `BENCH_10.json` report: prepared statements + the shared
/// plan cache vs ad-hoc re-planning on a short-query hammer, binary
/// columnar vs JSON encoding on a wide-payload stream, and the full
/// BENCH_9 wire benchmark re-run on the new serving path. `quick`
/// shrinks every section for CI smoke runs.
pub fn bench10_report(quick: bool) -> Result<Bench10Report> {
    use mj_exec::chain_query_sql;
    use mj_server::{Server, ServerConfig};

    let server_err =
        |e: std::io::Error| mj_relalg::RelalgError::InvalidPlan(format!("server start: {e}"));

    // --- Prepared section: planning is the signal, execution the noise
    // floor. A 14-relation chain over tiny relations puts the cost-based
    // planner's join-order search squarely in the request path (~ms)
    // while execution stays ~100 µs — the workload prepared statements
    // exist for.
    const P_RELATIONS: usize = 14;
    const P_TUPLES: usize = 50;
    let (p_clients, p_per_client) = if quick { (4, 25) } else { (8, 150) };

    let db = bench10_db(P_RELATIONS, P_TUPLES, 41, 2)?;
    let server = Server::start(
        db.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 4,
            max_clients: 256,
        },
    )
    .map_err(server_err)?;
    let addr = server.local_addr();
    let base = chain_query_sql(P_RELATIONS);

    // Warm both paths out of band.
    prepared_hammer(addr, &base, "R1.id", P_TUPLES, 1, 5, false)?;
    prepared_hammer(addr, &base, "R1.id", P_TUPLES, 1, 5, true)?;

    let before = db.stats();
    let adhoc = prepared_hammer(
        addr,
        &base,
        "R1.id",
        P_TUPLES,
        p_clients,
        p_per_client,
        false,
    )?;
    let prepared_run = prepared_hammer(
        addr,
        &base,
        "R1.id",
        P_TUPLES,
        p_clients,
        p_per_client,
        true,
    )?;
    let after = db.stats();
    server.shutdown();
    let prepared = PreparedBench {
        relations: P_RELATIONS as u64,
        tuples_per_relation: P_TUPLES as u64,
        speedup: prepared_run.qps / adhoc.qps,
        adhoc,
        prepared: prepared_run,
        plan_cache_hits: after.plan_cache_hits - before.plan_cache_hits,
        plan_cache_misses: after.plan_cache_misses - before.plan_cache_misses,
        plan_cache_evictions: after.plan_cache_evictions - before.plan_cache_evictions,
    };

    // --- Wire-format section: payload is the signal (short chain, many
    // rows, every row decoded client-side).
    const W_RELATIONS: usize = 2;
    let w_n = if quick { 4_000 } else { 30_000 };
    let w_queries = if quick { 4 } else { 10 };

    let db = bench10_db(W_RELATIONS, w_n, 43, 2)?;
    let server = Server::start(
        db.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 2,
            max_clients: 16,
        },
    )
    .map_err(server_err)?;
    let addr = server.local_addr();
    let wide = chain_query_sql(W_RELATIONS);
    payload_run(addr, &wide, 1, false)?;
    payload_run(addr, &wide, 1, true)?;
    let json = payload_run(addr, &wide, w_queries, false)?;
    let bin = payload_run(addr, &wide, w_queries, true)?;
    server.shutdown();
    let wire_format = WireFormatBench {
        relations: W_RELATIONS as u64,
        tuples_per_relation: w_n as u64,
        rows_per_query: json.rows / json.queries.max(1),
        bin_speedup: bin.rows_per_s / json.rows_per_s,
        json,
        bin,
    };

    // --- BENCH_9 rerun: the previous wire benchmark, unchanged, on the
    // serving path that now carries the plan cache and binary encoder.
    let bench9_rerun = bench9_report(quick)?;

    Ok(Bench10Report {
        bench: 10,
        quick,
        prepared,
        wire_format,
        bench9_rerun,
    })
}

/// Renders a `BENCH_10.json` report as pretty-enough JSON.
pub fn bench10_to_json(report: &Bench10Report) -> String {
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("{\"bench\"", "{\n\"bench\"")
        .replace(
            "\"prepared\":{\"relations\"",
            "\n\"prepared\":{\n  \"relations\"",
        )
        .replace("\"adhoc\":{", "\n  \"adhoc\":{")
        .replace("\"prepared\":{\"clients\"", "\n  \"prepared\":{\"clients\"")
        .replace("\"speedup\":", "\n  \"speedup\":")
        .replace("\"wire_format\":{", "\n\"wire_format\":{\n  ")
        .replace("\"json\":{", "\n  \"json\":{")
        .replace("\"bin\":{", "\n  \"bin\":{")
        .replace("\"bin_speedup\":", "\n  \"bin_speedup\":")
        .replace("\"bench9_rerun\":{", "\n\"bench9_rerun\":{\n  ")
        .replace("}}", "}\n}")
}

/// Validates the schema of an emitted `BENCH_10.json` (CI smoke run).
pub fn validate_bench10_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in ["bench", "quick", "prepared", "wire_format", "bench9_rerun"] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let p = v.get("prepared").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "adhoc",
        "prepared",
        "speedup",
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_evictions",
    ] {
        if p.get(key).is_none() {
            return Err(format!("missing key `prepared.{key}`"));
        }
    }
    for section in ["adhoc", "prepared"] {
        let run = p.get(section).expect("checked");
        for key in ["clients", "queries", "elapsed_s", "qps", "p50_ms", "p99_ms"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `prepared.{section}.{key}`"));
            }
        }
    }
    let w = v.get("wire_format").expect("checked");
    for key in [
        "relations",
        "tuples_per_relation",
        "rows_per_query",
        "json",
        "bin",
        "bin_speedup",
    ] {
        if w.get(key).is_none() {
            return Err(format!("missing key `wire_format.{key}`"));
        }
    }
    for section in ["json", "bin"] {
        let run = w.get(section).expect("checked");
        for key in ["queries", "rows", "elapsed_s", "rows_per_s"] {
            if run.get(key).is_none() {
                return Err(format!("missing key `wire_format.{section}.{key}`"));
            }
        }
    }
    // The rerun must carry the full BENCH_9 schema.
    let rerun = serde_json::to_string(v.get("bench9_rerun").expect("checked"))
        .map_err(|e| e.to_string())?;
    validate_bench9_json(&rerun).map_err(|e| format!("bench9_rerun: {e}"))?;
    Ok(())
}

/// Renders a report as pretty-enough JSON (one strategy per line).
pub fn report_to_json(report: &BenchReport) -> String {
    // The shim's serializer is compact; expand the two top-level arrays a
    // little for reviewability.
    let json = serde_json::to_string(&report.to_json()).expect("serialization is total");
    json.replace("},{", "},\n  {")
        .replace("\"strategies\":[", "\"strategies\":[\n  ")
        .replace("\"pipelining_hot_path\":", "\n\"pipelining_hot_path\":\n  ")
        .replace("]}", "\n]}")
        .replace("{\"bench\"", "{\n\"bench\"")
}

/// Validates the schema of an emitted report (used by the CI smoke run).
pub fn validate_report_json(text: &str) -> std::result::Result<(), String> {
    let v: JsonValue = serde_json::from_str(text).map_err(|e| e.to_string())?;
    for key in [
        "bench",
        "tuples_per_relation",
        "relations",
        "processors",
        "batch_size",
        "pipelining_hot_path",
        "strategies",
    ] {
        if v.get(key).is_none() {
            return Err(format!("missing key `{key}`"));
        }
    }
    let hot = v.get("pipelining_hot_path").expect("checked");
    for key in [
        "workers",
        "baseline_deep_copy",
        "shared_zero_copy",
        "speedup",
    ] {
        if hot.get(key).is_none() {
            return Err(format!("missing key `pipelining_hot_path.{key}`"));
        }
    }
    match v.get("strategies") {
        Some(JsonValue::Arr(items)) if items.len() == 4 => {}
        _ => return Err("`strategies` must be an array of 4 runs".into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickest_report_is_valid_and_faster_shared() {
        let hot = hot_path_comparison(8_000, 1).unwrap();
        assert_eq!(hot.baseline_deep_copy.tuples, hot.shared_zero_copy.tuples);
        assert_eq!(
            hot.baseline_deep_copy.matches, hot.shared_zero_copy.matches,
            "both movements must compute the same join"
        );
        assert!(hot.speedup > 0.0);
    }

    #[test]
    fn strategy_runs_cover_all_strategies() {
        let runs = strategy_runs(4, 300, 3).unwrap();
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert_eq!(r.result_tuples, 300, "{}", r.strategy);
            assert!(r.tuples_per_sec > 0.0);
        }
    }

    #[test]
    fn concurrent_comparison_runs_and_bounds_threads() {
        // Tiny workload: correctness of the measurement plumbing, not
        // performance. The engine must stay within its fixed pool.
        let c = concurrent_comparison(3, 300, 2, 2, 1).unwrap();
        assert_eq!(c.workers, 2);
        assert_eq!(c.back_to_back.queries, 2);
        assert_eq!(c.concurrent.queries, 2);
        assert_eq!(
            c.back_to_back.tuples, c.concurrent.tuples,
            "both modes run the same queries"
        );
        assert!(c.back_to_back.tuples_per_sec > 0.0);
        assert!(c.concurrent.tuples_per_sec > 0.0);
        assert_eq!(
            c.worker_threads_spawned, 2,
            "query count must not grow the pool"
        );
    }

    #[test]
    fn bench7_runs_and_validates_on_a_tiny_workload() {
        let k = join_kernel_comparison(2_000, 1).unwrap();
        assert_eq!(k.row_path.matches, k.columnar.matches);
        assert_eq!(k.row_path.matches, 2_000, "permutation join: 1:1 matches");
        assert!(k.speedup > 0.0);
        let report = Bench7Report {
            bench: 7,
            quick: true,
            join_kernels: k,
            pushdown: operator_comparison(3, 400, 2, 1).unwrap(),
            guardrail_overhead: overhead_comparison(3, 300, 2, 1).unwrap(),
        };
        let json = bench7_to_json(&report);
        validate_bench7_json(&json).unwrap();
        assert!(validate_bench7_json("{}").is_err());
        assert!(validate_bench7_json("{\"bench\":7,\"quick\":true}").is_err());
    }

    #[test]
    fn bench2_json_schema_validates() {
        let report = Bench2Report {
            bench: 2,
            quick: true,
            concurrent: ConcurrentComparison {
                workers: 4,
                queries: 4,
                relations: 3,
                tuples_per_relation: 10,
                procs_per_query: 1,
                startup_cost_ms: 12.0,
                back_to_back: ConcurrentRun {
                    queries: 4,
                    tuples: 100,
                    elapsed_s: 1.0,
                    tuples_per_sec: 100.0,
                },
                concurrent: ConcurrentRun {
                    queries: 4,
                    tuples: 100,
                    elapsed_s: 0.5,
                    tuples_per_sec: 200.0,
                },
                speedup: 2.0,
                worker_threads_spawned: 4,
            },
        };
        let json = bench2_to_json(&report);
        validate_bench2_json(&json).unwrap();
        assert!(validate_bench2_json("{}").is_err());
        assert!(validate_bench2_json("{\"bench\":2,\"quick\":true}").is_err());
    }

    #[test]
    fn bench3_runs_and_validates_on_a_tiny_workload() {
        let run = planner_family_run(mj_exec::QueryFamily::Chain, 4, 200, 3, 1, 7).unwrap();
        assert_eq!(run.strategies.len(), 4);
        // planner_elapsed_s reuses one of the fixed measurements, so the
        // ratio against their minimum is >= 1 by construction.
        assert!(run.ratio_vs_best >= 1.0);
        assert!(run.result_tuples > 0);
        let report = Bench3Report {
            bench: 3,
            quick: true,
            processors: 3,
            reps: 1,
            families: vec![run.clone(), run.clone(), run],
        };
        let json = bench3_to_json(&report);
        validate_bench3_json(&json).unwrap();
        assert!(validate_bench3_json("{}").is_err());
        assert!(validate_bench3_json("{\"bench\":3,\"quick\":true}").is_err());
    }

    #[test]
    fn bench4_runs_and_validates_on_a_tiny_workload() {
        let c = session_comparison(3, 400, 2, 1).unwrap();
        assert_eq!(c.relations, 3);
        assert!(c.streamed.result_tuples > 0);
        assert!(c.streamed.batches >= 1);
        assert!(c.streamed.first_batch_s <= c.streamed.full_stream_s);
        assert!(c.strategy == "FP");
        let report = Bench4Report {
            bench: 4,
            quick: true,
            session: c,
        };
        let json = bench4_to_json(&report);
        validate_bench4_json(&json).unwrap();
        assert!(validate_bench4_json("{}").is_err());
        assert!(validate_bench4_json("{\"bench\":4,\"quick\":true}").is_err());
    }

    #[test]
    fn bench6_runs_and_validates_on_a_tiny_workload() {
        let overhead = overhead_comparison(3, 300, 2, 1).unwrap();
        assert!(overhead.guardrails_off.elapsed_s > 0.0);
        assert!(overhead.guardrails_on.elapsed_s > 0.0);
        assert!(overhead.overhead_ratio > 0.0);
        let admission = admission_comparison(3, 200, 3, 600, 2, 1).unwrap();
        assert_eq!(admission.unprotected.samples, 8);
        assert_eq!(admission.protected.samples, 8);
        assert!(admission.protected.p99_s > 0.0);
        assert!(
            admission.noisy_budget_aborts >= admission.noisy_queries as u64,
            "every noisy query must bust its budget (got {})",
            admission.noisy_budget_aborts
        );
        let report = Bench6Report {
            bench: 6,
            quick: true,
            overhead,
            admission,
        };
        let json = bench6_to_json(&report);
        validate_bench6_json(&json).unwrap();
        assert!(validate_bench6_json("{}").is_err());
        assert!(validate_bench6_json("{\"bench\":6,\"quick\":true}").is_err());
    }

    #[test]
    fn bench10_measurement_plumbing_works_on_a_tiny_server() {
        // Tiny workload: correctness of the hammer/payload plumbing, not
        // performance — the speedup gates run under `repro bench-wire`.
        use mj_server::{Server, ServerConfig};
        let db = bench10_db(3, 40, 99, 1).unwrap();
        let server = Server::start(
            db.clone(),
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                conn_workers: 2,
                max_clients: 8,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let base = mj_exec::chain_query_sql(3);

        let adhoc = prepared_hammer(addr, &base, "R1.id", 40, 2, 3, false).unwrap();
        let prepared = prepared_hammer(addr, &base, "R1.id", 40, 2, 3, true).unwrap();
        assert_eq!(adhoc.queries, 6);
        assert_eq!(prepared.queries, 6);
        assert!(adhoc.qps > 0.0 && prepared.qps > 0.0);
        assert!(prepared.p50_ms >= 0.0 && prepared.p99_ms >= prepared.p50_ms);
        let stats = db.stats();
        assert!(
            stats.plan_cache_hits > 0,
            "two prepared clients on one text must share the plan cache"
        );

        let json = payload_run(addr, &base, 2, false).unwrap();
        let bin = payload_run(addr, &base, 2, true).unwrap();
        assert_eq!(json.queries, 2);
        assert_eq!(
            json.rows, bin.rows,
            "both formats must deliver the same row count"
        );
        assert!(json.rows_per_s > 0.0 && bin.rows_per_s > 0.0);
        server.shutdown();

        assert!(validate_bench10_json("{}").is_err());
        assert!(validate_bench10_json("{\"bench\":10,\"quick\":true}").is_err());
    }

    #[test]
    fn report_json_schema_validates() {
        let report = BenchReport {
            bench: 1,
            quick: false,
            tuples_per_relation: 10,
            relations: 2,
            processors: 2,
            batch_size: 8,
            pipelining_hot_path: HotPathComparison {
                workers: 4,
                baseline_deep_copy: HotPathRun {
                    tuples: 1,
                    matches: 1,
                    elapsed_s: 1.0,
                    tuples_per_sec: 1.0,
                },
                shared_zero_copy: HotPathRun {
                    tuples: 1,
                    matches: 1,
                    elapsed_s: 0.5,
                    tuples_per_sec: 2.0,
                },
                speedup: 2.0,
            },
            strategies: (0..4)
                .map(|i| StrategyRun {
                    strategy: format!("S{i}"),
                    elapsed_s: 1.0,
                    tuples_per_sec: 1.0,
                    peak_table_bytes: 1,
                    result_tuples: 1,
                })
                .collect(),
        };
        let json = report_to_json(&report);
        validate_report_json(&json).unwrap();
        assert!(validate_report_json("{}").is_err());
    }
}
