//! Experiment sweep drivers over the paper's grid.

use mj_core::generator::{generate, GeneratorInput};
use mj_core::plan_ir::ParallelPlan;
use mj_core::strategy::Strategy;
use mj_plan::cardinality::{node_cards, UniformOneToOne};
use mj_plan::cost::{tree_costs, CostModel};
use mj_plan::shapes::Shape;
use mj_plan::tree::JoinTree;
use mj_relalg::Result;
use mj_sim::{run_scenario, simulate, Scenario, SimParams, SimResult};

/// The two problem sizes of §4.2 (tuples per relation).
pub const PAPER_SIZES: [u64; 2] = [5_000, 40_000];

/// The processor counts swept for a problem size: "For the 5K experiment,
/// the number of processors used is varied from 20 to 80; for the 40K
/// experiment we use 30 to 80 processors" (§4.2).
pub fn paper_processor_counts(tuples: u64) -> Vec<usize> {
    if tuples <= 5_000 {
        vec![20, 30, 40, 50, 60, 70, 80]
    } else {
        vec![30, 40, 50, 60, 70, 80]
    }
}

/// One measured grid point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Tree shape.
    pub shape: Shape,
    /// Strategy.
    pub strategy: Strategy,
    /// Tuples per relation.
    pub tuples: u64,
    /// Processors used.
    pub processors: usize,
    /// Simulated response time in seconds.
    pub seconds: f64,
}

/// Runs the full paper grid for one shape and size: all strategies at all
/// paper processor counts.
pub fn sweep(shape: Shape, tuples: u64, params: &SimParams) -> Result<Vec<SweepPoint>> {
    let mut out = Vec::new();
    for &processors in paper_processor_counts(tuples).iter() {
        for strategy in Strategy::ALL {
            let scenario = Scenario::paper(shape, strategy, tuples, processors);
            let r = run_scenario(&scenario, params)?;
            out.push(SweepPoint {
                shape,
                strategy,
                tuples,
                processors,
                seconds: r.response_time,
            });
        }
    }
    Ok(out)
}

/// Plans and simulates an arbitrary tree (used by the mirroring ablation,
/// where the tree is a transform rather than a named shape).
pub fn simulate_tree(
    tree: &JoinTree,
    strategy: Strategy,
    tuples: u64,
    processors: usize,
    params: &SimParams,
) -> Result<(ParallelPlan, SimResult)> {
    let cards = node_cards(tree, &UniformOneToOne { n: tuples });
    let costs = tree_costs(tree, &cards, &CostModel::default());
    let input = GeneratorInput::new(tree, &cards, &costs, processors);
    let plan = generate(strategy, &input)?;
    let sim = simulate(&plan, params)?;
    Ok((plan, sim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_grids_match_the_paper() {
        assert_eq!(
            paper_processor_counts(5_000),
            vec![20, 30, 40, 50, 60, 70, 80]
        );
        assert_eq!(paper_processor_counts(40_000), vec![30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn small_sweep_produces_all_cells() {
        // Tiny tuples keep this fast; structure is what matters.
        let pts = sweep(Shape::WideBushy, 5_000, &SimParams::default()).unwrap();
        assert_eq!(pts.len(), 7 * 4);
        assert!(pts.iter().all(|p| p.seconds > 0.0));
    }

    #[test]
    fn simulate_tree_round_trips() {
        let tree = mj_plan::shapes::build(Shape::RightLinear, 5).unwrap();
        let (plan, sim) =
            simulate_tree(&tree, Strategy::RD, 1000, 12, &SimParams::default()).unwrap();
        assert_eq!(plan.ops.len(), 4);
        assert!(sim.response_time > 0.0);
    }
}
