//! Minimal ASCII table rendering for terminal reports.

/// Formats rows as a fixed-width table with a header rule.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].starts_with("longer"));
    }
}
