//! A small blocking client for the wire protocol — what the tests, the
//! differential oracle harness, and `repro bench-server` speak through.
//! It is deliberately dumb: blocking socket, line-at-a-time reads, no
//! connection pooling.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mj_relalg::Value;
use serde::JsonValue;

use crate::protocol::{decode_bin_payload, MetricsFormat, WireBatch, BIN_FRAME_MAGIC};

/// A typed `error` frame received from the server.
#[derive(Clone, Debug)]
pub struct ServerError {
    /// Machine-readable code (`parse`, `exec`, `overloaded`, ...).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Admission queue depth; present only with code `overloaded`.
    pub queue_depth: Option<u64>,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

/// Client-side failure: transport trouble, an unparseable frame, or a
/// typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, premature EOF).
    Io(std::io::Error),
    /// The server sent a line that is not a valid response frame.
    BadFrame(String),
    /// The server answered with a typed `error` frame.
    Server(ServerError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::BadFrame(s) => write!(f, "bad frame: {s}"),
            ClientError::Server(e) => write!(f, "server error {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The fully collected result of one query.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Result rows in arrival order.
    pub rows: Vec<Vec<Value>>,
    /// Server-side wall-clock duration (submission to quiescence).
    pub elapsed_ms: f64,
    /// End-to-end time to the first delivered batch, if any batch was
    /// delivered.
    pub time_to_first_batch_ms: Option<f64>,
}

/// The server's answer to a `prepare` request: a statement handle to
/// pass to [`Client::execute`] / [`Client::close`].
#[derive(Clone, Debug)]
pub struct Prepared {
    /// Statement id, scoped to this connection.
    pub id: u64,
    /// Number of `?N` placeholders the statement expects.
    pub params: u32,
    /// Result column names.
    pub columns: Vec<String>,
}

/// The fully collected result of a `format: "bin"` query: decoded
/// columnar batches, never row-pivoted by the transport.
#[derive(Clone, Debug)]
pub struct ColumnarReply {
    /// Decoded binary batches in arrival order.
    pub batches: Vec<WireBatch>,
    /// Total row count reported by the terminal `done` frame.
    pub rows: u64,
    /// Server-side wall-clock duration (submission to quiescence).
    pub elapsed_ms: f64,
    /// End-to-end time to the first delivered batch, if any.
    pub time_to_first_batch_ms: Option<f64>,
}

impl ColumnarReply {
    /// Pivots all batches into row-major values — for differential
    /// comparison against the JSON path.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.batches.iter().flat_map(|b| b.to_rows()).collect()
    }
}

/// One blocking protocol connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// [`connect`](Self::connect) with a connect timeout (useful when
    /// hammering a server with hundreds of concurrent clients).
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request line (newline appended). Public so tests
    /// can send malformed frames on purpose.
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Sends a query request without waiting for its reply — the
    /// pipelining half; pair with [`collect_reply`](Self::collect_reply).
    pub fn send_query(&mut self, query: &str) -> Result<(), ClientError> {
        let frame = JsonValue::Obj(vec![(
            "query".to_string(),
            JsonValue::Str(query.to_string()),
        )]);
        self.send_line(&serde_json::to_string(&frame).expect("frame renders"))
    }

    /// Sends a query with wire options (`deadline_ms`,
    /// `memory_budget_bytes`).
    pub fn send_query_with(
        &mut self,
        query: &str,
        deadline_ms: Option<u64>,
        memory_budget_bytes: Option<u64>,
    ) -> Result<(), ClientError> {
        let mut options = Vec::new();
        if let Some(ms) = deadline_ms {
            options.push(("deadline_ms".to_string(), JsonValue::UInt(ms)));
        }
        if let Some(bytes) = memory_budget_bytes {
            options.push(("memory_budget_bytes".to_string(), JsonValue::UInt(bytes)));
        }
        let mut obj = vec![("query".to_string(), JsonValue::Str(query.to_string()))];
        if !options.is_empty() {
            obj.push(("options".to_string(), JsonValue::Obj(options)));
        }
        self.send_line(&serde_json::to_string(&JsonValue::Obj(obj)).expect("frame renders"))
    }

    /// Reads one response frame. `Ok(None)` on clean EOF.
    pub fn read_frame(&mut self) -> Result<Option<JsonValue>, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        serde_json::from_str(trimmed)
            .map(Some)
            .map_err(|e| ClientError::BadFrame(format!("{e}: {trimmed}")))
    }

    /// Reads frames until the terminal one for a single query: batches
    /// accumulate into rows, `done` resolves to a [`QueryReply`], and
    /// `error` resolves to [`ClientError::Server`].
    pub fn collect_reply(&mut self) -> Result<QueryReply, ClientError> {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        loop {
            let frame = self
                .read_frame()?
                .ok_or_else(|| ClientError::BadFrame("connection closed mid-reply".into()))?;
            if let Some(batch) = frame.get("batch") {
                rows.extend(parse_batch(batch)?);
            } else if let Some(done) = frame.get("done") {
                return Ok(QueryReply {
                    rows,
                    elapsed_ms: as_f64(done.get("elapsed_ms")).unwrap_or(0.0),
                    time_to_first_batch_ms: as_f64(done.get("time_to_first_batch_ms")),
                });
            } else if let Some(err) = frame.get("error") {
                return Err(ClientError::Server(parse_error(err)));
            } else {
                return Err(ClientError::BadFrame(format!(
                    "unexpected frame: {frame:?}"
                )));
            }
        }
    }

    /// Sends a query and collects its full reply (the non-pipelined
    /// convenience path).
    pub fn query(&mut self, query: &str) -> Result<QueryReply, ClientError> {
        self.send_query(query)?;
        self.collect_reply()
    }

    /// Sends a `format: "bin"` query request without waiting for its
    /// reply; pair with [`collect_reply_bin`](Self::collect_reply_bin).
    pub fn send_query_bin(&mut self, query: &str) -> Result<(), ClientError> {
        let frame = JsonValue::Obj(vec![
            ("query".to_string(), JsonValue::Str(query.to_string())),
            ("format".to_string(), JsonValue::Str("bin".to_string())),
        ]);
        self.send_line(&serde_json::to_string(&frame).expect("frame renders"))
    }

    /// Sends a query requesting binary batches and collects the decoded
    /// columnar reply.
    pub fn query_bin(&mut self, query: &str) -> Result<ColumnarReply, ClientError> {
        self.send_query_bin(query)?;
        self.collect_reply_bin()
    }

    /// Prepares a parameterized query; the returned [`Prepared`] id feeds
    /// [`execute`](Self::execute) and [`close`](Self::close).
    pub fn prepare(&mut self, query: &str) -> Result<Prepared, ClientError> {
        let frame = JsonValue::Obj(vec![(
            "prepare".to_string(),
            JsonValue::Obj(vec![(
                "query".to_string(),
                JsonValue::Str(query.to_string()),
            )]),
        )]);
        self.send_line(&serde_json::to_string(&frame).expect("frame renders"))?;
        let reply = self
            .read_frame()?
            .ok_or_else(|| ClientError::BadFrame("connection closed mid-reply".into()))?;
        if let Some(err) = reply.get("error") {
            return Err(ClientError::Server(parse_error(err)));
        }
        let p = reply
            .get("prepared")
            .ok_or_else(|| ClientError::BadFrame(format!("unexpected frame: {reply:?}")))?;
        let id = as_u64_field(p.get("id"))
            .ok_or_else(|| ClientError::BadFrame("prepared frame without id".into()))?;
        let params = as_u64_field(p.get("params")).unwrap_or(0) as u32;
        let columns = match p.get("columns") {
            Some(JsonValue::Arr(cols)) => cols
                .iter()
                .filter_map(|c| match c {
                    JsonValue::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(Prepared {
            id,
            params,
            columns,
        })
    }

    /// Sends an `execute` request without waiting for its reply.
    pub fn send_execute(&mut self, id: u64, args: &[i64], bin: bool) -> Result<(), ClientError> {
        let mut body = vec![("id".to_string(), JsonValue::UInt(id))];
        if !args.is_empty() {
            body.push((
                "args".to_string(),
                JsonValue::Arr(args.iter().map(|&a| JsonValue::Int(a)).collect()),
            ));
        }
        let mut obj = vec![("execute".to_string(), JsonValue::Obj(body))];
        if bin {
            obj.push(("format".to_string(), JsonValue::Str("bin".to_string())));
        }
        self.send_line(&serde_json::to_string(&JsonValue::Obj(obj)).expect("frame renders"))
    }

    /// Runs a prepared statement with the given arguments and collects
    /// the (JSON-encoded) reply.
    pub fn execute(&mut self, id: u64, args: &[i64]) -> Result<QueryReply, ClientError> {
        self.send_execute(id, args, false)?;
        self.collect_reply()
    }

    /// Runs a prepared statement requesting binary batches.
    pub fn execute_bin(&mut self, id: u64, args: &[i64]) -> Result<ColumnarReply, ClientError> {
        self.send_execute(id, args, true)?;
        self.collect_reply_bin()
    }

    /// Closes a prepared statement; the id is invalid afterwards.
    pub fn close(&mut self, id: u64) -> Result<(), ClientError> {
        let frame = JsonValue::Obj(vec![(
            "close".to_string(),
            JsonValue::Obj(vec![("id".to_string(), JsonValue::UInt(id))]),
        )]);
        self.send_line(&serde_json::to_string(&frame).expect("frame renders"))?;
        let reply = self
            .read_frame()?
            .ok_or_else(|| ClientError::BadFrame("connection closed mid-reply".into()))?;
        if let Some(err) = reply.get("error") {
            return Err(ClientError::Server(parse_error(err)));
        }
        if reply.get("closed").is_none() {
            return Err(ClientError::BadFrame(format!(
                "unexpected frame: {reply:?}"
            )));
        }
        Ok(())
    }

    /// Reads frames until the terminal one for a binary-format query.
    /// Binary batch frames (first byte [`BIN_FRAME_MAGIC`]) decode into
    /// typed columns; `done`/`error` stay JSON lines.
    pub fn collect_reply_bin(&mut self) -> Result<ColumnarReply, ClientError> {
        use std::io::Read as _;
        let mut batches: Vec<WireBatch> = Vec::new();
        loop {
            let head = self.reader.fill_buf()?;
            if head.is_empty() {
                return Err(ClientError::BadFrame("connection closed mid-reply".into()));
            }
            if head[0] == BIN_FRAME_MAGIC {
                let mut header = [0u8; 5];
                self.reader.read_exact(&mut header)?;
                let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                let batch =
                    decode_bin_payload(&payload).map_err(|e| ClientError::BadFrame(e.message))?;
                batches.push(batch);
                continue;
            }
            let frame = self
                .read_frame()?
                .ok_or_else(|| ClientError::BadFrame("connection closed mid-reply".into()))?;
            if let Some(done) = frame.get("done") {
                return Ok(ColumnarReply {
                    batches,
                    rows: as_u64_field(done.get("rows")).unwrap_or(0),
                    elapsed_ms: as_f64(done.get("elapsed_ms")).unwrap_or(0.0),
                    time_to_first_batch_ms: as_f64(done.get("time_to_first_batch_ms")),
                });
            } else if let Some(err) = frame.get("error") {
                return Err(ClientError::Server(parse_error(err)));
            }
            return Err(ClientError::BadFrame(format!(
                "unexpected frame: {frame:?}"
            )));
        }
    }

    /// Requests the metrics snapshot. Returns the `metrics` object for
    /// [`MetricsFormat::Json`], or a `Str` with the Prometheus text for
    /// [`MetricsFormat::Prometheus`].
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<JsonValue, ClientError> {
        let which = match format {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prometheus",
        };
        let frame = JsonValue::Obj(vec![(
            "metrics".to_string(),
            JsonValue::Str(which.to_string()),
        )]);
        self.send_line(&serde_json::to_string(&frame).expect("frame renders"))?;
        let reply = self
            .read_frame()?
            .ok_or_else(|| ClientError::BadFrame("connection closed mid-reply".into()))?;
        if let Some(err) = reply.get("error") {
            return Err(ClientError::Server(parse_error(err)));
        }
        let key = match format {
            MetricsFormat::Json => "metrics",
            MetricsFormat::Prometheus => "metrics_text",
        };
        reply
            .get(key)
            .cloned()
            .ok_or_else(|| ClientError::BadFrame(format!("unexpected frame: {reply:?}")))
    }
}

fn parse_batch(batch: &JsonValue) -> Result<Vec<Vec<Value>>, ClientError> {
    let rows = match batch {
        JsonValue::Arr(rows) => rows,
        other => {
            return Err(ClientError::BadFrame(format!(
                "batch not an array: {other:?}"
            )))
        }
    };
    rows.iter()
        .map(|row| {
            let cells = match row {
                JsonValue::Arr(cells) => cells,
                other => {
                    return Err(ClientError::BadFrame(format!(
                        "row not an array: {other:?}"
                    )))
                }
            };
            cells
                .iter()
                .map(|cell| match cell {
                    JsonValue::Int(i) => Ok(Value::Int(*i)),
                    JsonValue::UInt(u) => Ok(Value::Int(*u as i64)),
                    JsonValue::Str(s) => Ok(Value::str(s.as_str())),
                    other => Err(ClientError::BadFrame(format!("bad cell: {other:?}"))),
                })
                .collect()
        })
        .collect()
}

fn parse_error(err: &JsonValue) -> ServerError {
    ServerError {
        code: match err.get("code") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => "unknown".to_string(),
        },
        message: match err.get("message") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => String::new(),
        },
        queue_depth: err.get("queue_depth").and_then(|v| match v {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            JsonValue::UInt(u) => Some(*u),
            _ => None,
        }),
    }
}

fn as_u64_field(v: Option<&JsonValue>) -> Option<u64> {
    match v? {
        JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
        JsonValue::UInt(u) => Some(*u),
        _ => None,
    }
}

fn as_f64(v: Option<&JsonValue>) -> Option<f64> {
    match v? {
        JsonValue::Float(f) => Some(*f),
        JsonValue::Int(i) => Some(*i as f64),
        JsonValue::UInt(u) => Some(*u as f64),
        _ => None,
    }
}
