//! The wire protocol: line-delimited JSON frames, both directions.
//!
//! Requests (client → server), one JSON object per line:
//!
//! ```text
//! {"query": "SELECT * FROM R0 JOIN R1 ON R0.id = R1.id"}
//! {"query": "...", "options": {"deadline_ms": 5000, "memory_budget_bytes": 1048576}}
//! {"metrics": "json"}
//! {"metrics": "prometheus"}
//! ```
//!
//! Responses (server → client), one JSON object per line:
//!
//! ```text
//! {"batch": [[1, 10], [2, 20]]}                     // zero or more, streamed
//! {"done": {"rows": 2, "elapsed_ms": 3.4, "time_to_first_batch_ms": 1.1}}
//! {"error": {"code": "parse", "message": "...", "span": {"start": 7, "end": 9}}}
//! {"error": {"code": "overloaded", "message": "...", "span": null, "queue_depth": 16}}
//! {"metrics": { ...accept-listed snapshot... }}     // answer to {"metrics":"json"}
//! {"metrics_text": "# HELP mj_queries_total ..."}   // answer to {"metrics":"prometheus"}
//! ```
//!
//! Every request gets exactly one terminal frame (`done`, `error`,
//! `metrics`, or `metrics_text`); responses to pipelined requests arrive
//! strictly in request order. A malformed request frame produces a typed
//! `error` frame with code `protocol` and the connection **survives** —
//! only a client disconnect (or server shutdown) closes it.
//!
//! As a convenience for scrapers, a line starting with `GET /metrics`
//! (an HTTP/1.x request line) switches the connection to one-shot HTTP:
//! the server answers with a minimal `200 OK` carrying the Prometheus
//! text exposition (or the JSON snapshot for `GET /metrics.json`) and
//! closes. See [`http_metrics_request`].

use std::time::Duration;

use mj_exec::{MjError, QueryOptions};
use mj_plan::parse::Span;
use mj_relalg::Value;
use serde::{JsonValue, Serialize};

/// Hard cap on one request line (bytes, newline included). Longer lines
/// are rejected with an `oversized_frame` error; the connection survives
/// by discarding input until the next newline.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How the client wants the metrics snapshot rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The accept-listed snapshot as a JSON object (`{"metrics": {...}}`).
    Json,
    /// Prometheus text exposition, JSON-escaped (`{"metrics_text": "..."}`).
    Prometheus,
}

/// One parsed request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Execute a query and stream its result batches back.
    Query {
        /// The query text (the SQL subset `mj_plan::parse` accepts).
        query: String,
        /// Per-query limits (deadline, memory budget).
        options: QueryOptions,
    },
    /// Report the engine's accept-listed metrics snapshot.
    Metrics(MetricsFormat),
}

/// A typed wire-level error, rendered as an `error` frame. Every
/// [`MjError`] variant maps onto a stable `code` string; protocol-level
/// rejections (malformed JSON, oversized lines, unknown fields, bad
/// UTF-8) use the `protocol` / `oversized_frame` codes.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Source span for parse/bind diagnostics.
    pub span: Option<Span>,
    /// Admission queue depth, present only for `overloaded` so clients
    /// can back off proportionally.
    pub queue_depth: Option<u64>,
}

impl WireError {
    /// A protocol-level rejection (malformed frame, unknown field, ...).
    pub fn protocol(message: impl Into<String>) -> Self {
        WireError {
            code: "protocol",
            message: message.into(),
            span: None,
            queue_depth: None,
        }
    }

    /// The rejection for a request line longer than [`MAX_LINE_BYTES`].
    pub fn oversized() -> Self {
        WireError {
            code: "oversized_frame",
            message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            span: None,
            queue_depth: None,
        }
    }

    /// The rejection for new work during graceful shutdown or above the
    /// connection cap — the same back-off signal as engine admission.
    pub fn overloaded(message: impl Into<String>, queue_depth: u64) -> Self {
        WireError {
            code: "overloaded",
            message: message.into(),
            span: None,
            queue_depth: Some(queue_depth),
        }
    }

    /// Maps a session error onto its wire code. Total over [`MjError`]:
    /// adding a variant upstream breaks this match at compile time.
    pub fn from_mj(e: &MjError) -> Self {
        let (code, span, queue_depth) = match e {
            MjError::Parse(p) => ("parse", Some(p.span), None),
            MjError::Bind { span, .. } => ("bind", Some(*span), None),
            MjError::DuplicateRelation(_) => ("duplicate_relation", None, None),
            MjError::Config(_) => ("config", None, None),
            MjError::Plan(_) => ("plan", None, None),
            MjError::Exec(_) => ("exec", None, None),
            MjError::Canceled => ("canceled", None, None),
            MjError::DeadlineExceeded => ("deadline_exceeded", None, None),
            MjError::ResourceExhausted { .. } => ("resource_exhausted", None, None),
            MjError::Stalled(_) => ("stalled", None, None),
            MjError::Internal(_) => ("internal", None, None),
            MjError::Overloaded { queue_depth } => ("overloaded", None, Some(*queue_depth as u64)),
        };
        WireError {
            code,
            message: e.to_string(),
            span,
            queue_depth,
        }
    }

    /// Renders the `error` frame (no trailing newline).
    pub fn to_frame(&self) -> String {
        let mut obj = vec![
            ("code".to_string(), JsonValue::Str(self.code.to_string())),
            ("message".to_string(), JsonValue::Str(self.message.clone())),
            (
                "span".to_string(),
                match self.span {
                    Some(s) => s.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ];
        if let Some(depth) = self.queue_depth {
            obj.push(("queue_depth".to_string(), JsonValue::Int(depth as i64)));
        }
        let frame = JsonValue::Obj(vec![("error".to_string(), JsonValue::Obj(obj))]);
        to_line(&frame)
    }
}

/// Serializes a frame value to its wire line (without the newline; the
/// connection layer appends it).
fn to_line(v: &JsonValue) -> String {
    serde_json::to_string(v).expect("frame serialization is infallible")
}

/// Parses one request line (arbitrary bytes between newlines). Rejects
/// bad UTF-8, non-object frames, unknown fields, and ill-typed options —
/// each with a typed [`WireError`] the caller turns into an `error` frame.
pub fn parse_request(line: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(line)
        .map_err(|e| WireError::protocol(format!("request is not valid UTF-8: {e}")))?;
    let value: JsonValue = serde_json::from_str(text)
        .map_err(|e| WireError::protocol(format!("malformed JSON frame: {e}")))?;
    let pairs = match &value {
        JsonValue::Obj(pairs) => pairs,
        other => {
            return Err(WireError::protocol(format!(
                "request frame must be a JSON object, found {}",
                kind_name(other)
            )))
        }
    };
    for (key, _) in pairs {
        if !matches!(key.as_str(), "query" | "options" | "metrics") {
            return Err(WireError::protocol(format!(
                "unknown request field `{key}`"
            )));
        }
    }
    match (value.get("query"), value.get("metrics")) {
        (Some(_), Some(_)) => Err(WireError::protocol(
            "request cannot carry both `query` and `metrics`",
        )),
        (Some(q), None) => {
            let query = match q {
                JsonValue::Str(s) => s.clone(),
                other => {
                    return Err(WireError::protocol(format!(
                        "`query` must be a string, found {}",
                        kind_name(other)
                    )))
                }
            };
            let options = match value.get("options") {
                None | Some(JsonValue::Null) => QueryOptions::new(),
                Some(o) => parse_options(o)?,
            };
            Ok(Request::Query { query, options })
        }
        (None, Some(m)) => {
            if value.get("options").is_some() {
                return Err(WireError::protocol(
                    "`options` applies to `query` requests only",
                ));
            }
            match m {
                JsonValue::Str(s) if s == "json" => Ok(Request::Metrics(MetricsFormat::Json)),
                JsonValue::Str(s) if s == "prometheus" => {
                    Ok(Request::Metrics(MetricsFormat::Prometheus))
                }
                other => Err(WireError::protocol(format!(
                    "`metrics` must be \"json\" or \"prometheus\", found {}",
                    render_short(other)
                ))),
            }
        }
        (None, None) => Err(WireError::protocol(
            "request must carry `query` or `metrics`",
        )),
    }
}

/// Parses the `options` object of a query request.
fn parse_options(v: &JsonValue) -> Result<QueryOptions, WireError> {
    let pairs = match v {
        JsonValue::Obj(pairs) => pairs,
        other => {
            return Err(WireError::protocol(format!(
                "`options` must be an object, found {}",
                kind_name(other)
            )))
        }
    };
    let mut opts = QueryOptions::new();
    for (key, val) in pairs {
        match key.as_str() {
            "deadline_ms" => {
                let ms = as_u64(val).ok_or_else(|| {
                    WireError::protocol("`deadline_ms` must be a non-negative integer")
                })?;
                opts = opts.with_deadline(Duration::from_millis(ms));
            }
            "memory_budget_bytes" => {
                let bytes = as_u64(val).ok_or_else(|| {
                    WireError::protocol("`memory_budget_bytes` must be a non-negative integer")
                })?;
                opts = opts.with_memory_budget(bytes);
            }
            other => {
                return Err(WireError::protocol(format!(
                    "unknown option field `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn as_u64(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
        JsonValue::UInt(u) => Some(*u),
        _ => None,
    }
}

fn kind_name(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Int(_) | JsonValue::UInt(_) | JsonValue::Float(_) => "a number",
        JsonValue::Str(_) => "a string",
        JsonValue::Arr(_) => "an array",
        JsonValue::Obj(_) => "an object",
    }
}

fn render_short(v: &JsonValue) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unrenderable>".to_string())
}

/// Renders a `batch` frame from result rows (no trailing newline).
pub fn batch_frame<'a>(rows: impl Iterator<Item = &'a [Value]>) -> String {
    let rows: Vec<JsonValue> = rows
        .map(|row| JsonValue::Arr(row.iter().map(value_to_json).collect()))
        .collect();
    to_line(&JsonValue::Obj(vec![(
        "batch".to_string(),
        JsonValue::Arr(rows),
    )]))
}

fn value_to_json(v: &Value) -> JsonValue {
    match v {
        Value::Int(i) => JsonValue::Int(*i),
        Value::Str(s) => JsonValue::Str(s.to_string()),
    }
}

/// Renders the terminal `done` frame of a successful query.
pub fn done_frame(rows: u64, elapsed: Duration, time_to_first_batch: Option<Duration>) -> String {
    let obj = vec![
        ("rows".to_string(), JsonValue::Int(rows as i64)),
        (
            "elapsed_ms".to_string(),
            JsonValue::Float(elapsed.as_secs_f64() * 1e3),
        ),
        (
            "time_to_first_batch_ms".to_string(),
            match time_to_first_batch {
                Some(d) => JsonValue::Float(d.as_secs_f64() * 1e3),
                None => JsonValue::Null,
            },
        ),
    ];
    to_line(&JsonValue::Obj(vec![(
        "done".to_string(),
        JsonValue::Obj(obj),
    )]))
}

/// Renders the `metrics` / `metrics_text` reply frame.
pub fn metrics_frame(snapshot: &mj_exec::MetricsSnapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => to_line(&JsonValue::Obj(vec![(
            "metrics".to_string(),
            snapshot.to_json(),
        )])),
        MetricsFormat::Prometheus => to_line(&JsonValue::Obj(vec![(
            "metrics_text".to_string(),
            JsonValue::Str(snapshot.to_prometheus()),
        )])),
    }
}

/// Detects an HTTP `GET /metrics` request line; returns the format the
/// scraper asked for. `GET /metrics` serves Prometheus text, and
/// `GET /metrics.json` the JSON snapshot — both as one-shot HTTP
/// responses after which the connection closes.
pub fn http_metrics_request(line: &[u8]) -> Option<MetricsFormat> {
    let text = std::str::from_utf8(line).ok()?;
    let mut parts = text.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    match parts.next()? {
        "/metrics" => Some(MetricsFormat::Prometheus),
        "/metrics.json" => Some(MetricsFormat::Json),
        _ => None,
    }
}

/// Renders a minimal HTTP/1.0 response carrying the metrics exposition.
pub fn http_metrics_response(snapshot: &mj_exec::MetricsSnapshot, format: MetricsFormat) -> String {
    let (content_type, body) = match format {
        MetricsFormat::Prometheus => ("text/plain; version=0.0.4", snapshot.to_prometheus()),
        MetricsFormat::Json => (
            "application/json",
            serde_json::to_string(snapshot).expect("snapshot serialization is infallible"),
        ),
    };
    format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_query() {
        let req = parse_request(br#"{"query": "SELECT * FROM t"}"#).unwrap();
        match req {
            Request::Query { query, options } => {
                assert_eq!(query, "SELECT * FROM t");
                assert!(options.deadline().is_none());
                assert!(options.memory_budget().is_none());
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_query_options() {
        let req = parse_request(
            br#"{"query": "q", "options": {"deadline_ms": 250, "memory_budget_bytes": 4096}}"#,
        )
        .unwrap();
        match req {
            Request::Query { options, .. } => {
                assert_eq!(options.deadline(), Some(Duration::from_millis(250)));
                assert_eq!(options.memory_budget(), Some(4096));
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_requests() {
        assert!(matches!(
            parse_request(br#"{"metrics": "json"}"#),
            Ok(Request::Metrics(MetricsFormat::Json))
        ));
        assert!(matches!(
            parse_request(br#"{"metrics": "prometheus"}"#),
            Ok(Request::Metrics(MetricsFormat::Prometheus))
        ));
    }

    #[test]
    fn rejects_malformed_frames_with_typed_errors() {
        // The accept/reject table of the wire protocol: every rejected
        // frame gets a `protocol` error (the connection layer keeps the
        // socket open).
        let reject = [
            &br#"{"query": "q""#[..],                             // truncated JSON
            br#"{"query": 42}"#,                                  // ill-typed query
            br#"{"q": "SELECT"}"#,                                // unknown field
            br#"{"query": "q", "qquery": "r"}"#,                  // unknown extra field
            br#"{"query": "q", "options": {"deadlin": 1}}"#,      // unknown option
            br#"{"query": "q", "options": {"deadline_ms": -5}}"#, // negative
            br#"{"query": "q", "options": 7}"#,                   // ill-typed options
            br#"{"metrics": "xml"}"#,                             // unknown format
            br#"{"metrics": "json", "options": {}}"#,             // options on metrics
            br#"{"query": "q", "metrics": "json"}"#,              // both
            br#"[1, 2]"#,                                         // non-object
            br#""#,                                               // empty line
            b"\xff\xfe{}",                                        // bad UTF-8
        ];
        for line in reject {
            let err = parse_request(line)
                .expect_err(&format!("must reject {:?}", String::from_utf8_lossy(line)));
            assert_eq!(err.code, "protocol");
            // Every rejection renders as a parseable error frame.
            let frame = err.to_frame();
            let v: JsonValue = serde_json::from_str(&frame).unwrap();
            assert!(v.get("error").is_some());
        }
    }

    #[test]
    fn error_frames_carry_span_and_queue_depth() {
        let parse_err = WireError {
            code: "parse",
            message: "expected FROM".to_string(),
            span: Some(Span::new(7, 11)),
            queue_depth: None,
        };
        let frame = parse_err.to_frame();
        let v: JsonValue = serde_json::from_str(&frame).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code"), Some(&JsonValue::Str("parse".into())));
        assert_eq!(
            err.get("span").unwrap().get("start"),
            Some(&JsonValue::Int(7))
        );

        let over = WireError::overloaded("busy", 16);
        let v: JsonValue = serde_json::from_str(&over.to_frame()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("queue_depth"),
            Some(&JsonValue::Int(16))
        );
    }

    #[test]
    fn every_mj_error_variant_maps_to_a_distinct_code() {
        use mj_plan::parse::ParseError;
        let errors: Vec<MjError> = vec![
            MjError::Parse(ParseError {
                message: "x".into(),
                span: Span::new(0, 1),
            }),
            MjError::bind("x", Span::new(0, 1)),
            MjError::DuplicateRelation("r".into()),
            MjError::Config("c".into()),
            MjError::Plan(mj_relalg::RelalgError::InvalidPlan("p".into())),
            MjError::Exec(mj_relalg::RelalgError::InvalidPlan("e".into())),
            MjError::Canceled,
            MjError::DeadlineExceeded,
            MjError::ResourceExhausted { used: 1, budget: 2 },
            MjError::Stalled("s".into()),
            MjError::Internal("i".into()),
            MjError::Overloaded { queue_depth: 3 },
        ];
        let codes: Vec<&str> = errors.iter().map(|e| WireError::from_mj(e).code).collect();
        let mut unique = codes.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            codes.len(),
            "codes must be distinct: {codes:?}"
        );
        let over = WireError::from_mj(&MjError::Overloaded { queue_depth: 3 });
        assert_eq!(over.queue_depth, Some(3));
    }

    #[test]
    fn batch_and_done_frames_render() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ];
        let frame = batch_frame(rows.iter().map(|r| r.as_slice()));
        let v: JsonValue = serde_json::from_str(&frame).unwrap();
        match v.get("batch").unwrap() {
            JsonValue::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        let done = done_frame(2, Duration::from_millis(3), Some(Duration::from_millis(1)));
        let v: JsonValue = serde_json::from_str(&done).unwrap();
        assert_eq!(v.get("done").unwrap().get("rows"), Some(&JsonValue::Int(2)));
    }

    #[test]
    fn http_metrics_detection() {
        assert_eq!(
            http_metrics_request(b"GET /metrics HTTP/1.1"),
            Some(MetricsFormat::Prometheus)
        );
        assert_eq!(
            http_metrics_request(b"GET /metrics.json HTTP/1.1"),
            Some(MetricsFormat::Json)
        );
        assert_eq!(http_metrics_request(b"GET /other HTTP/1.1"), None);
        assert_eq!(http_metrics_request(br#"{"query": "q"}"#), None);
    }
}
