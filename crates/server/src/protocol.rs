//! The wire protocol: line-delimited JSON frames, both directions.
//!
//! Requests (client → server), one JSON object per line:
//!
//! ```text
//! {"query": "SELECT * FROM R0 JOIN R1 ON R0.id = R1.id"}
//! {"query": "...", "options": {"deadline_ms": 5000, "memory_budget_bytes": 1048576}}
//! {"query": "...", "format": "bin"}
//! {"prepare": {"query": "SELECT * FROM R0 WHERE R0.id < ?1"}}
//! {"execute": {"id": 1, "args": [42], "options": {"deadline_ms": 5000}}}
//! {"execute": {"id": 1, "args": [42]}, "format": "bin"}
//! {"close": {"id": 1}}
//! {"metrics": "json"}
//! {"metrics": "prometheus"}
//! ```
//!
//! Responses (server → client), one JSON object per line:
//!
//! ```text
//! {"batch": [[1, 10], [2, 20]]}                     // zero or more, streamed
//! {"done": {"rows": 2, "elapsed_ms": 3.4, "time_to_first_batch_ms": 1.1}}
//! {"prepared": {"id": 1, "params": 1, "columns": ["a", "b"]}}
//! {"closed": {"id": 1}}
//! {"error": {"code": "parse", "message": "...", "span": {"start": 7, "end": 9}}}
//! {"error": {"code": "overloaded", "message": "...", "span": null, "queue_depth": 16}}
//! {"metrics": { ...accept-listed snapshot... }}     // answer to {"metrics":"json"}
//! {"metrics_text": "# HELP mj_queries_total ..."}   // answer to {"metrics":"prometheus"}
//! ```
//!
//! Every request gets exactly one terminal frame (`done`, `error`,
//! `prepared`, `closed`, `metrics`, or `metrics_text`); responses to
//! pipelined requests arrive strictly in request order. A malformed
//! request frame produces a typed `error` frame with code `protocol` and
//! the connection **survives** — only a client disconnect (or server
//! shutdown) closes it.
//!
//! # Binary result batches
//!
//! A `query` or `execute` request carrying `"format": "bin"` receives its
//! result **batches** as length-prefixed binary frames serialized straight
//! from the engine's columnar buffers — no per-row JSON pivot. All other
//! frames (`done`, `error`, `prepared`, ...) stay JSON lines, so a client
//! discriminates by the first byte: `{` opens a JSON line, the magic byte
//! [`BIN_FRAME_MAGIC`] (`0xB1`, never valid UTF-8 text) opens a binary
//! frame. The frame layout, all integers little-endian:
//!
//! ```text
//! 0xB1  u32 payload_len  payload
//! payload := u32 rows  u16 cols  column*
//! column  := 0x00 rows×i64            // dense integer column
//!          | 0x01 value*              // mixed column, one tagged value per row
//! value   := 0x00 i64                 // integer
//!          | 0x01 u32 len  UTF-8 bytes // string
//! ```
//!
//! As a convenience for scrapers, a line starting with `GET /metrics`
//! (an HTTP/1.x request line) switches the connection to one-shot HTTP:
//! the server answers with a minimal `200 OK` carrying the Prometheus
//! text exposition (or the JSON snapshot for `GET /metrics.json`) and
//! closes. See [`http_metrics_request`].

use std::fmt::Write as _;
use std::time::Duration;

use mj_exec::stream::Batch;
use mj_exec::{MjError, QueryOptions};
use mj_plan::parse::Span;
use mj_relalg::{Column, Value};
use serde::{JsonValue, Serialize};

/// Hard cap on one request line (bytes, newline included). Longer lines
/// are rejected with an `oversized_frame` error; the connection survives
/// by discarding input until the next newline.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// First byte of a binary batch frame. `0xB1` is never the first byte of
/// a UTF-8 JSON line (which always opens with `{`), so a client peeking
/// one byte can discriminate frame kinds without lookahead.
pub const BIN_FRAME_MAGIC: u8 = 0xB1;

/// Column tag: dense little-endian `i64` run.
pub const BIN_COL_INT: u8 = 0x00;
/// Column tag: per-row tagged values.
pub const BIN_COL_VAL: u8 = 0x01;
/// Value tag inside a [`BIN_COL_VAL`] column: little-endian `i64`.
pub const BIN_VAL_INT: u8 = 0x00;
/// Value tag inside a [`BIN_COL_VAL`] column: `u32` length + UTF-8 bytes.
pub const BIN_VAL_STR: u8 = 0x01;

/// How the client wants the metrics snapshot rendered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The accept-listed snapshot as a JSON object (`{"metrics": {...}}`).
    Json,
    /// Prometheus text exposition, JSON-escaped (`{"metrics_text": "..."}`).
    Prometheus,
}

/// How result batches travel back to the client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResultFormat {
    /// Row-pivoted JSON `batch` lines (the default).
    #[default]
    Json,
    /// Length-prefixed binary columnar frames (see the module docs).
    Bin,
}

/// One parsed request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Execute a query and stream its result batches back.
    Query {
        /// The query text (the SQL subset `mj_plan::parse` accepts).
        query: String,
        /// Per-query limits (deadline, memory budget).
        options: QueryOptions,
        /// Batch encoding for the reply stream.
        format: ResultFormat,
    },
    /// Plan a parameterized query once; answer with a `prepared` frame
    /// carrying the statement id.
    Prepare {
        /// The query text, with `?N` placeholders.
        query: String,
    },
    /// Run a previously prepared statement with bound arguments.
    Execute {
        /// Statement id from the `prepared` frame.
        id: u64,
        /// One integer per `?N` placeholder, in placeholder order.
        args: Vec<i64>,
        /// Per-query limits (deadline, memory budget).
        options: QueryOptions,
        /// Batch encoding for the reply stream.
        format: ResultFormat,
    },
    /// Discard a prepared statement; answer with a `closed` frame.
    Close {
        /// Statement id to drop.
        id: u64,
    },
    /// Report the engine's accept-listed metrics snapshot.
    Metrics(MetricsFormat),
}

/// A typed wire-level error, rendered as an `error` frame. Every
/// [`MjError`] variant maps onto a stable `code` string; protocol-level
/// rejections (malformed JSON, oversized lines, unknown fields, bad
/// UTF-8) use the `protocol` / `oversized_frame` codes.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Source span for parse/bind diagnostics.
    pub span: Option<Span>,
    /// Admission queue depth, present only for `overloaded` so clients
    /// can back off proportionally.
    pub queue_depth: Option<u64>,
}

impl WireError {
    /// A protocol-level rejection (malformed frame, unknown field, ...).
    pub fn protocol(message: impl Into<String>) -> Self {
        WireError {
            code: "protocol",
            message: message.into(),
            span: None,
            queue_depth: None,
        }
    }

    /// The rejection for a request line longer than [`MAX_LINE_BYTES`].
    pub fn oversized() -> Self {
        WireError {
            code: "oversized_frame",
            message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            span: None,
            queue_depth: None,
        }
    }

    /// The rejection for new work during graceful shutdown or above the
    /// connection cap — the same back-off signal as engine admission.
    pub fn overloaded(message: impl Into<String>, queue_depth: u64) -> Self {
        WireError {
            code: "overloaded",
            message: message.into(),
            span: None,
            queue_depth: Some(queue_depth),
        }
    }

    /// Maps a session error onto its wire code. Total over [`MjError`]:
    /// adding a variant upstream breaks this match at compile time.
    pub fn from_mj(e: &MjError) -> Self {
        let (code, span, queue_depth) = match e {
            MjError::Parse(p) => ("parse", Some(p.span), None),
            MjError::Bind { span, .. } => ("bind", Some(*span), None),
            MjError::DuplicateRelation(_) => ("duplicate_relation", None, None),
            MjError::Config(_) => ("config", None, None),
            MjError::Plan(_) => ("plan", None, None),
            MjError::Params(_) => ("params", None, None),
            MjError::Exec(_) => ("exec", None, None),
            MjError::Canceled => ("canceled", None, None),
            MjError::DeadlineExceeded => ("deadline_exceeded", None, None),
            MjError::ResourceExhausted { .. } => ("resource_exhausted", None, None),
            MjError::Stalled(_) => ("stalled", None, None),
            MjError::Internal(_) => ("internal", None, None),
            MjError::Overloaded { queue_depth } => ("overloaded", None, Some(*queue_depth as u64)),
        };
        WireError {
            code,
            message: e.to_string(),
            span,
            queue_depth,
        }
    }

    /// Renders the `error` frame (no trailing newline).
    pub fn to_frame(&self) -> String {
        let mut obj = vec![
            ("code".to_string(), JsonValue::Str(self.code.to_string())),
            ("message".to_string(), JsonValue::Str(self.message.clone())),
            (
                "span".to_string(),
                match self.span {
                    Some(s) => s.to_json(),
                    None => JsonValue::Null,
                },
            ),
        ];
        if let Some(depth) = self.queue_depth {
            obj.push(("queue_depth".to_string(), JsonValue::Int(depth as i64)));
        }
        let frame = JsonValue::Obj(vec![("error".to_string(), JsonValue::Obj(obj))]);
        to_line(&frame)
    }
}

/// Serializes a frame value to its wire line (without the newline; the
/// connection layer appends it).
fn to_line(v: &JsonValue) -> String {
    serde_json::to_string(v).expect("frame serialization is infallible")
}

/// Parses one request line (arbitrary bytes between newlines). Rejects
/// bad UTF-8, non-object frames, unknown fields, and ill-typed options —
/// each with a typed [`WireError`] the caller turns into an `error` frame.
pub fn parse_request(line: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(line)
        .map_err(|e| WireError::protocol(format!("request is not valid UTF-8: {e}")))?;
    let value: JsonValue = serde_json::from_str(text)
        .map_err(|e| WireError::protocol(format!("malformed JSON frame: {e}")))?;
    let pairs = match &value {
        JsonValue::Obj(pairs) => pairs,
        other => {
            return Err(WireError::protocol(format!(
                "request frame must be a JSON object, found {}",
                kind_name(other)
            )))
        }
    };
    for (key, _) in pairs {
        if !matches!(
            key.as_str(),
            "query" | "options" | "metrics" | "prepare" | "execute" | "close" | "format"
        ) {
            return Err(WireError::protocol(format!(
                "unknown request field `{key}`"
            )));
        }
    }
    const VERBS: [&str; 5] = ["query", "metrics", "prepare", "execute", "close"];
    let present: Vec<&str> = VERBS
        .into_iter()
        .filter(|v| value.get(v).is_some())
        .collect();
    if present.len() > 1 {
        return Err(WireError::protocol(format!(
            "request cannot carry both `{}` and `{}`",
            present[0], present[1]
        )));
    }
    let Some(&verb) = present.first() else {
        return Err(WireError::protocol(
            "request must carry `query`, `prepare`, `execute`, `close`, or `metrics`",
        ));
    };
    let body = value.get(verb).expect("verb key is present");
    if verb != "query" && value.get("options").is_some() {
        return Err(WireError::protocol(if verb == "execute" {
            "for `execute`, pass `options` inside the `execute` object"
        } else {
            "`options` applies to `query` requests only"
        }));
    }
    if !matches!(verb, "query" | "execute") && value.get("format").is_some() {
        return Err(WireError::protocol(
            "`format` applies to `query` and `execute` requests only",
        ));
    }
    match verb {
        "query" => {
            let query = as_str(body, "`query`")?;
            let options = match value.get("options") {
                None | Some(JsonValue::Null) => QueryOptions::new(),
                Some(o) => parse_options(o)?,
            };
            Ok(Request::Query {
                query,
                options,
                format: parse_format(&value)?,
            })
        }
        "prepare" => {
            let pairs = as_obj(body, "`prepare`")?;
            for (key, _) in pairs {
                if key != "query" {
                    return Err(WireError::protocol(format!(
                        "unknown `prepare` field `{key}`"
                    )));
                }
            }
            let q = body
                .get("query")
                .ok_or_else(|| WireError::protocol("`prepare` must carry a `query` string"))?;
            Ok(Request::Prepare {
                query: as_str(q, "`prepare.query`")?,
            })
        }
        "execute" => {
            let pairs = as_obj(body, "`execute`")?;
            for (key, _) in pairs {
                if !matches!(key.as_str(), "id" | "args" | "options") {
                    return Err(WireError::protocol(format!(
                        "unknown `execute` field `{key}`"
                    )));
                }
            }
            let id = parse_id(body, "`execute`")?;
            let args = match body.get("args") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        as_i64(v).ok_or_else(|| {
                            WireError::protocol(format!(
                                "`execute.args` entries must be integers, found {}",
                                kind_name(v)
                            ))
                        })
                    })
                    .collect::<Result<Vec<i64>, WireError>>()?,
                Some(other) => {
                    return Err(WireError::protocol(format!(
                        "`execute.args` must be an array, found {}",
                        kind_name(other)
                    )))
                }
            };
            let options = match body.get("options") {
                None | Some(JsonValue::Null) => QueryOptions::new(),
                Some(o) => parse_options(o)?,
            };
            Ok(Request::Execute {
                id,
                args,
                options,
                format: parse_format(&value)?,
            })
        }
        "close" => {
            let pairs = as_obj(body, "`close`")?;
            for (key, _) in pairs {
                if key != "id" {
                    return Err(WireError::protocol(format!(
                        "unknown `close` field `{key}`"
                    )));
                }
            }
            Ok(Request::Close {
                id: parse_id(body, "`close`")?,
            })
        }
        "metrics" => match body {
            JsonValue::Str(s) if s == "json" => Ok(Request::Metrics(MetricsFormat::Json)),
            JsonValue::Str(s) if s == "prometheus" => {
                Ok(Request::Metrics(MetricsFormat::Prometheus))
            }
            other => Err(WireError::protocol(format!(
                "`metrics` must be \"json\" or \"prometheus\", found {}",
                render_short(other)
            ))),
        },
        _ => unreachable!("verb list is exhaustive"),
    }
}

fn as_str(v: &JsonValue, what: &str) -> Result<String, WireError> {
    match v {
        JsonValue::Str(s) => Ok(s.clone()),
        other => Err(WireError::protocol(format!(
            "{what} must be a string, found {}",
            kind_name(other)
        ))),
    }
}

fn as_obj<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [(String, JsonValue)], WireError> {
    match v {
        JsonValue::Obj(pairs) => Ok(pairs),
        other => Err(WireError::protocol(format!(
            "{what} must be an object, found {}",
            kind_name(other)
        ))),
    }
}

/// The statement `id` of an `execute`/`close` body: a non-negative integer.
fn parse_id(body: &JsonValue, what: &str) -> Result<u64, WireError> {
    let id = body
        .get("id")
        .ok_or_else(|| WireError::protocol(format!("{what} must carry a statement `id`")))?;
    as_u64(id).ok_or_else(|| {
        WireError::protocol(format!(
            "{what}.id must be a non-negative integer, found {}",
            render_short(id)
        ))
    })
}

/// The top-level `format` field of a `query`/`execute` request.
fn parse_format(value: &JsonValue) -> Result<ResultFormat, WireError> {
    match value.get("format") {
        None | Some(JsonValue::Null) => Ok(ResultFormat::Json),
        Some(JsonValue::Str(s)) if s == "json" => Ok(ResultFormat::Json),
        Some(JsonValue::Str(s)) if s == "bin" => Ok(ResultFormat::Bin),
        Some(other) => Err(WireError::protocol(format!(
            "`format` must be \"json\" or \"bin\", found {}",
            render_short(other)
        ))),
    }
}

/// Parses the `options` object of a query request.
fn parse_options(v: &JsonValue) -> Result<QueryOptions, WireError> {
    let pairs = match v {
        JsonValue::Obj(pairs) => pairs,
        other => {
            return Err(WireError::protocol(format!(
                "`options` must be an object, found {}",
                kind_name(other)
            )))
        }
    };
    let mut opts = QueryOptions::new();
    for (key, val) in pairs {
        match key.as_str() {
            "deadline_ms" => {
                let ms = as_u64(val).ok_or_else(|| {
                    WireError::protocol("`deadline_ms` must be a non-negative integer")
                })?;
                opts = opts.with_deadline(Duration::from_millis(ms));
            }
            "memory_budget_bytes" => {
                let bytes = as_u64(val).ok_or_else(|| {
                    WireError::protocol("`memory_budget_bytes` must be a non-negative integer")
                })?;
                opts = opts.with_memory_budget(bytes);
            }
            other => {
                return Err(WireError::protocol(format!(
                    "unknown option field `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn as_u64(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
        JsonValue::UInt(u) => Some(*u),
        _ => None,
    }
}

fn as_i64(v: &JsonValue) -> Option<i64> {
    match v {
        JsonValue::Int(i) => Some(*i),
        JsonValue::UInt(u) => i64::try_from(*u).ok(),
        _ => None,
    }
}

fn kind_name(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Int(_) | JsonValue::UInt(_) | JsonValue::Float(_) => "a number",
        JsonValue::Str(_) => "a string",
        JsonValue::Arr(_) => "an array",
        JsonValue::Obj(_) => "an object",
    }
}

fn render_short(v: &JsonValue) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unrenderable>".to_string())
}

/// Renders a `batch` frame from result rows (no trailing newline).
pub fn batch_frame<'a>(rows: impl Iterator<Item = &'a [Value]>) -> String {
    let rows: Vec<JsonValue> = rows
        .map(|row| JsonValue::Arr(row.iter().map(value_to_json).collect()))
        .collect();
    to_line(&JsonValue::Obj(vec![(
        "batch".to_string(),
        JsonValue::Arr(rows),
    )]))
}

fn value_to_json(v: &Value) -> JsonValue {
    match v {
        Value::Int(i) => JsonValue::Int(*i),
        Value::Str(s) => JsonValue::Str(s.to_string()),
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An "internal" wire error for conditions the protocol cannot produce
/// (e.g. a ragged batch) — kept typed so encoders stay panic-free.
fn wire_internal(e: impl std::fmt::Display) -> WireError {
    WireError {
        code: "internal",
        message: e.to_string(),
        span: None,
        queue_depth: None,
    }
}

/// Renders a `batch` frame straight from the engine's columnar buffers
/// into a reusable `String` — no `Tuple` materialization, no per-frame
/// allocation once `out` has grown to the high-water frame size. The
/// JSON produced is byte-compatible with [`batch_frame`].
pub fn batch_frame_into(batch: &Batch, out: &mut String) -> Result<(), WireError> {
    out.clear();
    out.push_str("{\"batch\":[");
    let cols = batch.columns();
    let arity = cols.arity();
    for r in 0..batch.len() {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for c in 0..arity {
            if c > 0 {
                out.push(',');
            }
            match cols.column(c).map_err(wire_internal)? {
                Column::Int(v) => {
                    let _ = write!(out, "{}", v[r]);
                }
                // Row refs bit-cast through `i64`, mirroring
                // `ColumnBatch::row`.
                Column::Ref(v) => {
                    let _ = write!(out, "{}", v[r] as i64);
                }
                Column::Val(vals) => match &vals[r] {
                    Value::Int(i) => {
                        let _ = write!(out, "{i}");
                    }
                    Value::Str(s) => write_json_str(out, s),
                },
            }
        }
        out.push(']');
    }
    out.push_str("]}");
    Ok(())
}

/// Serializes a result batch as a binary columnar frame (module docs:
/// "Binary result batches") into a reusable byte buffer. Dense integer
/// and row-ref columns are copied as little-endian `i64` runs straight
/// from the column buffers; value columns fall back to per-row tags.
pub fn batch_frame_bin_into(batch: &Batch, out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    out.push(BIN_FRAME_MAGIC);
    out.extend_from_slice(&[0u8; 4]); // payload length, back-patched below
    let rows = batch.len();
    let cols = batch.columns();
    let arity = cols.arity();
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(arity as u16).to_le_bytes());
    for c in 0..arity {
        match cols.column(c).map_err(wire_internal)? {
            Column::Int(v) => {
                out.push(BIN_COL_INT);
                for x in &v[..rows] {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Ref(v) => {
                out.push(BIN_COL_INT);
                for x in &v[..rows] {
                    out.extend_from_slice(&(*x as i64).to_le_bytes());
                }
            }
            Column::Val(vals) => {
                out.push(BIN_COL_VAL);
                for v in &vals[..rows] {
                    match v {
                        Value::Int(i) => {
                            out.push(BIN_VAL_INT);
                            out.extend_from_slice(&i.to_le_bytes());
                        }
                        Value::Str(s) => {
                            out.push(BIN_VAL_STR);
                            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            out.extend_from_slice(s.as_bytes());
                        }
                    }
                }
            }
        }
    }
    let payload = (out.len() - 5) as u32;
    out[1..5].copy_from_slice(&payload.to_le_bytes());
    Ok(())
}

/// One decoded column of a binary batch frame.
#[derive(Clone, Debug, PartialEq)]
pub enum WireColumn {
    /// Dense integer column (tag [`BIN_COL_INT`]).
    Int(Vec<i64>),
    /// Mixed value column (tag [`BIN_COL_VAL`]).
    Val(Vec<Value>),
}

/// A decoded binary batch frame: typed columns plus the row count.
#[derive(Clone, Debug, PartialEq)]
pub struct WireBatch {
    /// Number of rows in the batch.
    pub row_count: usize,
    /// One decoded column per result attribute.
    pub columns: Vec<WireColumn>,
}

impl WireBatch {
    /// Pivots the columns into row-major values (the JSON batch shape) —
    /// for differential tests and row-oriented consumers.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.row_count)
            .map(|r| {
                self.columns
                    .iter()
                    .map(|col| match col {
                        WireColumn::Int(v) => Value::Int(v[r]),
                        WireColumn::Val(v) => v[r].clone(),
                    })
                    .collect()
            })
            .collect()
    }
}

/// Decodes the payload of a binary batch frame (everything after the
/// magic byte and the `u32` length prefix). Rejects truncated or
/// trailing-garbage payloads with a typed `protocol` error.
pub fn decode_bin_payload(payload: &[u8]) -> Result<WireBatch, WireError> {
    struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
            let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
            let end = end.ok_or_else(|| WireError::protocol("truncated binary batch payload"))?;
            let slice = &self.buf[self.pos..end];
            self.pos = end;
            Ok(slice)
        }
        fn u8(&mut self) -> Result<u8, WireError> {
            Ok(self.take(1)?[0])
        }
        fn u32(&mut self) -> Result<u32, WireError> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }
        fn i64(&mut self) -> Result<i64, WireError> {
            let b = self.take(8)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(b);
            Ok(i64::from_le_bytes(raw))
        }
    }
    let mut cur = Cursor {
        buf: payload,
        pos: 0,
    };
    let rows = cur.u32()? as usize;
    let col_header = cur.take(2)?;
    let arity = u16::from_le_bytes([col_header[0], col_header[1]]) as usize;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        match cur.u8()? {
            BIN_COL_INT => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(cur.i64()?);
                }
                columns.push(WireColumn::Int(v));
            }
            BIN_COL_VAL => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    match cur.u8()? {
                        BIN_VAL_INT => v.push(Value::Int(cur.i64()?)),
                        BIN_VAL_STR => {
                            let len = cur.u32()? as usize;
                            let bytes = cur.take(len)?;
                            let s = std::str::from_utf8(bytes).map_err(|e| {
                                WireError::protocol(format!(
                                    "binary batch string is not UTF-8: {e}"
                                ))
                            })?;
                            v.push(Value::str(s));
                        }
                        other => {
                            return Err(WireError::protocol(format!(
                                "unknown binary value tag {other:#04x}"
                            )))
                        }
                    }
                }
                columns.push(WireColumn::Val(v));
            }
            other => {
                return Err(WireError::protocol(format!(
                    "unknown binary column tag {other:#04x}"
                )))
            }
        }
    }
    if cur.pos != payload.len() {
        return Err(WireError::protocol(
            "trailing bytes after binary batch payload",
        ));
    }
    Ok(WireBatch {
        row_count: rows,
        columns,
    })
}

/// Renders the `prepared` reply frame of a `prepare` request.
pub fn prepared_frame(id: u64, params: u32, columns: &[String]) -> String {
    let obj = vec![
        ("id".to_string(), JsonValue::Int(id as i64)),
        ("params".to_string(), JsonValue::Int(params as i64)),
        (
            "columns".to_string(),
            JsonValue::Arr(columns.iter().map(|c| JsonValue::Str(c.clone())).collect()),
        ),
    ];
    to_line(&JsonValue::Obj(vec![(
        "prepared".to_string(),
        JsonValue::Obj(obj),
    )]))
}

/// Renders the `closed` reply frame of a `close` request.
pub fn closed_frame(id: u64) -> String {
    to_line(&JsonValue::Obj(vec![(
        "closed".to_string(),
        JsonValue::Obj(vec![("id".to_string(), JsonValue::Int(id as i64))]),
    )]))
}

/// Renders the terminal `done` frame of a successful query.
pub fn done_frame(rows: u64, elapsed: Duration, time_to_first_batch: Option<Duration>) -> String {
    let obj = vec![
        ("rows".to_string(), JsonValue::Int(rows as i64)),
        (
            "elapsed_ms".to_string(),
            JsonValue::Float(elapsed.as_secs_f64() * 1e3),
        ),
        (
            "time_to_first_batch_ms".to_string(),
            match time_to_first_batch {
                Some(d) => JsonValue::Float(d.as_secs_f64() * 1e3),
                None => JsonValue::Null,
            },
        ),
    ];
    to_line(&JsonValue::Obj(vec![(
        "done".to_string(),
        JsonValue::Obj(obj),
    )]))
}

/// Renders the `metrics` / `metrics_text` reply frame.
pub fn metrics_frame(snapshot: &mj_exec::MetricsSnapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => to_line(&JsonValue::Obj(vec![(
            "metrics".to_string(),
            snapshot.to_json(),
        )])),
        MetricsFormat::Prometheus => to_line(&JsonValue::Obj(vec![(
            "metrics_text".to_string(),
            JsonValue::Str(snapshot.to_prometheus()),
        )])),
    }
}

/// Detects an HTTP `GET /metrics` request line; returns the format the
/// scraper asked for. `GET /metrics` serves Prometheus text, and
/// `GET /metrics.json` the JSON snapshot — both as one-shot HTTP
/// responses after which the connection closes.
pub fn http_metrics_request(line: &[u8]) -> Option<MetricsFormat> {
    let text = std::str::from_utf8(line).ok()?;
    let mut parts = text.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    match parts.next()? {
        "/metrics" => Some(MetricsFormat::Prometheus),
        "/metrics.json" => Some(MetricsFormat::Json),
        _ => None,
    }
}

/// Renders a minimal HTTP/1.0 response carrying the metrics exposition.
pub fn http_metrics_response(snapshot: &mj_exec::MetricsSnapshot, format: MetricsFormat) -> String {
    let (content_type, body) = match format {
        MetricsFormat::Prometheus => ("text/plain; version=0.0.4", snapshot.to_prometheus()),
        MetricsFormat::Json => (
            "application/json",
            serde_json::to_string(snapshot).expect("snapshot serialization is infallible"),
        ),
    };
    format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_query() {
        let req = parse_request(br#"{"query": "SELECT * FROM t"}"#).unwrap();
        match req {
            Request::Query {
                query,
                options,
                format,
            } => {
                assert_eq!(query, "SELECT * FROM t");
                assert!(options.deadline().is_none());
                assert!(options.memory_budget().is_none());
                assert_eq!(format, ResultFormat::Json);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_prepare_execute_close() {
        match parse_request(br#"{"prepare": {"query": "SELECT * FROM t WHERE t.a < ?1"}}"#) {
            Ok(Request::Prepare { query }) => {
                assert_eq!(query, "SELECT * FROM t WHERE t.a < ?1")
            }
            other => panic!("expected prepare, got {other:?}"),
        }
        match parse_request(
            br#"{"execute": {"id": 3, "args": [7, -2], "options": {"deadline_ms": 10}}}"#,
        ) {
            Ok(Request::Execute {
                id,
                args,
                options,
                format,
            }) => {
                assert_eq!(id, 3);
                assert_eq!(args, vec![7, -2]);
                assert_eq!(options.deadline(), Some(Duration::from_millis(10)));
                assert_eq!(format, ResultFormat::Json);
            }
            other => panic!("expected execute, got {other:?}"),
        }
        // `args` is optional for zero-parameter statements.
        match parse_request(br#"{"execute": {"id": 1}, "format": "bin"}"#) {
            Ok(Request::Execute {
                id, args, format, ..
            }) => {
                assert_eq!(id, 1);
                assert!(args.is_empty());
                assert_eq!(format, ResultFormat::Bin);
            }
            other => panic!("expected execute, got {other:?}"),
        }
        match parse_request(br#"{"close": {"id": 3}}"#) {
            Ok(Request::Close { id }) => assert_eq!(id, 3),
            other => panic!("expected close, got {other:?}"),
        }
    }

    #[test]
    fn parses_query_format() {
        for (line, want) in [
            (
                &br#"{"query": "q", "format": "bin"}"#[..],
                ResultFormat::Bin,
            ),
            (br#"{"query": "q", "format": "json"}"#, ResultFormat::Json),
        ] {
            match parse_request(line) {
                Ok(Request::Query { format, .. }) => assert_eq!(format, want),
                other => panic!("expected query, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_query_options() {
        let req = parse_request(
            br#"{"query": "q", "options": {"deadline_ms": 250, "memory_budget_bytes": 4096}}"#,
        )
        .unwrap();
        match req {
            Request::Query { options, .. } => {
                assert_eq!(options.deadline(), Some(Duration::from_millis(250)));
                assert_eq!(options.memory_budget(), Some(4096));
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_requests() {
        assert!(matches!(
            parse_request(br#"{"metrics": "json"}"#),
            Ok(Request::Metrics(MetricsFormat::Json))
        ));
        assert!(matches!(
            parse_request(br#"{"metrics": "prometheus"}"#),
            Ok(Request::Metrics(MetricsFormat::Prometheus))
        ));
    }

    #[test]
    fn rejects_malformed_frames_with_typed_errors() {
        // The accept/reject table of the wire protocol: every rejected
        // frame gets a `protocol` error (the connection layer keeps the
        // socket open).
        let reject = [
            &br#"{"query": "q""#[..],                                // truncated JSON
            br#"{"query": 42}"#,                                     // ill-typed query
            br#"{"q": "SELECT"}"#,                                   // unknown field
            br#"{"query": "q", "qquery": "r"}"#,                     // unknown extra field
            br#"{"query": "q", "options": {"deadlin": 1}}"#,         // unknown option
            br#"{"query": "q", "options": {"deadline_ms": -5}}"#,    // negative
            br#"{"query": "q", "options": 7}"#,                      // ill-typed options
            br#"{"metrics": "xml"}"#,                                // unknown format
            br#"{"metrics": "json", "options": {}}"#,                // options on metrics
            br#"{"query": "q", "metrics": "json"}"#,                 // both
            br#"[1, 2]"#,                                            // non-object
            br#""#,                                                  // empty line
            b"\xff\xfe{}",                                           // bad UTF-8
            br#"{"query": "q", "format": "csv"}"#,                   // unknown result format
            br#"{"metrics": "json", "format": "bin"}"#,              // format on metrics
            br#"{"prepare": {"query": "q"}, "format": "bin"}"#,      // format on prepare
            br#"{"prepare": "q"}"#,                                  // non-object prepare
            br#"{"prepare": {"query": "q", "id": 1}}"#,              // unknown prepare field
            br#"{"prepare": {}}"#,                                   // prepare without query
            br#"{"prepare": {"query": 9}}"#,                         // ill-typed prepare query
            br#"{"execute": {"args": []}}"#,                         // execute without id
            br#"{"execute": {"id": -1}}"#,                           // negative id
            br#"{"execute": {"id": "x"}}"#,                          // ill-typed id
            br#"{"execute": {"id": 1, "args": [1.5]}}"#,             // non-integer arg
            br#"{"execute": {"id": 1, "args": 7}}"#,                 // ill-typed args
            br#"{"execute": {"id": 1, "extra": 0}}"#,                // unknown execute field
            br#"{"execute": {"id": 1}, "options": {}}"#,             // options outside execute
            br#"{"execute": {"id": 1}, "prepare": {"query": "q"}}"#, // two verbs
            br#"{"close": {}}"#,                                     // close without id
            br#"{"close": {"id": 1, "x": 2}}"#,                      // unknown close field
            br#"{"close": 1}"#,                                      // non-object close
        ];
        for line in reject {
            let err = parse_request(line)
                .expect_err(&format!("must reject {:?}", String::from_utf8_lossy(line)));
            assert_eq!(err.code, "protocol");
            // Every rejection renders as a parseable error frame.
            let frame = err.to_frame();
            let v: JsonValue = serde_json::from_str(&frame).unwrap();
            assert!(v.get("error").is_some());
        }
    }

    #[test]
    fn error_frames_carry_span_and_queue_depth() {
        let parse_err = WireError {
            code: "parse",
            message: "expected FROM".to_string(),
            span: Some(Span::new(7, 11)),
            queue_depth: None,
        };
        let frame = parse_err.to_frame();
        let v: JsonValue = serde_json::from_str(&frame).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code"), Some(&JsonValue::Str("parse".into())));
        assert_eq!(
            err.get("span").unwrap().get("start"),
            Some(&JsonValue::Int(7))
        );

        let over = WireError::overloaded("busy", 16);
        let v: JsonValue = serde_json::from_str(&over.to_frame()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("queue_depth"),
            Some(&JsonValue::Int(16))
        );
    }

    #[test]
    fn every_mj_error_variant_maps_to_a_distinct_code() {
        use mj_plan::parse::ParseError;
        let errors: Vec<MjError> = vec![
            MjError::Parse(ParseError {
                message: "x".into(),
                span: Span::new(0, 1),
            }),
            MjError::bind("x", Span::new(0, 1)),
            MjError::DuplicateRelation("r".into()),
            MjError::Config("c".into()),
            MjError::Plan(mj_relalg::RelalgError::InvalidPlan("p".into())),
            MjError::Params("wrong arity".into()),
            MjError::Exec(mj_relalg::RelalgError::InvalidPlan("e".into())),
            MjError::Canceled,
            MjError::DeadlineExceeded,
            MjError::ResourceExhausted { used: 1, budget: 2 },
            MjError::Stalled("s".into()),
            MjError::Internal("i".into()),
            MjError::Overloaded { queue_depth: 3 },
        ];
        let codes: Vec<&str> = errors.iter().map(|e| WireError::from_mj(e).code).collect();
        let mut unique = codes.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            codes.len(),
            "codes must be distinct: {codes:?}"
        );
        let over = WireError::from_mj(&MjError::Overloaded { queue_depth: 3 });
        assert_eq!(over.queue_depth, Some(3));
    }

    #[test]
    fn batch_and_done_frames_render() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ];
        let frame = batch_frame(rows.iter().map(|r| r.as_slice()));
        let v: JsonValue = serde_json::from_str(&frame).unwrap();
        match v.get("batch").unwrap() {
            JsonValue::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        let done = done_frame(2, Duration::from_millis(3), Some(Duration::from_millis(1)));
        let v: JsonValue = serde_json::from_str(&done).unwrap();
        assert_eq!(v.get("done").unwrap().get("rows"), Some(&JsonValue::Int(2)));
    }

    fn mixed_batch() -> Batch {
        use mj_relalg::Tuple;
        let tuples: Vec<Tuple> = vec![
            Tuple::new(vec![Value::Int(1), Value::str("a\"b\\c\n")]),
            Tuple::new(vec![Value::Int(-2), Value::str("plain")]),
            Tuple::new(vec![Value::Int(i64::MAX), Value::str("")]),
        ];
        Batch::from_tuples(&tuples).unwrap()
    }

    #[test]
    fn columnar_json_frame_matches_row_pivot() {
        let batch = mixed_batch();
        let mut scratch = String::new();
        batch_frame_into(&batch, &mut scratch).unwrap();
        // Same logical content as the row-pivoted encoder (parse both:
        // the columnar writer is allowed to differ in whitespace).
        let a: JsonValue = serde_json::from_str(&scratch).unwrap();
        let tuples: Vec<mj_relalg::Tuple> =
            (0..batch.len()).map(|r| batch.row(r).unwrap()).collect();
        let rows: Vec<&[Value]> = tuples.iter().map(|t| t.values()).collect();
        let b: JsonValue = serde_json::from_str(&batch_frame(rows.into_iter())).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn json_scratch_buffer_reaches_steady_state() {
        let batch = mixed_batch();
        let mut scratch = String::new();
        batch_frame_into(&batch, &mut scratch).unwrap();
        let high_water = scratch.capacity();
        for _ in 0..32 {
            batch_frame_into(&batch, &mut scratch).unwrap();
            assert_eq!(
                scratch.capacity(),
                high_water,
                "steady-state frames must reuse the scratch allocation"
            );
        }
    }

    #[test]
    fn binary_frame_roundtrips() {
        let batch = mixed_batch();
        let mut buf = Vec::new();
        batch_frame_bin_into(&batch, &mut buf).unwrap();
        assert_eq!(buf[0], BIN_FRAME_MAGIC);
        let payload_len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        assert_eq!(payload_len, buf.len() - 5, "length prefix covers payload");
        let decoded = decode_bin_payload(&buf[5..]).unwrap();
        assert_eq!(decoded.row_count, 3);
        assert_eq!(decoded.columns.len(), 2);
        assert_eq!(
            decoded.columns[0],
            WireColumn::Int(vec![1, -2, i64::MAX]),
            "int column travels as a dense i64 run"
        );
        let want: Vec<Vec<Value>> = (0..batch.len())
            .map(|r| batch.row(r).unwrap().values().to_vec())
            .collect();
        assert_eq!(decoded.to_rows(), want);

        // Binary buffer reuse reaches steady state too.
        let high_water = buf.capacity();
        for _ in 0..32 {
            batch_frame_bin_into(&batch, &mut buf).unwrap();
            assert_eq!(buf.capacity(), high_water);
        }
    }

    #[test]
    fn binary_decode_rejects_corrupt_payloads() {
        let batch = mixed_batch();
        let mut buf = Vec::new();
        batch_frame_bin_into(&batch, &mut buf).unwrap();
        let payload = &buf[5..];
        // Truncation at every boundary is a typed protocol error.
        for cut in [0, 1, 4, 6, payload.len() - 1] {
            let err = decode_bin_payload(&payload[..cut]).unwrap_err();
            assert_eq!(err.code, "protocol", "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut noisy = payload.to_vec();
        noisy.push(0);
        assert_eq!(decode_bin_payload(&noisy).unwrap_err().code, "protocol");
        // An unknown column tag is rejected.
        let mut bad_tag = payload.to_vec();
        bad_tag[6] = 0x7f;
        assert_eq!(decode_bin_payload(&bad_tag).unwrap_err().code, "protocol");
    }

    #[test]
    fn prepared_and_closed_frames_render() {
        let frame = prepared_frame(7, 2, &["a".to_string(), "b".to_string()]);
        let v: JsonValue = serde_json::from_str(&frame).unwrap();
        let p = v.get("prepared").unwrap();
        assert_eq!(p.get("id"), Some(&JsonValue::Int(7)));
        assert_eq!(p.get("params"), Some(&JsonValue::Int(2)));
        match p.get("columns").unwrap() {
            JsonValue::Arr(cols) => assert_eq!(cols.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        let v: JsonValue = serde_json::from_str(&closed_frame(7)).unwrap();
        assert_eq!(v.get("closed").unwrap().get("id"), Some(&JsonValue::Int(7)));
    }

    #[test]
    fn http_metrics_detection() {
        assert_eq!(
            http_metrics_request(b"GET /metrics HTTP/1.1"),
            Some(MetricsFormat::Prometheus)
        );
        assert_eq!(
            http_metrics_request(b"GET /metrics.json HTTP/1.1"),
            Some(MetricsFormat::Json)
        );
        assert_eq!(http_metrics_request(b"GET /other HTTP/1.1"), None);
        assert_eq!(http_metrics_request(br#"{"query": "q"}"#), None);
    }
}
