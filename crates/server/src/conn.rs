//! Per-connection state machine.
//!
//! One [`Conn`] wraps one non-blocking client socket. A connection
//! worker thread owns many `Conn`s and calls [`Conn::tick`] on each in
//! a round-robin loop; a tick never blocks — it reads whatever bytes
//! are available, parses complete request lines, advances the active
//! query by polling its [`ResultStream`], and flushes whatever the
//! socket will take.
//!
//! Pipelining falls out of the design: requests parsed ahead of the
//! active query queue up in arrival order and responses are emitted
//! strictly in that order. Cancellation on disconnect falls out too —
//! dropping the `Conn` drops the active query's stream and handle,
//! which cancels the query in the engine.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use mj_exec::{BatchPoll, Database, MjError, PreparedStatement, QueryHandle, ResultStream};

use crate::protocol::{
    batch_frame_bin_into, batch_frame_into, closed_frame, done_frame, http_metrics_request,
    http_metrics_response, metrics_frame, parse_request, prepared_frame, Request, ResultFormat,
    WireError, MAX_LINE_BYTES,
};

/// The typed rejection for an `execute`/`close` naming a statement id
/// this connection never prepared (or already closed). Routed through
/// [`MjError::Params`] so it shares the stable `params` wire code.
fn unknown_statement(id: u64) -> MjError {
    MjError::Params(format!(
        "unknown prepared statement id {id} (never prepared on this connection, or already closed)"
    ))
}

/// Stop polling the active query's stream once this many response bytes
/// are buffered for the socket: a slow reader backpressures its own
/// query instead of ballooning server memory.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Per-tick read chunk.
const READ_CHUNK: usize = 16 * 1024;

/// What a [`Conn::tick`] did — the worker uses this to decide whether
/// to nap between sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tick {
    /// Bytes moved or a query advanced; sweep again immediately.
    Progress,
    /// Nothing to do right now.
    Idle,
    /// The connection is finished (disconnect, fatal socket error, or a
    /// one-shot HTTP response fully flushed). Drop the `Conn`.
    Closed,
}

/// A query in flight on this connection.
struct ActiveQuery {
    handle: QueryHandle,
    stream: ResultStream,
    rows: u64,
    /// How this query's result batches are encoded on the wire.
    format: ResultFormat,
}

/// One client connection: socket, buffers, parsed-but-unstarted
/// requests, and at most one active query.
pub(crate) struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Offset of the first unwritten byte in `write_buf`.
    write_pos: usize,
    /// Inside an oversized line: discard bytes until the next newline.
    discarding: bool,
    /// Parsed requests — and already-decided rejections — in arrival
    /// order. Rejections ride the same queue so every request's response
    /// (including its error) is emitted strictly in request order.
    pending: VecDeque<Result<Request, WireError>>,
    active: Option<ActiveQuery>,
    /// Prepared statements this client opened: wire id → the (possibly
    /// cross-connection-shared) cached statement. Ids are per-connection;
    /// the plans behind them live in the database's shared plan cache.
    stmts: HashMap<u64, Arc<PreparedStatement>>,
    /// Next statement id to hand out.
    next_stmt_id: u64,
    /// Reusable JSON batch-frame scratch: steady-state frames reuse one
    /// allocation instead of building a fresh `String` per batch.
    json_scratch: String,
    /// Reusable binary batch-frame scratch.
    bin_scratch: Vec<u8>,
    /// Peer closed its read side or an HTTP one-shot finished: flush
    /// `write_buf` and close.
    closing: bool,
    /// Set once any line has been parsed; an HTTP `GET /metrics` is only
    /// honoured as the first line of a connection.
    saw_line: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            discarding: false,
            pending: VecDeque::new(),
            active: None,
            stmts: HashMap::new(),
            next_stmt_id: 1,
            json_scratch: String::new(),
            bin_scratch: Vec::new(),
            closing: false,
            saw_line: false,
        })
    }

    fn push_line(&mut self, line: String) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    fn write_buffered(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// True when the connection has nothing in flight and nothing
    /// buffered — the state in which a draining server may close it.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.active.is_none()
            && self.pending.is_empty()
            && self.write_buffered() == 0
            && self.read_buf.is_empty()
    }

    /// One non-blocking sweep: read, parse, advance, flush.
    ///
    /// `draining` is the server's graceful-shutdown flag: in-flight and
    /// already-pipelined work completes, but *newly arriving* query and
    /// metrics requests are rejected with `overloaded`.
    pub(crate) fn tick(&mut self, db: &Arc<Database>, draining: bool) -> Tick {
        let mut progress = false;

        match self.fill_read_buf() {
            Ok(moved) => progress |= moved,
            Err(()) => {
                // Peer gone. Dropping `self.active` cancels the query via
                // the stream/handle drops; nothing further to deliver.
                return Tick::Closed;
            }
        }

        progress |= self.parse_lines(db, draining);
        progress |= self.advance_active(db);
        if self.flush().is_err() {
            return Tick::Closed;
        }
        if self.closing && self.write_buffered() == 0 {
            return Tick::Closed;
        }
        if progress {
            Tick::Progress
        } else {
            Tick::Idle
        }
    }

    /// Reads available bytes. `Err(())` means the connection is dead
    /// (EOF or a fatal socket error).
    fn fill_read_buf(&mut self) -> Result<bool, ()> {
        if self.closing {
            return Ok(false);
        }
        let mut moved = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    moved = true;
                    if self.discarding {
                        // Keep only what follows the newline that ends
                        // the oversized line, if it has arrived.
                        if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                            self.discarding = false;
                            self.read_buf.extend_from_slice(&chunk[pos + 1..n]);
                        }
                    } else {
                        self.read_buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        // A partial line (no newline yet) that already exceeds the cap is
        // rejected now, without waiting for — or buffering — the rest of
        // it; its remaining bytes are drained as they come. Complete
        // oversized lines are rejected by length in `parse_lines`.
        if !self.discarding {
            let tail = self
                .read_buf
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1);
            if self.read_buf.len() - tail > MAX_LINE_BYTES {
                self.pending.push_back(Err(WireError::oversized()));
                self.read_buf.truncate(tail);
                self.discarding = true;
            }
        }
        Ok(moved)
    }

    /// Splits complete lines off `read_buf` and parses each.
    fn parse_lines(&mut self, db: &Arc<Database>, draining: bool) -> bool {
        let mut progress = false;
        while let Some(pos) = self.read_buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = self.read_buf.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            progress = true;

            if !self.saw_line {
                self.saw_line = true;
                if let Some(format) = http_metrics_request(&line) {
                    let response = http_metrics_response(&db.metrics_snapshot(), format);
                    self.write_buf.extend_from_slice(response.as_bytes());
                    self.closing = true;
                    self.read_buf.clear();
                    return true;
                }
            }
            if self.closing {
                break;
            }
            if line.len() > MAX_LINE_BYTES {
                self.pending.push_back(Err(WireError::oversized()));
                continue;
            }
            if line.is_empty() {
                // Bare keep-alive newline: ignore rather than error, so
                // `printf '\n'` probes don't pollute the response stream.
                continue;
            }
            match parse_request(&line) {
                Ok(_) if draining => {
                    let depth = self.pending.len() as u64;
                    self.pending
                        .push_back(Err(WireError::overloaded("server is shutting down", depth)));
                }
                Ok(req) => self.pending.push_back(Ok(req)),
                Err(err) => self.pending.push_back(Err(err)),
            }
        }
        progress
    }

    /// Starts queued requests and polls the active query's stream.
    fn advance_active(&mut self, db: &Arc<Database>) -> bool {
        let mut progress = false;
        loop {
            // Start the next pipelined request when nothing is active.
            if self.active.is_none() {
                match self.pending.pop_front() {
                    None => break,
                    Some(Err(err)) => {
                        self.push_line(err.to_frame());
                        progress = true;
                        continue;
                    }
                    Some(Ok(Request::Metrics(format))) => {
                        self.push_line(metrics_frame(&db.metrics_snapshot(), format));
                        progress = true;
                        continue;
                    }
                    Some(Ok(Request::Prepare { query })) => {
                        progress = true;
                        match db.prepare(&query) {
                            Ok(stmt) => {
                                let id = self.next_stmt_id;
                                self.next_stmt_id += 1;
                                let frame = prepared_frame(id, stmt.params(), stmt.columns());
                                self.stmts.insert(id, stmt);
                                self.push_line(frame);
                            }
                            Err(e) => self.push_line(WireError::from_mj(&e).to_frame()),
                        }
                        continue;
                    }
                    Some(Ok(Request::Close { id })) => {
                        progress = true;
                        match self.stmts.remove(&id) {
                            Some(_) => self.push_line(closed_frame(id)),
                            None => self
                                .push_line(WireError::from_mj(&unknown_statement(id)).to_frame()),
                        }
                        continue;
                    }
                    Some(Ok(Request::Execute {
                        id,
                        args,
                        options,
                        format,
                    })) => {
                        progress = true;
                        let Some(stmt) = self.stmts.get(&id).cloned() else {
                            self.push_line(WireError::from_mj(&unknown_statement(id)).to_frame());
                            continue;
                        };
                        match db.execute_prepared_with(&stmt, &args, options) {
                            Ok(mut handle) => {
                                let stream = handle.stream();
                                self.active = Some(ActiveQuery {
                                    handle,
                                    stream,
                                    rows: 0,
                                    format,
                                });
                            }
                            Err(e) => {
                                self.push_line(WireError::from_mj(&e).to_frame());
                                continue;
                            }
                        }
                    }
                    Some(Ok(Request::Query {
                        query,
                        options,
                        format,
                    })) => {
                        progress = true;
                        match db.query_with(&query, options) {
                            Ok(mut handle) => {
                                let stream = handle.stream();
                                self.active = Some(ActiveQuery {
                                    handle,
                                    stream,
                                    rows: 0,
                                    format,
                                });
                            }
                            Err(e) => {
                                self.push_line(WireError::from_mj(&e).to_frame());
                                continue;
                            }
                        }
                    }
                }
            }

            // Poll the active stream until it yields nothing, finishes,
            // or the write buffer backs up.
            let active = self.active.as_mut().expect("active query set above");
            let mut finished = false;
            let mut encode_failed = false;
            while self.write_buf.len() - self.write_pos < WRITE_HIGH_WATER {
                match active.stream.poll_next_batch() {
                    BatchPoll::Batch(batch) => {
                        progress = true;
                        // Serialize straight from the columnar buffers
                        // into the per-connection scratch — no row pivot,
                        // no per-frame allocation at steady state. Binary
                        // frames are length-prefixed, so no newline.
                        let encoded = match active.format {
                            ResultFormat::Json => batch_frame_into(&batch, &mut self.json_scratch)
                                .map(|()| {
                                    self.write_buf
                                        .extend_from_slice(self.json_scratch.as_bytes());
                                    self.write_buf.push(b'\n');
                                }),
                            ResultFormat::Bin => {
                                batch_frame_bin_into(&batch, &mut self.bin_scratch).map(|()| {
                                    self.write_buf.extend_from_slice(&self.bin_scratch);
                                })
                            }
                        };
                        match encoded {
                            Ok(()) => active.rows += batch.len() as u64,
                            Err(err) => {
                                // A ragged batch cannot reach the sink;
                                // if it somehow does, the error frame is
                                // this query's terminal frame.
                                let frame = err.to_frame();
                                self.write_buf.extend_from_slice(frame.as_bytes());
                                self.write_buf.push(b'\n');
                                encode_failed = true;
                                break;
                            }
                        }
                    }
                    BatchPoll::Pending => break,
                    BatchPoll::Done => {
                        finished = true;
                        break;
                    }
                }
            }
            if encode_failed {
                // Dropping the stream + handle cancels the query.
                self.active = None;
                continue;
            }
            if !finished {
                break;
            }

            // Terminal frame: join the coordinator (near-instant once the
            // stream has ended) and report the outcome in request order.
            progress = true;
            let ActiveQuery {
                handle,
                stream,
                rows,
                format: _,
            } = self.active.take().expect("active query set above");
            drop(stream); // fully drained: dropping does not cancel
            match handle.outcome() {
                Ok(outcome) => self.push_line(done_frame(
                    rows,
                    outcome.elapsed,
                    outcome.time_to_first_batch,
                )),
                Err(e) => self.push_line(WireError::from_mj(&MjError::from(e)).to_frame()),
            }
        }
        progress
    }

    /// Writes as much of `write_buf` as the socket will take.
    fn flush(&mut self) -> Result<(), ()> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > WRITE_HIGH_WATER {
            // Compact occasionally so a long-lived slow reader does not
            // pin an ever-growing buffer.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(())
    }
}
