//! The server proper: acceptor thread + fixed connection-worker pool.
//!
//! No async runtime. One acceptor thread owns the non-blocking
//! [`TcpListener`] and deals accepted sockets round-robin to a small
//! fixed pool of connection workers; each worker owns its connections
//! outright and sweeps them with non-blocking `Conn::tick`s. Query
//! execution itself happens in the engine (coordinator threads + the
//! shared worker pool), so a connection worker never blocks inside a
//! query — it only shuttles bytes and polls result streams.
//!
//! Graceful shutdown ([`Server::shutdown`]): stop accepting, let
//! in-flight (and already-pipelined) requests drain, answer any request
//! that arrives during the drain with a typed `overloaded` error, close
//! each connection as it goes quiescent, then join every thread.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mj_exec::Database;

use crate::conn::{Conn, Tick};
use crate::protocol::WireError;

/// The deepest nap an idle connection worker takes between sweeps.
/// Workers back off to this only after a sustained idle streak (see
/// [`idle_pause`]), so a thousand idle connections do not saturate one
/// core with speculative `read(2)`s — while a request that arrives
/// mid-conversation is noticed in microseconds, not milliseconds.
const IDLE_NAP_MAX: Duration = Duration::from_millis(2);

/// Empty sweeps a worker burns as plain `yield_now` before it starts
/// sleeping. An engine round trip on a warm query is ~100 µs; yielding
/// through it keeps wire latency at the same scale instead of rounding
/// every round trip up to a multi-millisecond nap.
const IDLE_SPIN_SWEEPS: u32 = 64;

/// The first real nap after the spin phase; doubles every empty sweep
/// until [`IDLE_NAP_MAX`].
const IDLE_NAP_FLOOR: Duration = Duration::from_micros(20);

/// Progressive idle pause: yield for the first [`IDLE_SPIN_SWEEPS`]
/// empty sweeps, then sleep with exponential backoff from
/// [`IDLE_NAP_FLOOR`] up to [`IDLE_NAP_MAX`].
fn idle_pause(idle_streak: u32) {
    if idle_streak <= IDLE_SPIN_SWEEPS {
        std::thread::yield_now();
        return;
    }
    let exp = (idle_streak - IDLE_SPIN_SWEEPS - 1).min(10);
    std::thread::sleep((IDLE_NAP_FLOOR * 2u32.pow(exp)).min(IDLE_NAP_MAX));
}

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:7878"`. Port `0` picks a free
    /// port; read it back from [`Server::local_addr`].
    pub addr: String,
    /// Connection-worker threads (byte shuttling, not query execution).
    pub conn_workers: usize,
    /// Connections above this are turned away at accept time with a
    /// typed `overloaded` error frame (carrying the current client
    /// count as its queue depth), then closed.
    pub max_clients: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 4,
            max_clients: 1024,
        }
    }
}

impl ServerConfig {
    /// Validates the knobs (non-zero workers and client cap).
    pub fn validate(&self) -> Result<(), String> {
        if self.conn_workers == 0 {
            return Err("conn_workers must be positive".into());
        }
        if self.max_clients == 0 {
            return Err("max_clients must be positive".into());
        }
        Ok(())
    }
}

/// A running query server. Dropping it performs a graceful
/// [`shutdown`](Server::shutdown).
pub struct Server {
    local_addr: SocketAddr,
    draining: Arc<AtomicBool>,
    clients: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and connection
    /// workers against the shared `db`. Returns once the listener is
    /// live — clients may connect immediately.
    ///
    /// Deployment note: if the engine is configured with admission
    /// control (`ExecConfig::max_concurrent`), prefer a small
    /// `admission_queue` — a connection worker submitting a query waits
    /// in that queue, and while it waits its other connections are not
    /// swept.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> std::io::Result<Server> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let draining = Arc::new(AtomicBool::new(false));
        let clients = Arc::new(AtomicUsize::new(0));

        let mut txs: Vec<Sender<Conn>> = Vec::with_capacity(config.conn_workers);
        let mut workers = Vec::with_capacity(config.conn_workers);
        for i in 0..config.conn_workers {
            let (tx, rx) = std::sync::mpsc::channel::<Conn>();
            txs.push(tx);
            let db = db.clone();
            let draining = draining.clone();
            let clients = clients.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mj-conn-{i}"))
                    .spawn(move || worker_loop(rx, db, draining, clients))
                    .expect("spawn connection worker"),
            );
        }

        let acceptor = {
            let draining = draining.clone();
            let clients = clients.clone();
            let max_clients = config.max_clients;
            std::thread::Builder::new()
                .name("mj-accept".to_string())
                .spawn(move || acceptor_loop(listener, txs, draining, clients, max_clients))
                .expect("spawn acceptor")
        };

        Ok(Server {
            local_addr,
            draining,
            clients,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Currently connected clients.
    pub fn active_clients(&self) -> usize {
        self.clients.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain in-flight and pipelined
    /// requests (new arrivals get `overloaded`), close connections as
    /// they go quiescent, join every thread. Blocks until done.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accepts sockets and deals them round-robin to the workers. Owns the
/// listener: exiting (on drain) closes it, so the OS refuses new
/// connections from that point on. The `Sender`s drop with this
/// function, which is what tells the workers no more connections are
/// coming.
fn acceptor_loop(
    listener: TcpListener,
    txs: Vec<Sender<Conn>>,
    draining: Arc<AtomicBool>,
    clients: Arc<AtomicUsize>,
    max_clients: usize,
) {
    let mut next = 0usize;
    while !draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let connected = clients.load(Ordering::Relaxed);
                if connected >= max_clients {
                    reject_inline(stream, connected as u64);
                    continue;
                }
                // Setup (`Conn::new`) fails only if the socket died
                // between accept and configuration; drop it silently.
                if let Ok(conn) = Conn::new(stream) {
                    clients.fetch_add(1, Ordering::Relaxed);
                    // A send can only fail if the worker died, which
                    // only happens at shutdown.
                    if txs[next].send(conn).is_err() {
                        clients.fetch_sub(1, Ordering::Relaxed);
                    }
                    next = (next + 1) % txs.len();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Turns away an over-cap connection with a typed `overloaded` frame: a
/// bounded blocking write of one small line, then close. Never handed
/// to a worker, never counted as a client.
fn reject_inline(mut stream: TcpStream, connected: u64) {
    let frame = WireError::overloaded("connection limit reached", connected).to_frame();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(frame.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// One connection worker: adopt newly dealt connections, sweep each
/// with a non-blocking tick, drop the closed ones, nap when idle. Exits
/// when the acceptor is gone (channel disconnected) and every owned
/// connection has finished — i.e. only at shutdown, after the drain.
fn worker_loop(
    rx: Receiver<Conn>,
    db: Arc<Database>,
    draining: Arc<AtomicBool>,
    clients: Arc<AtomicUsize>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut acceptor_gone = false;
    let mut idle_streak: u32 = 0;
    loop {
        loop {
            match rx.try_recv() {
                Ok(conn) => conns.push(conn),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    acceptor_gone = true;
                    break;
                }
            }
        }

        let drain_now = draining.load(Ordering::SeqCst);
        let mut progress = false;
        conns.retain_mut(|conn| match conn.tick(&db, drain_now) {
            Tick::Progress => {
                progress = true;
                true
            }
            Tick::Idle => {
                if drain_now && conn.is_quiescent() {
                    clients.fetch_sub(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
            Tick::Closed => {
                clients.fetch_sub(1, Ordering::Relaxed);
                false
            }
        });

        if acceptor_gone && conns.is_empty() && drain_now {
            break;
        }
        if progress {
            idle_streak = 0;
        } else {
            idle_streak = idle_streak.saturating_add(1);
            idle_pause(idle_streak);
        }
    }
}
