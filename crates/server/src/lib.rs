//! `mj_server` — the query server subsystem.
//!
//! Exposes a shared [`mj_exec::Database`] over TCP with a line-delimited
//! JSON protocol: clients send `{"query": "...", "options": {...}}`
//! lines and receive streamed `{"batch": [...]}` frames followed by one
//! terminal `{"done": ...}` or typed `{"error": ...}` frame. Queries with
//! `?N` placeholders are planned once via `{"prepare": ...}` and re-run
//! with `{"execute": ...}` against the database's shared plan cache; a
//! `"format": "bin"` request switches result batches to length-prefixed
//! binary columnar frames serialized straight from the engine's column
//! buffers. Metrics are served both in-protocol
//! (`{"metrics": "json"|"prometheus"}`) and to plain HTTP scrapers
//! (`GET /metrics`).
//!
//! Three layers:
//!
//! - [`protocol`] — frame grammar (JSON lines and binary batch frames),
//!   request parsing with strict unknown-field rejection, and the total
//!   [`MjError`] → [`protocol::WireError`] code mapping (`Overloaded`
//!   carries its admission queue depth onto the wire).
//! - `conn` (private) + [`server`] — a non-blocking acceptor and a
//!   small fixed pool of connection workers, each multiplexing many
//!   client sockets over [`mj_exec::ResultStream::poll_next_batch`]. No
//!   async runtime anywhere; disconnecting a client cancels its query
//!   by dropping the stream and handle. Each connection owns a prepared
//!   statement id table and reusable batch-serialization scratch
//!   buffers.
//! - [`client`] — a deliberately simple blocking client used by the
//!   integration tests, the oracle differential harness, and
//!   `repro bench-wire` — including a typed columnar decode of binary
//!   batch frames.
//!
//! [`MjError`]: mj_exec::MjError

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ColumnarReply, Prepared, QueryReply, ServerError};
pub use protocol::{
    MetricsFormat, Request, ResultFormat, WireBatch, WireColumn, WireError, BIN_FRAME_MAGIC,
    MAX_LINE_BYTES,
};
pub use server::{Server, ServerConfig};
