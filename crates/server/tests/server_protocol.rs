//! Integration tests for the query server over real TCP sockets:
//! malformed-frame accept/reject behaviour (the connection must survive
//! every rejection), pipelining order, disconnect-cancels, graceful
//! shutdown drain, the connection cap, and both metrics expositions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mj_exec::{generate_family, Database, DbConfig, QueryFamily};
use mj_relalg::RelationProvider;
use mj_server::{Client, ClientError, MetricsFormat, Server, ServerConfig};
use serde::JsonValue;

/// A served database over a seeded family instance.
fn family_server(family: QueryFamily, k: usize, n: usize, seed: u64, config: DbConfig) -> Server {
    let instance = generate_family(family, k, n, seed).unwrap();
    let db = Database::open(config).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    Server::start(Arc::new(db), ServerConfig::default()).unwrap()
}

fn chain_server() -> Server {
    family_server(QueryFamily::Chain, 3, 120, 7, DbConfig::default())
}

/// A served chain database whose queries take at least `startup_ms` (the
/// paper's per-process startup cost), plus the database handle for
/// engine-side assertions.
fn padded_chain_server(startup_ms: u64) -> (Arc<Database>, Server) {
    let mut config = DbConfig::default();
    config.exec.startup_cost = Some(Duration::from_millis(startup_ms));
    let instance = generate_family(QueryFamily::Chain, 3, 120, 7).unwrap();
    let db = Arc::new(Database::open(config).unwrap());
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    let server = Server::start(db.clone(), ServerConfig::default()).unwrap();
    (db, server)
}

const CHAIN_QUERY: &str = "SELECT * FROM R0 JOIN R1 ON R0.id = R1.id JOIN R2 ON R1.id = R2.id";

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let server = chain_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let bad_lines = [
        r#"{"query": "q""#,                          // truncated JSON
        r#"{"q": "SELECT"}"#,                        // unknown field
        r#"{"query": 42}"#,                          // ill-typed query
        r#"{"query": "q", "options": {"nope": 1}}"#, // unknown option
        r#"{"metrics": "xml"}"#,                     // unknown metrics format
        r#"[1, 2, 3]"#,                              // non-object frame
    ];
    for line in bad_lines {
        client.send_line(line).unwrap();
        let frame = client.read_frame().unwrap().expect("reply expected");
        let err = frame
            .get("error")
            .unwrap_or_else(|| panic!("expected error frame for {line}, got {frame:?}"));
        assert_eq!(
            err.get("code"),
            Some(&JsonValue::Str("protocol".to_string())),
            "line {line}"
        );
    }

    // Bad UTF-8 cannot go through Client::send_line (str-typed); write raw.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"\xff\xfe{}\n").unwrap();
    raw.write_all(b"{\"metrics\": \"json\"}\n").unwrap();
    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 4096];
    while !reply.contains("\n") || reply.matches('\n').count() < 2 {
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "server closed on bad UTF-8");
        reply.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    let mut lines = reply.lines();
    assert!(lines.next().unwrap().contains("\"protocol\""));
    assert!(lines.next().unwrap().contains("\"metrics\""));

    // The original connection still serves real queries after six rejects.
    let reply = client.query(CHAIN_QUERY).unwrap();
    assert!(!reply.rows.is_empty());
    assert!(reply.elapsed_ms >= 0.0);
}

#[test]
fn query_errors_are_typed_with_spans() {
    let server = chain_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A parse error carries its span.
    client.send_line(r#"{"query": "SELECT * FRM R0"}"#).unwrap();
    let frame = client.read_frame().unwrap().unwrap();
    let err = frame.get("error").expect("error frame");
    assert_eq!(err.get("code"), Some(&JsonValue::Str("parse".to_string())));
    assert!(matches!(err.get("span"), Some(JsonValue::Obj(_))));

    // A bind error (unknown relation) also carries a span.
    match client.query("SELECT * FROM NoSuchRel JOIN R1 ON NoSuchRel.id = R1.id") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "bind"),
        other => panic!("expected bind error, got {other:?}"),
    }

    // And the connection still works.
    assert!(!client.query(CHAIN_QUERY).unwrap().rows.is_empty());
}

#[test]
fn oversized_lines_are_rejected_without_killing_the_connection() {
    let server = chain_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A 3 MiB line (> MAX_LINE_BYTES) that never parses; the server must
    // reject by length and keep draining.
    let huge = format!(r#"{{"query": "{}"}}"#, "x".repeat(3 << 20));
    client.send_line(&huge).unwrap();
    let frame = client.read_frame().unwrap().unwrap();
    assert_eq!(
        frame.get("error").unwrap().get("code"),
        Some(&JsonValue::Str("oversized_frame".to_string()))
    );

    // Connection survives.
    assert!(!client.query(CHAIN_QUERY).unwrap().rows.is_empty());
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = chain_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Three different queries fired back-to-back before reading anything;
    // replies must come back in request order. Distinguish them by row
    // width (2-way vs 3-way join).
    let two_way = "SELECT * FROM R0 JOIN R1 ON R0.id = R1.id";
    client.send_query(two_way).unwrap();
    client.send_query(CHAIN_QUERY).unwrap();
    client.send_line(r#"{"metrics": "json"}"#).unwrap();
    client.send_query(two_way).unwrap();

    let first = client.collect_reply().unwrap();
    let second = client.collect_reply().unwrap();
    let metrics = client.read_frame().unwrap().unwrap();
    let fourth = client.collect_reply().unwrap();

    assert_eq!(first.rows[0].len(), 6, "2-way join of 3-column relations");
    assert_eq!(second.rows[0].len(), 9, "3-way join of 3-column relations");
    assert!(metrics.get("metrics").is_some());
    assert_eq!(fourth.rows.len(), first.rows.len());
}

#[test]
fn disconnect_cancels_the_in_flight_query() {
    // Slow the query down so the disconnect happens mid-flight.
    let (db, server) = padded_chain_server(40);
    let _keep = &server;

    let before = db.stats();
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.send_query(CHAIN_QUERY).unwrap();
        // Give the server a beat to start the query, then vanish.
        std::thread::sleep(Duration::from_millis(30));
    }

    // The engine observes the drop as a cancellation (or, if the race went
    // the other way, a completion) — never a leak: active must return to 0.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = db.stats();
        let done = s.queries_canceled > before.queries_canceled
            || s.queries_completed > before.queries_completed;
        if done && s.queries_active == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query neither canceled nor completed after disconnect: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let (_db, server) = padded_chain_server(40);
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.send_query(CHAIN_QUERY).unwrap();

    // Give the server time to parse and start the query, then shut down
    // concurrently with it in flight.
    std::thread::sleep(Duration::from_millis(30));
    let shutdown = std::thread::spawn(move || server.shutdown());

    // The in-flight query still delivers its full reply.
    let reply = client.collect_reply().unwrap();
    assert!(!reply.rows.is_empty());

    shutdown.join().unwrap();

    // After shutdown the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can let one connect through; it must at least
            // be closed immediately.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = [0u8; 16];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        }
    );
}

#[test]
fn requests_during_drain_are_rejected_as_overloaded() {
    // Startup-cost padding keeps the first query in flight long enough
    // for the drain (and the mid-drain request) to land while it runs.
    let (_db, server) = padded_chain_server(60);
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client.send_query(CHAIN_QUERY).unwrap();
    std::thread::sleep(Duration::from_millis(30));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(30));

    // This request arrives while the server drains; it must be answered
    // with a typed overloaded error, not silence.
    client.send_query(CHAIN_QUERY).unwrap();

    // First reply: the pre-drain query, completed in full.
    let first = client.collect_reply().unwrap();
    assert!(!first.rows.is_empty());

    // Second reply: overloaded.
    match client.collect_reply() {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "overloaded");
            assert!(e.queue_depth.is_some());
        }
        other => panic!("expected overloaded during drain, got {other:?}"),
    }

    shutdown.join().unwrap();
}

#[test]
fn connection_cap_rejects_with_queue_depth() {
    let instance = generate_family(QueryFamily::Chain, 3, 60, 7).unwrap();
    let db = Database::open(DbConfig::default()).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            max_clients: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut first = Client::connect(server.local_addr()).unwrap();
    // Prove the first client is fully admitted before the second connects.
    assert!(first.metrics(MetricsFormat::Json).is_ok());

    let mut second = Client::connect(server.local_addr()).unwrap();
    match second.collect_reply() {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "overloaded");
            assert_eq!(e.queue_depth, Some(1));
        }
        other => panic!("expected overloaded from over-cap connect, got {other:?}"),
    }

    // The admitted client is unaffected.
    assert!(!first.query(CHAIN_QUERY).unwrap().rows.is_empty());
}

#[test]
fn metrics_are_served_in_protocol_and_over_http() {
    let server = chain_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Generate some engine activity first.
    let reply = client.query(CHAIN_QUERY).unwrap();
    assert!(!reply.rows.is_empty());

    // In-protocol JSON: accept-listed names resolve to values.
    let json = client.metrics(MetricsFormat::Json).unwrap();
    let completed = json.get("queries_completed").expect("counter present");
    assert!(matches!(completed, JsonValue::Int(n) if *n >= 1));
    assert!(json.get("query_duration_ms").is_some());

    // In-protocol Prometheus text.
    let text = client.metrics(MetricsFormat::Prometheus).unwrap();
    let text = match text {
        JsonValue::Str(s) => s,
        other => panic!("expected text exposition, got {other:?}"),
    };
    assert!(text.contains("# TYPE mj_queries_total counter"));
    assert!(text.contains("mj_query_duration_ms_bucket"));

    // HTTP one-shot scrape: Prometheus text.
    let mut scraper = TcpStream::connect(server.local_addr()).unwrap();
    scraper.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    scraper
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    scraper.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"));
    assert!(response.contains("mj_queries_total"));

    // HTTP one-shot scrape: JSON.
    let mut scraper = TcpStream::connect(server.local_addr()).unwrap();
    scraper
        .write_all(b"GET /metrics.json HTTP/1.0\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    scraper
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    scraper.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"));
    let body = response.split("\r\n\r\n").nth(1).expect("http body");
    let parsed: JsonValue = serde_json::from_str(body).unwrap();
    assert!(parsed.get("queries_completed").is_some());
}

#[test]
fn wire_options_enforce_deadlines() {
    // A deadline of 1ms against a startup-cost-padded query must come back
    // as a typed deadline_exceeded error over the wire.
    let mut config = DbConfig::default();
    config.exec.startup_cost = Some(Duration::from_millis(30));
    let instance = generate_family(QueryFamily::Chain, 3, 60, 7).unwrap();
    let db = Database::open(config).unwrap();
    let mut names = instance.catalog.names();
    names.sort();
    for name in &names {
        db.register(name, instance.catalog.relation(name).unwrap())
            .unwrap();
    }
    db.analyze().unwrap();
    let server = Server::start(Arc::new(db), ServerConfig::default()).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.send_query_with(CHAIN_QUERY, Some(1), None).unwrap();
    match client.collect_reply() {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "deadline_exceeded"),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // Same connection, generous deadline: succeeds.
    client
        .send_query_with(CHAIN_QUERY, Some(60_000), None)
        .unwrap();
    assert!(!client.collect_reply().unwrap().rows.is_empty());
}
