//! Deterministic fault injection for the guardrail layer.
//!
//! Compiled only with the `faults` cargo feature — release builds carry
//! zero harness code. A [`FaultPlan`] attached to a query via
//! [`QueryOptions::with_faults`](crate::QueryOptions::with_faults) forces a
//! panic, an allocation spike, or a stall at the i-th scheduling step of a
//! named operator. The sweep tests drive every injection point and assert
//! the guardrail invariant: a clean typed error, zero leaked fragments, a
//! reusable engine, and unaffected sibling queries.
//!
//! Injection is matched at task-spawn time (operator kind label, optional
//! op id / instance) and fired inside the task's own `try_step`, so a
//! `Panic` fault exercises the real `catch_unwind` containment path, an
//! `AllocSpike` exercises the real [`MemoryBudget`](crate::MemoryBudget)
//! trip, and a `Stall` parks the task in `Blocked` until the coordinator
//! watchdog notices that progress has stopped.

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the operator's scheduling step; must surface as a
    /// contained `RelalgError::Internal`, never a worker-thread death.
    Panic,
    /// Charge `bytes` against the query's memory budget in one step; with
    /// a budget configured this must surface as `ResourceExhausted`.
    AllocSpike {
        /// Bytes charged when the fault fires.
        bytes: u64,
    },
    /// Return `Blocked` on every subsequent step: the pipeline stops making
    /// progress and the coordinator watchdog must raise `Stalled`.
    Stall,
}

/// One injection point: fire `kind` at the `at_step`-th scheduling step of
/// every operator instance matching the selector.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Operator kind label to match: `"join"`, `"filter"`, `"aggregate"`
    /// or `"limit"`.
    pub op: String,
    /// Restrict to a single operator id (`None` matches any op of the
    /// kind).
    pub op_id: Option<usize>,
    /// Restrict to a single parallel instance (`None` matches all).
    pub instance: Option<usize>,
    /// 1-based scheduling step at which the fault fires. `0` derives a
    /// small pseudo-random step from the plan seed and the task identity,
    /// so a seeded sweep perturbs *where* in the lifecycle faults land
    /// while staying reproducible.
    pub at_step: u64,
    /// What happens at the step.
    pub kind: FaultKind,
}

impl FaultPoint {
    /// A point firing `kind` at step `at_step` of every instance of every
    /// operator with kind label `op`.
    pub fn new(op: impl Into<String>, at_step: u64, kind: FaultKind) -> Self {
        FaultPoint {
            op: op.into(),
            op_id: None,
            instance: None,
            at_step,
            kind,
        }
    }

    /// Restricts the point to operator `op_id`.
    pub fn at_op(mut self, op_id: usize) -> Self {
        self.op_id = Some(op_id);
        self
    }

    /// Restricts the point to parallel instance `instance`.
    pub fn at_instance(mut self, instance: usize) -> Self {
        self.instance = Some(instance);
        self
    }
}

/// A seeded, deterministic set of fault points for one query.
///
/// The default plan is empty and injects nothing; results with an empty
/// plan are identical to a run without the harness.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed`, used to derive firing steps for
    /// points with `at_step == 0`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            points: Vec::new(),
            seed,
        }
    }

    /// Adds an injection point.
    pub fn with_point(mut self, point: FaultPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves the plan against one task identity at spawn time. The
    /// first matching point arms; `None` leaves the task fault-free.
    pub(crate) fn arm(&self, label: &str, op_id: usize, instance: usize) -> Option<ArmedFault> {
        let p = self.points.iter().find(|p| {
            p.op == label
                && p.op_id.is_none_or(|id| id == op_id)
                && p.instance.is_none_or(|i| i == instance)
        })?;
        let at_step = if p.at_step == 0 {
            // splitmix64-style mix of seed and task identity: deterministic
            // for a given (seed, op, instance), varied across them.
            let mut z = self
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((op_id as u64) << 32)
                .wrapping_add(instance as u64);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            1 + ((z ^ (z >> 31)) % 8)
        } else {
            p.at_step
        };
        Some(ArmedFault {
            at_step,
            kind: p.kind,
            fired: false,
        })
    }
}

/// A fault resolved onto one concrete operator task.
#[derive(Clone, Debug)]
pub struct ArmedFault {
    at_step: u64,
    kind: FaultKind,
    fired: bool,
}

impl ArmedFault {
    /// Called once per scheduling step with the task's step counter;
    /// returns the fault kind exactly once, at the firing step.
    pub(crate) fn fire(&mut self, step: u64) -> Option<FaultKind> {
        if !self.fired && step >= self.at_step {
            self.fired = true;
            Some(self.kind)
        } else {
            None
        }
    }

    /// Whether this is a stall fault that has fired (the task must keep
    /// reporting `Blocked`).
    pub(crate) fn stalling(&self) -> bool {
        self.fired && self.kind == FaultKind::Stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_arms_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.arm("join", 0, 0).is_none());
    }

    #[test]
    fn selectors_match_kind_op_and_instance() {
        let plan = FaultPlan::new().with_point(
            FaultPoint::new("join", 3, FaultKind::Panic)
                .at_op(1)
                .at_instance(2),
        );
        assert!(plan.arm("join", 1, 2).is_some());
        assert!(plan.arm("join", 1, 0).is_none());
        assert!(plan.arm("join", 0, 2).is_none());
        assert!(plan.arm("filter", 1, 2).is_none());
    }

    #[test]
    fn fires_exactly_once_at_step() {
        let plan = FaultPlan::new().with_point(FaultPoint::new("limit", 3, FaultKind::Panic));
        let mut armed = plan.arm("limit", 5, 0).expect("point matches any limit op");
        assert_eq!(armed.fire(1), None);
        assert_eq!(armed.fire(2), None);
        assert_eq!(armed.fire(3), Some(FaultKind::Panic));
        assert_eq!(armed.fire(4), None, "a fault fires once");
    }

    #[test]
    fn stall_keeps_stalling_after_firing() {
        let plan = FaultPlan::new().with_point(FaultPoint::new("join", 1, FaultKind::Stall));
        let mut armed = plan.arm("join", 0, 0).expect("matches");
        assert!(!armed.stalling());
        assert_eq!(armed.fire(1), Some(FaultKind::Stall));
        assert!(armed.stalling());
        assert_eq!(armed.fire(2), None);
        assert!(armed.stalling());
    }

    #[test]
    fn seeded_step_is_deterministic_and_spread() {
        let plan = FaultPlan::seeded(42).with_point(FaultPoint::new("join", 0, FaultKind::Stall));
        let a = plan.arm("join", 0, 0).expect("matches");
        let b = plan.arm("join", 0, 0).expect("matches");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same identity, same step"
        );
        let c = plan.arm("join", 0, 1).expect("matches");
        // Different instances may land on different steps; all are >= 1.
        assert!(format!("{c:?}").contains("at_step"));
    }
}
