//! The shared worker pool: a fixed set of OS threads that every operation
//! process of every in-flight query is multiplexed onto.
//!
//! The paper maps join operation processes onto a *fixed pool of
//! processors* (§4) — it is the scarcity of workers, not of operators,
//! that drives the SP/RD/FP trade-off. The seed engine instead spawned one
//! OS thread per operator instance per query, so physical concurrency was
//! accidental and a second in-flight query doubled the thread count. Here,
//! operator instances are cooperative [`Task`]s:
//!
//! * a task [`step`](Task::step)s for a bounded quantum and returns
//!   [`Step::Progress`], keeping its place in the run queue;
//! * a task that cannot progress (its input channel is empty, its output
//!   channel is full) returns [`Step::Blocked`] and **yields its worker**
//!   instead of parking a thread — the worker immediately picks up another
//!   task, so a bounded pool can run arbitrarily many concurrent dataflows
//!   without deadlocking on its own thread count;
//! * a finished task returns [`Step::Done`] and is dropped, releasing its
//!   channel endpoints.
//!
//! Tasks are submitted with a priority (the engine uses the right-deep
//! segmentation's topological wave index from
//! `Segmentation::node_waves`): a new task is inserted ahead of queued
//! tasks of later waves, so pipelines fill bottom-up — but once a task has
//! been stepped it rejoins the **back** of the rotation, making the queue
//! a fair round-robin. Independent segments of one wave, and tasks of
//! different queries, therefore interleave on the pool exactly as the §4
//! schedule on a fixed processor set prescribes, and a blocked
//! early-wave task can never starve the later-wave consumer it is waiting
//! on (strict priority lanes would livelock exactly there).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a std mutex, tolerating poison: the pool's queue state is a plain
/// `VecDeque` that is never left half-mutated by the panicking code paths
/// (task panics are contained *outside* the lock), so recovering the inner
/// guard is always sound — and a single panicked thread must not take the
/// whole scheduler down with `PoisonError` panics on every other worker.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The outcome of one cooperative scheduling step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The task moved tuples (or otherwise advanced); reschedule it.
    Progress,
    /// The task could not advance (channel empty/full); reschedule it, but
    /// the worker is free to run others — and to back off briefly if
    /// *every* queued task is blocked.
    Blocked,
    /// The task completed (successfully or not) and can be dropped.
    Done,
}

/// A cooperatively scheduled unit of work — one operator instance.
///
/// Implementations must never block the calling thread: channel operations
/// inside `step` use the non-blocking `try_*` forms and report
/// [`Step::Blocked`] instead of waiting. Completion (including errors) is
/// reported out of band by the task itself (the engine's tasks send on a
/// per-query done channel).
pub trait Task: Send {
    /// Runs one bounded quantum.
    fn step(&mut self) -> Step;
}

/// One priority lane entry.
struct Queued {
    task: Box<dyn Task>,
    priority: usize,
}

/// Run-queue state behind the pool mutex: one rotation, priority-ordered
/// at admission, FIFO thereafter.
struct QueueState {
    queue: VecDeque<Queued>,
    shutdown: bool,
}

impl QueueState {
    fn pop(&mut self) -> Option<Queued> {
        self.queue.pop_front()
    }

    /// Admits a new task: stable-inserted after the last queued task of
    /// the same or an earlier wave, so lower waves start first. O(n), but
    /// submission is bursty (query start, op completion) and queues are
    /// short relative to the tuple work behind each entry.
    fn admit(&mut self, q: Queued) {
        let at = self
            .queue
            .iter()
            .rposition(|e| e.priority <= q.priority)
            .map_or(0, |i| i + 1);
        self.queue.insert(at, q);
    }

    /// Returns a stepped task to the back of the rotation (fairness: no
    /// queued task is ever more than one full rotation from its next
    /// step).
    fn requeue(&mut self, q: Queued) {
        self.queue.push_back(q);
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
    /// Tasks ever submitted (diagnostics).
    submitted: AtomicU64,
    /// Steps executed across all workers (diagnostics).
    steps: AtomicU64,
    /// Workers currently inside a task step (the `mj_worker_busy` gauge;
    /// workers waiting on the queue condvar or requeueing are idle).
    busy: AtomicU64,
    /// Task panics the pool's backstop `catch_unwind` contained
    /// (diagnostics; the task layer normally contains its own panics
    /// before they ever reach the worker loop).
    panics: AtomicU64,
}

/// Worker threads ever spawned by any pool in this process — lets tests
/// assert that running more queries does not spawn more threads.
static WORKER_THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total worker threads spawned by every [`WorkerPool`] this process has
/// created (monotone; includes pools that have shut down).
pub fn worker_threads_spawned() -> u64 {
    WORKER_THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// How long an idle worker sleeps when every queued task is blocked.
/// Bounded channels hold many batches, so a stalled edge is refilled far
/// less often than this; the sleep caps busy-spin without adding
/// measurable latency.
const BLOCKED_BACKOFF: Duration = Duration::from_micros(50);

/// A fixed-size pool of worker threads executing [`Task`]s cooperatively.
///
/// The pool is created once (per engine) and shared by every query; its
/// thread count never changes. Dropping the pool shuts it down: workers
/// finish their current step, drop any still-queued tasks (releasing their
/// channel endpoints), and exit.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                WORKER_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("mj-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            handles: Mutex::new(handles),
            workers,
        })
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads currently owned by this pool — constant from
    /// construction to shutdown, however many tasks are submitted.
    pub fn threads(&self) -> usize {
        lock(&self.handles).len()
    }

    /// Enqueues a task at `priority` (lower waves start first; see the
    /// module docs for the rotation discipline).
    pub fn submit(&self, priority: usize, task: Box<dyn Task>) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let mut queue = lock(&self.shared.queue);
        queue.admit(Queued { task, priority });
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Tasks ever submitted to this pool.
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Scheduling steps executed so far.
    pub fn steps(&self) -> u64 {
        self.shared.steps.load(Ordering::Relaxed)
    }

    /// Workers currently executing a task step (the rest are idle —
    /// waiting for work or shuffling the run queue). A point-in-time
    /// gauge: any value in `0..=workers()`.
    pub fn busy(&self) -> u64 {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// Tasks currently queued (excluding those mid-step on a worker).
    pub fn queued(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Task panics contained by the pool's backstop `catch_unwind` (the
    /// worker thread survived each one).
    pub fn panics_contained(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Consecutive blocked steps since the last progress; once the worker
    // has cycled the whole queue without anyone advancing, it backs off.
    let mut blocked_streak = 0usize;
    loop {
        let (queued, queue_len) = {
            let mut queue = lock(&shared.queue);
            loop {
                if queue.shutdown {
                    // Drop still-queued tasks: their Drop impls release
                    // channel endpoints and report non-completion.
                    while let Some(q) = queue.pop() {
                        drop(q);
                    }
                    return;
                }
                if let Some(q) = queue.pop() {
                    break (q, queue.len());
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        let mut queued = queued;
        shared.busy.fetch_add(1, Ordering::Relaxed);
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| queued.task.step()));
        shared.busy.fetch_sub(1, Ordering::Relaxed);
        shared.steps.fetch_add(1, Ordering::Relaxed);
        match step {
            Ok(Step::Progress) => {
                blocked_streak = 0;
                let mut queue = lock(&shared.queue);
                queue.requeue(queued);
                drop(queue);
                shared.ready.notify_one();
            }
            Ok(Step::Blocked) => {
                blocked_streak += 1;
                let mut queue = lock(&shared.queue);
                queue.requeue(queued);
                drop(queue);
                // Everyone this worker has seen lately is blocked: back off
                // briefly instead of spinning on channel locks. Progress
                // can only come from another task, which another worker
                // (or this one, after the nap) will run.
                if blocked_streak > queue_len {
                    std::thread::sleep(BLOCKED_BACKOFF);
                    blocked_streak = 0;
                }
            }
            Ok(Step::Done) => {
                blocked_streak = 0;
                drop(queued);
            }
            Err(_panic) => {
                // A panicking task is dropped (its Drop reports the
                // failure to its query); the worker itself survives.
                shared.panics.fetch_add(1, Ordering::Relaxed);
                blocked_streak = 0;
                drop(queued);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts down `n` steps, optionally reporting Blocked in between.
    struct Countdown {
        left: usize,
        block_every: usize,
        counter: Arc<AtomicUsize>,
    }

    impl Task for Countdown {
        fn step(&mut self) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            if self.block_every > 0 && self.left.is_multiple_of(self.block_every) {
                self.left -= 1;
                return Step::Blocked;
            }
            self.left -= 1;
            self.counter.fetch_add(1, Ordering::Relaxed);
            Step::Progress
        }
    }

    fn wait_for(counter: &AtomicUsize, target: usize) {
        let mut spins = 0;
        while counter.load(Ordering::Relaxed) < target {
            std::thread::sleep(Duration::from_millis(1));
            spins += 1;
            assert!(spins < 10_000, "pool failed to finish tasks");
        }
    }

    #[test]
    fn pool_runs_many_tasks_on_few_threads() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.threads(), 2);
        assert!(worker_threads_spawned() >= 2, "global spawn counter ticks");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            pool.submit(
                0,
                Box::new(Countdown {
                    left: 10,
                    block_every: 3,
                    counter: counter.clone(),
                }),
            );
        }
        // 10 steps each, ~1/3 blocked: 50 tasks x (10 - 3) progress steps.
        wait_for(&counter, 50 * 7);
        assert_eq!(pool.submitted(), 50);
        assert_eq!(
            pool.threads(),
            2,
            "task count must not grow the thread count"
        );
    }

    #[test]
    fn blocked_tasks_do_not_starve_the_pool() {
        // One permanently blocked task must not stop others from running.
        struct Stuck {
            unblock: Arc<AtomicUsize>,
        }
        impl Task for Stuck {
            fn step(&mut self) -> Step {
                if self.unblock.load(Ordering::Relaxed) > 0 {
                    Step::Done
                } else {
                    Step::Blocked
                }
            }
        }
        let pool = WorkerPool::new(1);
        let unblock = Arc::new(AtomicUsize::new(0));
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(
            0,
            Box::new(Stuck {
                unblock: unblock.clone(),
            }),
        );
        pool.submit(
            0,
            Box::new(Countdown {
                left: 20,
                block_every: 0,
                counter: counter.clone(),
            }),
        );
        wait_for(&counter, 20);
        unblock.store(1, Ordering::Relaxed);
        // Pool drop drains the stuck task (now Done) and joins cleanly.
    }

    /// A task that does nothing (queue-discipline tests step the queue by
    /// hand, so the task body never runs).
    struct Inert;
    impl Task for Inert {
        fn step(&mut self) -> Step {
            Step::Done
        }
    }

    fn queued(priority: usize) -> Queued {
        Queued {
            task: Box::new(Inert),
            priority,
        }
    }

    #[test]
    fn admission_orders_by_wave() {
        // Admission is priority-ordered and stable: later-submitted
        // early-wave tasks overtake queued later-wave tasks, so pipelines
        // fill bottom-up regardless of submission order.
        let mut q = QueueState {
            queue: VecDeque::new(),
            shutdown: false,
        };
        q.admit(queued(1));
        q.admit(queued(0));
        q.admit(queued(2));
        q.admit(queued(1));
        q.admit(queued(0));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.priority)).collect();
        assert_eq!(order, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn requeue_rotates_instead_of_restoring_priority() {
        // Once stepped, a task rejoins the back of the rotation even if
        // its wave is earlier — a blocked wave-0 producer must not starve
        // the wave-1 consumer it is waiting on.
        let mut q = QueueState {
            queue: VecDeque::new(),
            shutdown: false,
        };
        q.admit(queued(0));
        q.admit(queued(1));
        let first = q.pop().unwrap();
        assert_eq!(first.priority, 0);
        q.requeue(first); // e.g. it reported Blocked
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.priority)).collect();
        assert_eq!(order, vec![1, 0], "the wave-1 task now runs first");
    }

    #[test]
    fn shutdown_drops_queued_tasks() {
        struct NotifyOnDrop {
            dropped: Arc<AtomicUsize>,
        }
        impl Task for NotifyOnDrop {
            fn step(&mut self) -> Step {
                Step::Blocked
            }
        }
        impl Drop for NotifyOnDrop {
            fn drop(&mut self) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..4 {
                pool.submit(
                    0,
                    Box::new(NotifyOnDrop {
                        dropped: dropped.clone(),
                    }),
                );
            }
            // Give the worker a moment to cycle them.
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dropped.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        struct Panics;
        impl Task for Panics {
            fn step(&mut self) -> Step {
                panic!("task bug");
            }
        }
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(0, Box::new(Panics));
        pool.submit(
            0,
            Box::new(Countdown {
                left: 5,
                block_every: 0,
                counter: counter.clone(),
            }),
        );
        wait_for(&counter, 5);
        assert_eq!(pool.panics_contained(), 1, "backstop counter ticks");
    }
}
