//! Operand sources as seen by one operation-process instance.

use std::sync::Arc;

use crossbeam::channel::Receiver;
use mj_relalg::hash::bucket_of;
use mj_relalg::{Relation, Result, Tuple};

use crate::stream::Msg;

/// Where an instance's operand tuples come from.
pub enum Source {
    /// A processor-local fragment (ideal base fragmentation, §4.1): read
    /// directly, no network.
    Local(Arc<Relation>),
    /// A materialized intermediate: the instance pulls every producer
    /// fragment and keeps the tuples that hash to its own bucket —
    /// physically a redistribution read.
    Filtered {
        /// All producer output fragments.
        fragments: Vec<Arc<Relation>>,
        /// Key column to bucket on (this operand's join key).
        key_col: usize,
        /// This instance's bucket.
        bucket: usize,
        /// Total buckets (= the consuming op's degree).
        of: usize,
    },
    /// A live stream from `producers` producer instances.
    Stream {
        /// This instance's receiver.
        rx: Receiver<Msg>,
        /// Producer instances; the side closes after this many `End`s.
        producers: usize,
    },
}

impl Source {
    /// True if all tuples are available without waiting on other ops.
    pub fn is_immediate(&self) -> bool {
        !matches!(self, Source::Stream { .. })
    }

    /// Drains an immediate source, invoking `f` per tuple. Panics on
    /// `Stream` sources (use the operator loops for those).
    pub fn for_each_immediate(&self, mut f: impl FnMut(Tuple) -> Result<()>) -> Result<u64> {
        let mut n = 0u64;
        match self {
            Source::Local(rel) => {
                for t in rel.iter() {
                    f(t.clone())?;
                    n += 1;
                }
            }
            Source::Filtered {
                fragments,
                key_col,
                bucket,
                of,
            } => {
                for frag in fragments {
                    for t in frag.iter() {
                        if bucket_of(t.int(*key_col)?, *of) == *bucket {
                            f(t.clone())?;
                            n += 1;
                        }
                    }
                }
            }
            Source::Stream { .. } => unreachable!("for_each_immediate on a stream"),
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::{Attribute, Schema};

    fn rel(n: i64) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k")]).shared();
        Arc::new(Relation::new_unchecked(
            schema,
            (0..n).map(|v| Tuple::from_ints(&[v])).collect(),
        ))
    }

    #[test]
    fn local_drains_everything() {
        let s = Source::Local(rel(10));
        let mut seen = 0;
        let n = s
            .for_each_immediate(|_| {
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 10);
        assert_eq!(seen, 10);
        assert!(s.is_immediate());
    }

    #[test]
    fn filtered_partitions_exactly() {
        let fragments = vec![rel(50), rel(50)];
        let mut total = 0u64;
        for bucket in 0..4 {
            let s = Source::Filtered {
                fragments: fragments.clone(),
                key_col: 0,
                bucket,
                of: 4,
            };
            total += s
                .for_each_immediate(|t| {
                    assert_eq!(bucket_of(t.int(0).unwrap(), 4), bucket);
                    Ok(())
                })
                .unwrap();
        }
        assert_eq!(total, 100, "buckets partition the input");
    }
}
