//! The simple hash-join operation process: build the left operand fully,
//! then stream the right operand past the table (§2.3.2).

use mj_relalg::{EquiJoin, Result};

use crate::metrics::InstanceStats;
use crate::operator::task::{drive_blocking, OpTask};
use crate::operator::OutputPort;
use crate::source::Source;

/// Runs one simple hash-join instance to completion on the current thread
/// (a blocking driver over the same [`OpTask`] state machine the worker
/// pool schedules).
///
/// The build (left) source must be immediate (base fragment or materialized
/// intermediate): no strategy in the paper streams into a simple join's
/// build side — SP/SE materialize everything, RD builds from bases or
/// prior-wave outputs.
pub fn run_simple_instance(
    spec: EquiJoin,
    left: Source,
    right: Source,
    output: OutputPort,
    batch_size: usize,
) -> Result<InstanceStats> {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let task = OpTask::join(
        mj_relalg::JoinAlgorithm::Simple,
        spec,
        left,
        right,
        output,
        batch_size,
        0,
        0,
        done_tx,
        None,
        false,
        None,
    );
    drive_blocking(task);
    done_rx.recv().expect("task reports exactly once").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Router};
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::{Attribute, Projection, Relation, Schema, Tuple};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn rel(rows: &[[i64; 2]]) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Arc::new(Relation::new_unchecked(
            schema,
            rows.iter().map(|r| Tuple::from_ints(r)).collect(),
        ))
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![0, 1, 3]))
    }

    #[test]
    fn local_build_local_probe() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let stats = run_simple_instance(
            spec(),
            Source::Local(rel(&[[1, 10], [2, 20]])),
            Source::Local(rel(&[[2, 200], [3, 300]])),
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            4,
        )
        .unwrap();
        assert_eq!(stats.tuples_in, [2, 2]);
        assert_eq!(stats.tuples_out, 1);
        assert_eq!(collected.lock().len(), 1);
        assert!(stats.table_bytes > 0);
    }

    #[test]
    fn streamed_probe() {
        let (txs, rxs, pool) = operand_channels(1, 1, 8, ColumnLayout::ints(2));
        let collected = Arc::new(Mutex::new(Vec::new()));
        // Producer thread: sends 5 probe tuples then End.
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 2, pool);
            for k in 0..5i64 {
                router.route(Tuple::from_ints(&[k, k * 100])).unwrap();
            }
            router.finish().unwrap();
        });
        let stats = run_simple_instance(
            spec(),
            Source::Local(rel(&[[1, 10], [3, 30], [9, 90]])),
            Source::Stream {
                rx: rxs.into_iter().next().unwrap(),
                producers: 1,
            },
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            2,
        )
        .unwrap();
        producer.join().unwrap();
        assert_eq!(stats.tuples_in[1], 5);
        assert_eq!(collected.lock().len(), 2, "keys 1 and 3 match");
    }

    #[test]
    fn streamed_build_is_rejected() {
        let (_txs, rxs, _pool) = operand_channels(1, 1, 1, ColumnLayout::ints(2));
        let collected = Arc::new(Mutex::new(Vec::new()));
        let r = run_simple_instance(
            spec(),
            Source::Stream {
                rx: rxs.into_iter().next().unwrap(),
                producers: 1,
            },
            Source::Local(rel(&[])),
            OutputPort::Sink {
                collected,
                buffer: Vec::new(),
            },
            2,
        );
        assert!(r.is_err());
    }
}
