//! Where an instance's results go.

use std::sync::Arc;

use mj_core::plan_ir::ProcId;
use mj_relalg::{Relation, Result, Schema, Tuple};
use mj_storage::FragmentStore;
use parking_lot::Mutex;

use crate::stream::Router;

/// The output port of one operation-process instance.
pub enum OutputPort {
    /// Live redistribution to the consumer's instances.
    Stream(Router),
    /// Store the output fragment in this processor's memory (the consumer
    /// reads it later — SP/SE materialization and RD inter-wave edges).
    Materialize {
        /// Shared node-memory store.
        store: Arc<FragmentStore>,
        /// This instance's processor (storage node).
        proc: ProcId,
        /// Fragment name (`op{id}`).
        name: String,
        /// Output schema.
        schema: Arc<Schema>,
        /// Accumulated tuples.
        buffer: Vec<Tuple>,
    },
    /// The query sink: results are collected for the client.
    Sink {
        /// Shared collection buffer.
        collected: Arc<Mutex<Vec<Tuple>>>,
        /// Local accumulation to amortize locking.
        buffer: Vec<Tuple>,
    },
}

impl OutputPort {
    /// Emits a batch of result tuples.
    pub fn emit(&mut self, tuples: &mut Vec<Tuple>) -> Result<()> {
        match self {
            OutputPort::Stream(router) => {
                for t in tuples.drain(..) {
                    router.route(t)?;
                }
            }
            OutputPort::Materialize { buffer, .. } | OutputPort::Sink { buffer, .. } => {
                buffer.append(tuples);
            }
        }
        Ok(())
    }

    /// Finalizes the port: flush + End for streams, store write for
    /// materialization, sink merge for the root.
    pub fn finish(self) -> Result<()> {
        match self {
            OutputPort::Stream(router) => router.finish(),
            OutputPort::Materialize {
                store,
                proc,
                name,
                schema,
                buffer,
            } => store.put(
                proc,
                name,
                Arc::new(Relation::new_unchecked(schema, buffer)),
            ),
            OutputPort::Sink { collected, buffer } => {
                collected.lock().extend(buffer);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Msg};
    use mj_relalg::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::int("k")]).shared()
    }

    #[test]
    fn sink_collects() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let mut port = OutputPort::Sink {
            collected: collected.clone(),
            buffer: Vec::new(),
        };
        port.emit(&mut vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])])
            .unwrap();
        port.finish().unwrap();
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn materialize_stores_fragment() {
        let store = Arc::new(FragmentStore::new(2));
        let mut port = OutputPort::Materialize {
            store: store.clone(),
            proc: 1,
            name: "op0".into(),
            schema: schema(),
            buffer: Vec::new(),
        };
        port.emit(&mut vec![Tuple::from_ints(&[7])]).unwrap();
        port.finish().unwrap();
        assert_eq!(store.get(1, "op0").unwrap().len(), 1);
        assert!(store.get(0, "op0").is_err());
    }

    #[test]
    fn stream_forwards_and_ends() {
        let (txs, rxs, pool) = operand_channels(1, 8);
        let mut port = OutputPort::Stream(Router::new(txs, 0, 2, pool));
        port.emit(&mut vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])])
            .unwrap();
        port.finish().unwrap();
        let mut tuples = 0;
        let mut ends = 0;
        while let Ok(msg) = rxs[0].recv() {
            match msg {
                Msg::Batch(b) => tuples += b.len(),
                Msg::End => {
                    ends += 1;
                    break;
                }
            }
        }
        assert_eq!((tuples, ends), (2, 1));
    }
}
