//! Where an instance's results go.

use std::sync::Arc;

use mj_core::plan_ir::ProcId;
use mj_relalg::column::ColumnBatch;
use mj_relalg::{Relation, Result, Schema, Tuple};
use mj_storage::FragmentStore;
use parking_lot::Mutex;

use crate::stream::{ClientSink, Router};

/// The output port of one operation-process instance.
pub enum OutputPort {
    /// Live redistribution to the consumer's instances.
    Stream(Router),
    /// Store the output fragment in this processor's memory (the consumer
    /// reads it later — SP/SE materialization and RD inter-wave edges).
    Materialize {
        /// Shared node-memory store.
        store: Arc<FragmentStore>,
        /// This instance's processor (storage node).
        proc: ProcId,
        /// Fragment name (`op{id}`).
        name: String,
        /// Output schema.
        schema: Arc<Schema>,
        /// Accumulated tuples.
        buffer: Vec<Tuple>,
        /// The owning query's memory budget: the stored fragment's bytes
        /// are charged on write and credited back when the coordinator
        /// reclaims the query's namespace.
        budget: Option<Arc<crate::budget::MemoryBudget>>,
    },
    /// The root of a submitted query: batches stream to the client's
    /// [`ResultStream`](crate::handle::ResultStream) through a bounded
    /// channel, so results flow before the query completes and a slow
    /// client backpressures the pool.
    Client(ClientSink),
    /// A buffered collection sink (the dedicated-thread `run_*_instance`
    /// drivers used by unit tests and benches).
    Sink {
        /// Shared collection buffer.
        collected: Arc<Mutex<Vec<Tuple>>>,
        /// Local accumulation to amortize locking.
        buffer: Vec<Tuple>,
    },
}

impl OutputPort {
    /// Emits a batch of result tuples, blocking on stream backpressure
    /// (dedicated-thread path).
    pub fn emit(&mut self, tuples: &mut Vec<Tuple>) -> Result<()> {
        match self {
            OutputPort::Stream(router) => {
                for t in tuples.drain(..) {
                    router.route(t)?;
                }
            }
            OutputPort::Client(sink) => {
                for t in tuples.drain(..) {
                    sink.push(t)?;
                }
            }
            OutputPort::Materialize { buffer, .. } | OutputPort::Sink { buffer, .. } => {
                buffer.append(tuples);
            }
        }
        Ok(())
    }

    /// Non-blocking columnar emit of rows `*pos..` of `out` (worker-pool
    /// path). Returns the number of rows emitted and whether the backlog
    /// fully drained; on a full drain `out` is cleared (keeping its column
    /// layout and capacity) and `pos` reset so the operator can refill it.
    /// `Ok((_, false))` means stream backpressure — the caller should
    /// yield and call again with the same arguments.
    pub fn try_emit(&mut self, out: &mut ColumnBatch, pos: &mut usize) -> Result<(u64, bool)> {
        let (emitted, done) = match self {
            OutputPort::Stream(router) => router.try_route_batch(out, pos)?,
            OutputPort::Client(sink) => sink.try_append_batch(out, pos)?,
            OutputPort::Materialize { buffer, .. } | OutputPort::Sink { buffer, .. } => {
                let n = out.rows() - *pos;
                // Row materialization happens here — at the store/sink
                // boundary, not inside the operators.
                out.rows_into(*pos..out.rows(), buffer)?;
                (n as u64, true)
            }
        };
        if done {
            out.clear();
            *pos = 0;
        }
        Ok((emitted, done))
    }

    /// Non-blocking finalize (worker-pool path): resumable stream
    /// flush + `End` for routers; store write / sink merge (which never
    /// block) for the others. `Ok(false)` means backpressure — yield and
    /// call again. Must be called until it returns `Ok(true)`, exactly
    /// once past that point.
    pub fn try_finish(&mut self) -> Result<bool> {
        match self {
            OutputPort::Stream(router) => router.try_finish(),
            OutputPort::Client(sink) => sink.try_finish(),
            OutputPort::Materialize {
                store,
                proc,
                name,
                schema,
                buffer,
                budget,
            } => {
                let fragment = Arc::new(Relation::new_unchecked(
                    schema.clone(),
                    std::mem::take(buffer),
                ));
                if let Some(budget) = budget {
                    // Charge unconditionally; enforcement happens at the
                    // consuming tasks' next budget poll. The coordinator
                    // credits these bytes back via `remove_prefix`.
                    budget.charge(fragment.est_bytes() as u64);
                }
                store.put(*proc, name.clone(), fragment)?;
                Ok(true)
            }
            OutputPort::Sink { collected, buffer } => {
                collected.lock().append(buffer);
                Ok(true)
            }
        }
    }

    /// Finalizes the port, blocking on stream backpressure: flush + End
    /// for streams, store write for materialization, sink merge for the
    /// root (dedicated-thread path).
    pub fn finish(self) -> Result<()> {
        match self {
            OutputPort::Stream(router) => router.finish(),
            OutputPort::Client(mut sink) => sink.finish_blocking(),
            mut other => {
                other.try_finish()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Msg};
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::int("k")]).shared()
    }

    #[test]
    fn sink_collects() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let mut port = OutputPort::Sink {
            collected: collected.clone(),
            buffer: Vec::new(),
        };
        port.emit(&mut vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])])
            .unwrap();
        port.finish().unwrap();
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn sink_materializes_columnar_emits() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let mut port = OutputPort::Sink {
            collected: collected.clone(),
            buffer: Vec::new(),
        };
        let mut out = ColumnBatch::shapeless();
        out.push_tuple(&Tuple::from_ints(&[5])).unwrap();
        out.push_tuple(&Tuple::from_ints(&[6])).unwrap();
        let mut pos = 0;
        let (n, done) = port.try_emit(&mut out, &mut pos).unwrap();
        assert_eq!((n, done, pos), (2, true, 0));
        assert!(out.is_empty(), "drained emit clears the batch");
        port.finish().unwrap();
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn materialize_stores_fragment() {
        let store = Arc::new(FragmentStore::new(2));
        let mut port = OutputPort::Materialize {
            store: store.clone(),
            proc: 1,
            name: "op0".into(),
            schema: schema(),
            buffer: Vec::new(),
            budget: None,
        };
        port.emit(&mut vec![Tuple::from_ints(&[7])]).unwrap();
        port.finish().unwrap();
        assert_eq!(store.get(1, "op0").unwrap().len(), 1);
        assert!(store.get(0, "op0").is_err());
    }

    #[test]
    fn materialize_charges_budget_for_stored_fragment() {
        let store = Arc::new(FragmentStore::new(1));
        let budget = crate::budget::MemoryBudget::unlimited();
        let mut port = OutputPort::Materialize {
            store: store.clone(),
            proc: 0,
            name: "q1:op0".into(),
            schema: schema(),
            buffer: Vec::new(),
            budget: Some(budget.clone()),
        };
        port.emit(&mut vec![Tuple::from_ints(&[7]), Tuple::from_ints(&[8])])
            .unwrap();
        port.finish().unwrap();
        let stored = store.get(0, "q1:op0").unwrap().est_bytes() as u64;
        assert_eq!(budget.used(), stored);
        let freed = store.remove_prefix("q1:") as u64;
        assert_eq!(freed, stored, "reclamation reports the bytes to credit");
    }

    #[test]
    fn stream_forwards_and_ends() {
        let (txs, rxs, pool) = operand_channels(1, 1, 8, ColumnLayout::ints(1));
        let mut port = OutputPort::Stream(Router::new(txs, 0, 2, pool));
        let mut out = ColumnBatch::shapeless();
        out.push_tuple(&Tuple::from_ints(&[1])).unwrap();
        out.push_tuple(&Tuple::from_ints(&[2])).unwrap();
        let mut pos = 0;
        let (n, done) = port.try_emit(&mut out, &mut pos).unwrap();
        assert_eq!((n, done), (2, true));
        while !port.try_finish().unwrap() {}
        let mut tuples = 0;
        let mut ends = 0;
        while let Ok(msg) = rxs[0].recv() {
            match msg {
                Msg::Batch(b) => tuples += b.len(),
                Msg::End => {
                    ends += 1;
                    break;
                }
            }
        }
        assert_eq!((tuples, ends), (2, 1));
    }
}
