//! Where an instance's results go.

use std::sync::Arc;

use mj_core::plan_ir::ProcId;
use mj_relalg::{Relation, Result, Schema, Tuple};
use mj_storage::FragmentStore;
use parking_lot::Mutex;

use crate::stream::{ClientSink, Router};

/// The output port of one operation-process instance.
pub enum OutputPort {
    /// Live redistribution to the consumer's instances.
    Stream(Router),
    /// Store the output fragment in this processor's memory (the consumer
    /// reads it later — SP/SE materialization and RD inter-wave edges).
    Materialize {
        /// Shared node-memory store.
        store: Arc<FragmentStore>,
        /// This instance's processor (storage node).
        proc: ProcId,
        /// Fragment name (`op{id}`).
        name: String,
        /// Output schema.
        schema: Arc<Schema>,
        /// Accumulated tuples.
        buffer: Vec<Tuple>,
        /// The owning query's memory budget: the stored fragment's bytes
        /// are charged on write and credited back when the coordinator
        /// reclaims the query's namespace.
        budget: Option<Arc<crate::budget::MemoryBudget>>,
    },
    /// The root of a submitted query: batches stream to the client's
    /// [`ResultStream`](crate::handle::ResultStream) through a bounded
    /// channel, so results flow before the query completes and a slow
    /// client backpressures the pool.
    Client(ClientSink),
    /// A buffered collection sink (the dedicated-thread `run_*_instance`
    /// drivers used by unit tests and benches).
    Sink {
        /// Shared collection buffer.
        collected: Arc<Mutex<Vec<Tuple>>>,
        /// Local accumulation to amortize locking.
        buffer: Vec<Tuple>,
    },
}

impl OutputPort {
    /// Emits a batch of result tuples, blocking on stream backpressure
    /// (dedicated-thread path).
    pub fn emit(&mut self, tuples: &mut Vec<Tuple>) -> Result<()> {
        match self {
            OutputPort::Stream(router) => {
                for t in tuples.drain(..) {
                    router.route(t)?;
                }
            }
            OutputPort::Client(sink) => {
                for t in tuples.drain(..) {
                    sink.push(t)?;
                }
            }
            OutputPort::Materialize { buffer, .. } | OutputPort::Sink { buffer, .. } => {
                buffer.append(tuples);
            }
        }
        Ok(())
    }

    /// Non-blocking emit of `out[*pos..]` (worker-pool path). Returns the
    /// number of tuples emitted and whether the backlog fully drained; on
    /// a full drain `out` is cleared and `pos` reset so the buffer can be
    /// refilled. `Ok((_, false))` means stream backpressure — the caller
    /// should yield and call again with the same arguments.
    pub fn try_emit(&mut self, out: &mut Vec<Tuple>, pos: &mut usize) -> Result<(u64, bool)> {
        let mut emitted = 0u64;
        match self {
            OutputPort::Stream(router) => {
                while *pos < out.len() {
                    // Take the tuple out of its slot (an empty inline
                    // tuple costs nothing); hand it back on rejection.
                    let t = std::mem::replace(&mut out[*pos], Tuple::from_ints(&[]));
                    match router.try_route(t)? {
                        None => {
                            *pos += 1;
                            emitted += 1;
                        }
                        Some(t) => {
                            out[*pos] = t;
                            return Ok((emitted, false));
                        }
                    }
                }
            }
            OutputPort::Client(sink) => {
                while *pos < out.len() {
                    let t = std::mem::replace(&mut out[*pos], Tuple::from_ints(&[]));
                    match sink.try_push(t)? {
                        None => {
                            *pos += 1;
                            emitted += 1;
                        }
                        Some(t) => {
                            out[*pos] = t;
                            return Ok((emitted, false));
                        }
                    }
                }
            }
            OutputPort::Materialize { buffer, .. } | OutputPort::Sink { buffer, .. } => {
                emitted = (out.len() - *pos) as u64;
                buffer.extend(out.drain(*pos..));
            }
        }
        out.clear();
        *pos = 0;
        Ok((emitted, true))
    }

    /// Non-blocking finalize (worker-pool path): resumable stream
    /// flush + `End` for routers; store write / sink merge (which never
    /// block) for the others. `Ok(false)` means backpressure — yield and
    /// call again. Must be called until it returns `Ok(true)`, exactly
    /// once past that point.
    pub fn try_finish(&mut self) -> Result<bool> {
        match self {
            OutputPort::Stream(router) => router.try_finish(),
            OutputPort::Client(sink) => sink.try_finish(),
            OutputPort::Materialize {
                store,
                proc,
                name,
                schema,
                buffer,
                budget,
            } => {
                let fragment = Arc::new(Relation::new_unchecked(
                    schema.clone(),
                    std::mem::take(buffer),
                ));
                if let Some(budget) = budget {
                    // Charge unconditionally; enforcement happens at the
                    // consuming tasks' next budget poll. The coordinator
                    // credits these bytes back via `remove_prefix`.
                    budget.charge(fragment.est_bytes() as u64);
                }
                store.put(*proc, name.clone(), fragment)?;
                Ok(true)
            }
            OutputPort::Sink { collected, buffer } => {
                collected.lock().append(buffer);
                Ok(true)
            }
        }
    }

    /// Finalizes the port, blocking on stream backpressure: flush + End
    /// for streams, store write for materialization, sink merge for the
    /// root (dedicated-thread path).
    pub fn finish(self) -> Result<()> {
        match self {
            OutputPort::Stream(router) => router.finish(),
            OutputPort::Client(mut sink) => sink.finish_blocking(),
            mut other => {
                other.try_finish()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Msg};
    use mj_relalg::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::int("k")]).shared()
    }

    #[test]
    fn sink_collects() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let mut port = OutputPort::Sink {
            collected: collected.clone(),
            buffer: Vec::new(),
        };
        port.emit(&mut vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])])
            .unwrap();
        port.finish().unwrap();
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn materialize_stores_fragment() {
        let store = Arc::new(FragmentStore::new(2));
        let mut port = OutputPort::Materialize {
            store: store.clone(),
            proc: 1,
            name: "op0".into(),
            schema: schema(),
            buffer: Vec::new(),
            budget: None,
        };
        port.emit(&mut vec![Tuple::from_ints(&[7])]).unwrap();
        port.finish().unwrap();
        assert_eq!(store.get(1, "op0").unwrap().len(), 1);
        assert!(store.get(0, "op0").is_err());
    }

    #[test]
    fn materialize_charges_budget_for_stored_fragment() {
        let store = Arc::new(FragmentStore::new(1));
        let budget = crate::budget::MemoryBudget::unlimited();
        let mut port = OutputPort::Materialize {
            store: store.clone(),
            proc: 0,
            name: "q1:op0".into(),
            schema: schema(),
            buffer: Vec::new(),
            budget: Some(budget.clone()),
        };
        port.emit(&mut vec![Tuple::from_ints(&[7]), Tuple::from_ints(&[8])])
            .unwrap();
        port.finish().unwrap();
        let stored = store.get(0, "q1:op0").unwrap().est_bytes() as u64;
        assert_eq!(budget.used(), stored);
        let freed = store.remove_prefix("q1:") as u64;
        assert_eq!(freed, stored, "reclamation reports the bytes to credit");
    }

    #[test]
    fn stream_forwards_and_ends() {
        let (txs, rxs, pool) = operand_channels(1, 1, 8);
        let mut port = OutputPort::Stream(Router::new(txs, 0, 2, pool));
        port.emit(&mut vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])])
            .unwrap();
        port.finish().unwrap();
        let mut tuples = 0;
        let mut ends = 0;
        while let Ok(msg) = rxs[0].recv() {
            match msg {
                Msg::Batch(b) => tuples += b.len(),
                Msg::End => {
                    ends += 1;
                    break;
                }
            }
        }
        assert_eq!((tuples, ends), (2, 1));
    }
}
