//! The physical-operator abstraction: what an operation process *computes*,
//! separated from how it is scheduled.
//!
//! Since the columnar refactor the interface is batch-oriented: the driver
//! ([`OpTask`](crate::operator::task::OpTask)) hands each operator row
//! *ranges* of columnar chunks ([`ColumnBatch`]) and the operator appends
//! its results column-wise to a shared output batch. There is no per-tuple
//! entry point — vectorized kernels (selection vectors, bulk hash-table
//! inserts, gather-based output assembly) are the only path, and rows are
//! materialized only at the client boundary.
//!
//! Both hash-join algorithms are expressed here over the columnar join
//! table ([`ColumnarTable`]): `SimpleJoinOp` is the classical two-phase
//! build–probe join (\[ScD89\]), `PipeliningJoinOp` the symmetric
//! one-phase join of \[WiA91\] that tables *both* operands and emits
//! matches as early as possible. `filter`, `aggregate`, and `limit` (the
//! first operator that *stops* a running pipeline early) live in their
//! sibling modules.

use std::fmt;
use std::ops::Range;

use mj_join::ColumnarTable;
use mj_relalg::column::ColumnBatch;
use mj_relalg::{EquiJoin, JoinAlgorithm, RelalgError, Result};

/// What kind of operator an instance runs — for metrics and explain
/// output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A hash equi-join.
    Join(JoinAlgorithm),
    /// A selection (predicate over the stream).
    Filter,
    /// Hash GROUP BY aggregation.
    Aggregate,
    /// Row-count limit with early termination.
    Limit,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Join(a) => write!(f, "join[{a}]"),
            OpKind::Filter => write!(f, "filter"),
            OpKind::Aggregate => write!(f, "aggregate"),
            OpKind::Limit => write!(f, "limit"),
        }
    }
}

/// How the driver should feed an operator's input sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputMode {
    /// Drain side `build` completely (via [`PhysicalOp::build_batch`],
    /// producing no output) before feeding the remaining side — the simple
    /// hash join's two-phase discipline. The build side must be immediate.
    BuildThenProbe {
        /// Which side (0 or 1) is the build input.
        build: usize,
    },
    /// Feed whichever side has rows available, alternating for fairness —
    /// pipelining joins and every single-input operator.
    Interleaved,
}

/// The operator's verdict after absorbing a batch of rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Absorb {
    /// Keep feeding.
    Continue,
    /// The operator's output is already complete (a satisfied LIMIT): the
    /// driver stops feeding, finishes the output port, and raises the
    /// query's early-stop token so upstream operators wind down.
    Satisfied,
}

/// One physical operator: the pure vectorized computation an
/// operation-process instance performs, driven by the scheduling skeleton
/// in [`task`](crate::operator::task).
///
/// Contract:
/// * [`absorb_batch`](Self::absorb_batch) is called with consecutive,
///   non-overlapping row ranges of each input chunk (per side for
///   two-input operators) and may append any number of result rows to
///   `out`; the driver flushes `out` through the output port between
///   quanta.
/// * For [`InputMode::BuildThenProbe`], [`build_batch`](Self::build_batch)
///   receives every build-side row first, then
///   [`finish_build`](Self::finish_build) is called exactly once before
///   the first `absorb_batch`.
/// * [`finish`](Self::finish) is called exactly once after every input is
///   exhausted (or the operator reported [`Absorb::Satisfied`]); operators
///   with held state (aggregation) emit it there.
pub trait PhysicalOp: Send {
    /// What kind of operator this is (metrics, explain).
    fn kind(&self) -> OpKind;

    /// How the driver should feed the inputs.
    fn input_mode(&self) -> InputMode {
        InputMode::Interleaved
    }

    /// Absorbs build-side rows `range` of `cols`
    /// ([`InputMode::BuildThenProbe`] only).
    fn build_batch(&mut self, cols: &ColumnBatch, range: Range<usize>) -> Result<()> {
        let _ = (cols, range);
        Err(RelalgError::InvalidPlan(format!(
            "operator {} has no build phase",
            self.kind()
        )))
    }

    /// The build side is exhausted ([`InputMode::BuildThenProbe`] only).
    fn finish_build(&mut self) {}

    /// Absorbs rows `range` of `cols` arriving on input `side`, appending
    /// result rows to `out` column-wise.
    fn absorb_batch(
        &mut self,
        side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb>;

    /// Every input is exhausted: emit any held state into `out`.
    fn finish(&mut self, out: &mut ColumnBatch) -> Result<()> {
        let _ = out;
        Ok(())
    }

    /// Estimated bytes of operator-held state (hash tables), for the
    /// memory metrics.
    fn est_bytes(&self) -> usize {
        0
    }
}

/// The simple (two-phase build–probe) hash join as a [`PhysicalOp`]
/// (§2.3.2): side 0 builds, side 1 probes. Build batches are bulk-inserted
/// into a [`ColumnarTable`]; each probe batch hashes its whole key column,
/// collects `(build_row, probe_row)` match pairs, and assembles the output
/// with one column-wise gather.
pub struct SimpleJoinOp {
    spec: EquiJoin,
    table: ColumnarTable,
    /// Match-pair scratch, reused across probe batches.
    pairs: Vec<(u32, u32)>,
}

impl SimpleJoinOp {
    /// Creates the operator for one join spec.
    pub fn new(spec: EquiJoin) -> Self {
        SimpleJoinOp {
            spec,
            table: ColumnarTable::new(),
            pairs: Vec::new(),
        }
    }

    /// Build rows tabled so far (tests).
    pub fn build_len(&self) -> usize {
        self.table.len()
    }
}

impl PhysicalOp for SimpleJoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join(JoinAlgorithm::Simple)
    }

    fn input_mode(&self) -> InputMode {
        InputMode::BuildThenProbe { build: 0 }
    }

    fn build_batch(&mut self, cols: &ColumnBatch, range: Range<usize>) -> Result<()> {
        self.table.insert_batch(cols, self.spec.left_key, range)
    }

    fn absorb_batch(
        &mut self,
        side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb> {
        debug_assert_eq!(side, 1, "simple join absorbs only its probe side");
        let keys = cols.int_col(self.spec.right_key)?;
        self.pairs.clear();
        self.table.probe_into(keys, range, &mut self.pairs);
        self.table
            .emit_matches(cols, self.spec.projection.cols(), &self.pairs, true, out)?;
        Ok(Absorb::Continue)
    }

    fn est_bytes(&self) -> usize {
        self.table.est_bytes()
    }
}

/// The symmetric pipelining hash join as a [`PhysicalOp`] (\[WiA91\]):
/// either side may arrive first; both sides build and both probe. Each
/// arriving batch first probes the *other* operand's partial table
/// (emitting matches) and is then bulk-inserted into its own.
pub struct PipeliningJoinOp {
    spec: EquiJoin,
    left: ColumnarTable,
    right: ColumnarTable,
    /// Match-pair scratch, reused across batches.
    pairs: Vec<(u32, u32)>,
}

impl PipeliningJoinOp {
    /// Creates the operator for one join spec.
    pub fn new(spec: EquiJoin) -> Self {
        PipeliningJoinOp {
            spec,
            left: ColumnarTable::new(),
            right: ColumnarTable::new(),
            pairs: Vec::new(),
        }
    }

    /// Rows tabled so far on (left, right) (tests).
    pub fn table_lens(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }
}

impl PhysicalOp for PipeliningJoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join(JoinAlgorithm::Pipelining)
    }

    fn absorb_batch(
        &mut self,
        side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb> {
        let proj = self.spec.projection.cols();
        self.pairs.clear();
        if side == 0 {
            // Probe the right table with our keys. `probe_into` yields
            // (tabled_row, arriving_row); the arriving rows are the *left*
            // source of the concatenation, so swap each pair.
            let keys = cols.int_col(self.spec.left_key)?;
            self.right.probe_into(keys, range.clone(), &mut self.pairs);
            for p in &mut self.pairs {
                *p = (p.1, p.0);
            }
            self.right
                .emit_matches(cols, proj, &self.pairs, false, out)?;
            self.left.insert_batch(cols, self.spec.left_key, range)?;
        } else {
            let keys = cols.int_col(self.spec.right_key)?;
            self.left.probe_into(keys, range.clone(), &mut self.pairs);
            self.left.emit_matches(cols, proj, &self.pairs, true, out)?;
            self.right.insert_batch(cols, self.spec.right_key, range)?;
        }
        Ok(Absorb::Continue)
    }

    fn est_bytes(&self) -> usize {
        self.left.est_bytes() + self.right.est_bytes()
    }
}

/// Builds the join operator for `algorithm` over `spec` — the single
/// construction point the engine and the blocking drivers share.
pub fn join_op(algorithm: JoinAlgorithm, spec: EquiJoin) -> Box<dyn PhysicalOp> {
    match algorithm {
        JoinAlgorithm::Simple => Box::new(SimpleJoinOp::new(spec)),
        JoinAlgorithm::Pipelining => Box::new(PipeliningJoinOp::new(spec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::{Projection, Tuple};

    fn batch(rows: &[[i64; 2]]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(2), rows.len());
        for r in rows {
            b.push_tuple(&Tuple::from_ints(r)).unwrap();
        }
        b
    }

    fn spec() -> EquiJoin {
        // R(a, k) ⋈ S(k, b) on R.k = S.k, keeping [a, k, b].
        EquiJoin::new(1, 0, Projection::new(vec![0, 1, 3]))
    }

    fn sorted_rows(out: &ColumnBatch) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = (0..out.rows()).map(|r| out.row(r).unwrap()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn simple_join_builds_then_probes() {
        let mut op = SimpleJoinOp::new(spec());
        assert_eq!(op.input_mode(), InputMode::BuildThenProbe { build: 0 });
        let build = batch(&[[10, 1], [20, 2], [11, 1]]);
        op.build_batch(&build, 0..build.rows()).unwrap();
        op.finish_build();
        assert_eq!(op.build_len(), 3);
        assert!(op.est_bytes() > 0);

        let probe = batch(&[[1, 100], [3, 300], [2, 200]]);
        let mut out = ColumnBatch::shapeless();
        assert_eq!(
            op.absorb_batch(1, &probe, 0..probe.rows(), &mut out)
                .unwrap(),
            Absorb::Continue
        );
        assert_eq!(
            sorted_rows(&out),
            vec![
                Tuple::from_ints(&[10, 1, 100]),
                Tuple::from_ints(&[11, 1, 100]),
                Tuple::from_ints(&[20, 2, 200]),
            ]
        );
        assert_eq!(op.kind().to_string(), "join[simple]");
    }

    #[test]
    fn pipelining_join_emits_early_from_both_sides() {
        let mut op = PipeliningJoinOp::new(spec());
        assert_eq!(op.input_mode(), InputMode::Interleaved);
        let mut out = ColumnBatch::shapeless();

        let l1 = batch(&[[10, 1], [20, 2]]);
        op.absorb_batch(0, &l1, 0..2, &mut out).unwrap();
        assert_eq!(out.rows(), 0, "no right rows tabled yet");

        let r1 = batch(&[[1, 100]]);
        op.absorb_batch(1, &r1, 0..1, &mut out).unwrap();
        assert_eq!(sorted_rows(&out), vec![Tuple::from_ints(&[10, 1, 100])]);

        // A later left arrival matches the already-tabled right row.
        let l2 = batch(&[[11, 1]]);
        op.absorb_batch(0, &l2, 0..1, &mut out).unwrap();
        assert_eq!(op.table_lens(), (3, 1));
        assert_eq!(
            sorted_rows(&out),
            vec![
                Tuple::from_ints(&[10, 1, 100]),
                Tuple::from_ints(&[11, 1, 100])
            ]
        );
        assert!(op.est_bytes() > 0);
    }

    #[test]
    fn pipelining_matches_simple_on_same_input() {
        let left = batch(&[[1, 5], [2, 5], [3, 7], [4, 9]]);
        let right = batch(&[[5, 50], [7, 70], [5, 51]]);

        let mut simple = SimpleJoinOp::new(spec());
        simple.build_batch(&left, 0..left.rows()).unwrap();
        simple.finish_build();
        let mut s_out = ColumnBatch::shapeless();
        simple
            .absorb_batch(1, &right, 0..right.rows(), &mut s_out)
            .unwrap();

        let mut pipe = PipeliningJoinOp::new(spec());
        let mut p_out = ColumnBatch::shapeless();
        pipe.absorb_batch(0, &left, 0..left.rows(), &mut p_out)
            .unwrap();
        pipe.absorb_batch(1, &right, 0..right.rows(), &mut p_out)
            .unwrap();

        assert_eq!(sorted_rows(&s_out), sorted_rows(&p_out));
        // Keys 5×(5,5) and 7×7 match: 2·2 + 1 = 5 result rows.
        assert_eq!(s_out.rows(), 5);
    }

    #[test]
    fn factory_picks_algorithm() {
        let op = join_op(JoinAlgorithm::Simple, spec());
        assert_eq!(op.kind(), OpKind::Join(JoinAlgorithm::Simple));
        let mut op = join_op(JoinAlgorithm::Pipelining, spec());
        assert_eq!(op.kind(), OpKind::Join(JoinAlgorithm::Pipelining));
        // Interleaved operators reject the build phase.
        assert!(op.build_batch(&ColumnBatch::shapeless(), 0..0).is_err());
    }
}
