//! The physical-operator abstraction: what an operation process *computes*,
//! separated from how it is scheduled.
//!
//! PR 2 restructured operator instances as cooperative tasks, but the task
//! was a *join* task — phases, ports, cancellation, and the hash-join
//! algorithms were one struct, so the engine could evaluate exactly one
//! thing: a tree of equi-joins. [`PhysicalOp`] extracts the computational
//! core: a push-based operator that absorbs tuples from its input sides and
//! appends results to an output buffer, with optional build and drain
//! phases. The generic driver ([`OpTask`](crate::operator::task::OpTask))
//! owns everything schedulable — resumable operand cursors, non-blocking
//! output, quantum pacing, cancel/early-stop tokens, exactly-once
//! completion — so a new operator is just this trait, not a new state
//! machine.
//!
//! Both hash-join algorithms are re-expressed here as `PhysicalOp`
//! implementations; `filter`, `aggregate`, and `limit` (the first operator
//! that *stops* a running pipeline early) live in their sibling modules.

use std::fmt;

use mj_join::{PipeliningJoinState, SimpleJoinState};
use mj_relalg::{EquiJoin, JoinAlgorithm, RelalgError, Result, Tuple};

/// What kind of operator an instance runs — for metrics and explain
/// output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A hash equi-join.
    Join(JoinAlgorithm),
    /// A selection (predicate over the stream).
    Filter,
    /// Hash GROUP BY aggregation.
    Aggregate,
    /// Row-count limit with early termination.
    Limit,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Join(a) => write!(f, "join[{a}]"),
            OpKind::Filter => write!(f, "filter"),
            OpKind::Aggregate => write!(f, "aggregate"),
            OpKind::Limit => write!(f, "limit"),
        }
    }
}

/// How the driver should feed an operator's input sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputMode {
    /// Drain side `build` completely (via [`PhysicalOp::build`], producing
    /// no output) before feeding the remaining side — the simple hash
    /// join's two-phase discipline. The build side must be immediate.
    BuildThenProbe {
        /// Which side (0 or 1) is the build input.
        build: usize,
    },
    /// Feed whichever side has tuples available, alternating for fairness
    /// — pipelining joins and every single-input operator.
    Interleaved,
}

/// The operator's verdict after absorbing one tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Absorb {
    /// Keep feeding.
    Continue,
    /// The operator's output is already complete (a satisfied LIMIT): the
    /// driver stops feeding, finishes the output port, and raises the
    /// query's early-stop token so upstream operators wind down.
    Satisfied,
}

/// One physical operator: the pure computation an operation-process
/// instance performs, driven by the scheduling skeleton in
/// [`task`](crate::operator::task).
///
/// Contract:
/// * [`absorb`](Self::absorb) is called once per input tuple (per side for
///   two-input operators) and may append any number of result tuples to
///   `out`; the driver flushes `out` through the output port between
///   quanta.
/// * For [`InputMode::BuildThenProbe`], [`build`](Self::build) receives
///   every build-side tuple first, then [`finish_build`](Self::finish_build)
///   is called exactly once before the first `absorb`.
/// * [`finish`](Self::finish) is called exactly once after every input is
///   exhausted (or the operator reported [`Absorb::Satisfied`]); operators
///   with held state (aggregation) emit it there.
pub trait PhysicalOp: Send {
    /// What kind of operator this is (metrics, explain).
    fn kind(&self) -> OpKind;

    /// How the driver should feed the inputs.
    fn input_mode(&self) -> InputMode {
        InputMode::Interleaved
    }

    /// Absorbs one build-side tuple ([`InputMode::BuildThenProbe`] only).
    fn build(&mut self, _tuple: Tuple) -> Result<()> {
        Err(RelalgError::InvalidPlan(format!(
            "operator {} has no build phase",
            self.kind()
        )))
    }

    /// The build side is exhausted ([`InputMode::BuildThenProbe`] only).
    fn finish_build(&mut self) {}

    /// Absorbs one tuple from input `side`, appending results to `out`.
    fn absorb(&mut self, side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb>;

    /// Every input is exhausted: emit any held state into `out`.
    fn finish(&mut self, _out: &mut Vec<Tuple>) -> Result<()> {
        Ok(())
    }

    /// Estimated bytes of operator-held state (hash tables), for the
    /// memory metrics.
    fn est_bytes(&self) -> usize {
        0
    }
}

/// The simple (two-phase build–probe) hash join as a [`PhysicalOp`]
/// (§2.3.2): side 0 builds, side 1 probes.
pub struct SimpleJoinOp {
    state: SimpleJoinState,
}

impl SimpleJoinOp {
    /// Creates the operator for one join spec.
    pub fn new(spec: EquiJoin) -> Self {
        SimpleJoinOp {
            state: SimpleJoinState::new(spec),
        }
    }
}

impl PhysicalOp for SimpleJoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join(JoinAlgorithm::Simple)
    }

    fn input_mode(&self) -> InputMode {
        InputMode::BuildThenProbe { build: 0 }
    }

    fn build(&mut self, tuple: Tuple) -> Result<()> {
        self.state.build(tuple)
    }

    fn finish_build(&mut self) {
        self.state.finish_build();
    }

    fn absorb(&mut self, side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb> {
        debug_assert_eq!(side, 1, "simple join absorbs only its probe side");
        self.state.probe(&tuple, out)?;
        Ok(Absorb::Continue)
    }

    fn est_bytes(&self) -> usize {
        self.state.est_bytes()
    }
}

/// The symmetric pipelining hash join as a [`PhysicalOp`] (\[WiA91\]):
/// either side may arrive first; both build and both probe.
pub struct PipeliningJoinOp {
    state: PipeliningJoinState,
}

impl PipeliningJoinOp {
    /// Creates the operator for one join spec.
    pub fn new(spec: EquiJoin) -> Self {
        PipeliningJoinOp {
            state: PipeliningJoinState::new(spec),
        }
    }
}

impl PhysicalOp for PipeliningJoinOp {
    fn kind(&self) -> OpKind {
        OpKind::Join(JoinAlgorithm::Pipelining)
    }

    fn absorb(&mut self, side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb> {
        if side == 0 {
            self.state.push_left(tuple, out)?;
        } else {
            self.state.push_right(tuple, out)?;
        }
        Ok(Absorb::Continue)
    }

    fn est_bytes(&self) -> usize {
        self.state.est_bytes()
    }
}

/// Builds the join operator for `algorithm` over `spec` — the single
/// construction point the engine and the blocking drivers share.
pub fn join_op(algorithm: JoinAlgorithm, spec: EquiJoin) -> Box<dyn PhysicalOp> {
    match algorithm {
        JoinAlgorithm::Simple => Box::new(SimpleJoinOp::new(spec)),
        JoinAlgorithm::Pipelining => Box::new(PipeliningJoinOp::new(spec)),
    }
}
