//! The LIMIT operator: early-out row capping — the first operator that
//! *stops* a running pipeline.
//!
//! Every other operator consumes its inputs to exhaustion; `LimitOp`
//! declares [`Absorb::Satisfied`] the moment its quota fills. The driver
//! then raises the query's early-stop token
//! ([`QueryCtrl::stop_early`](crate::handle::QueryCtrl::stop_early)):
//! every upstream task of the query observes the token on its next
//! scheduling step and winds down *successfully* — reporting its stats
//! exactly once through the normal completion protocol, so the engine
//! quiesces (fragments reclaimed, pool reusable) exactly as it does for a
//! completed query, not through the error path. `LimitOp` always runs at
//! degree 1: a partitioned limit would need a second coordination round to
//! agree on who emits how many rows.

use mj_relalg::{Result, Tuple};

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// Passes through at most `k` tuples, then stops the pipeline.
pub struct LimitOp {
    remaining: u64,
}

impl LimitOp {
    /// Creates the operator with a quota of `k` rows.
    pub fn new(k: u64) -> Self {
        LimitOp { remaining: k }
    }

    /// Rows still accepted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl PhysicalOp for LimitOp {
    fn kind(&self) -> OpKind {
        OpKind::Limit
    }

    fn absorb(&mut self, _side: usize, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<Absorb> {
        if self.remaining == 0 {
            // LIMIT 0, or a straggler after satisfaction: drop it.
            return Ok(Absorb::Satisfied);
        }
        out.push(tuple);
        self.remaining -= 1;
        Ok(if self.remaining == 0 {
            Absorb::Satisfied
        } else {
            Absorb::Continue
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_and_satisfies() {
        let mut op = LimitOp::new(2);
        let mut out = Vec::new();
        assert_eq!(
            op.absorb(0, Tuple::from_ints(&[1]), &mut out).unwrap(),
            Absorb::Continue
        );
        assert_eq!(
            op.absorb(0, Tuple::from_ints(&[2]), &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert_eq!(out.len(), 2);
        // Stragglers are dropped, not errors.
        assert_eq!(
            op.absorb(0, Tuple::from_ints(&[3]), &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert_eq!(out.len(), 2);
        assert_eq!(op.remaining(), 0);
    }

    #[test]
    fn limit_zero_is_satisfied_immediately() {
        let mut op = LimitOp::new(0);
        let mut out = Vec::new();
        assert_eq!(
            op.absorb(0, Tuple::from_ints(&[1]), &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert!(out.is_empty());
    }
}
