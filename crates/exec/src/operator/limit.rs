//! The LIMIT operator: early-out row capping — the first operator that
//! *stops* a running pipeline.
//!
//! Every other operator consumes its inputs to exhaustion; `LimitOp`
//! declares [`Absorb::Satisfied`] the moment its quota fills. The driver
//! then raises the query's early-stop token
//! ([`QueryCtrl::stop_early`](crate::handle::QueryCtrl::stop_early)):
//! every upstream task of the query observes the token on its next
//! scheduling step and winds down *successfully* — reporting its stats
//! exactly once through the normal completion protocol, so the engine
//! quiesces (fragments reclaimed, pool reusable) exactly as it does for a
//! completed query, not through the error path. `LimitOp` always runs at
//! degree 1: a partitioned limit would need a second coordination round to
//! agree on who emits how many rows. On the columnar path the cap is a
//! range truncation: the operator forwards a prefix of each arriving batch
//! with one column-wise append and never inspects individual rows.

use std::ops::Range;

use mj_relalg::column::ColumnBatch;
use mj_relalg::Result;

use crate::operator::op::{Absorb, OpKind, PhysicalOp};

/// Passes through at most `k` rows, then stops the pipeline.
pub struct LimitOp {
    remaining: u64,
}

impl LimitOp {
    /// Creates the operator with a quota of `k` rows.
    pub fn new(k: u64) -> Self {
        LimitOp { remaining: k }
    }

    /// Rows still accepted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl PhysicalOp for LimitOp {
    fn kind(&self) -> OpKind {
        OpKind::Limit
    }

    fn absorb_batch(
        &mut self,
        _side: usize,
        cols: &ColumnBatch,
        range: Range<usize>,
        out: &mut ColumnBatch,
    ) -> Result<Absorb> {
        if self.remaining == 0 {
            // LIMIT 0, or stragglers after satisfaction: drop them.
            return Ok(Absorb::Satisfied);
        }
        let take = (self.remaining.min(range.len() as u64)) as usize;
        out.append_rows(cols, range.start..range.start + take)?;
        self.remaining -= take as u64;
        Ok(if self.remaining == 0 {
            Absorb::Satisfied
        } else {
            Absorb::Continue
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::Tuple;

    fn batch(keys: &[i64]) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(&ColumnLayout::ints(1), keys.len());
        for &k in keys {
            b.push_tuple(&Tuple::from_ints(&[k])).unwrap();
        }
        b
    }

    #[test]
    fn caps_and_satisfies() {
        let mut op = LimitOp::new(2);
        let mut out = ColumnBatch::shapeless();
        let input = batch(&[1, 2, 3]);
        // The whole batch arrives at once: only the quota prefix passes.
        assert_eq!(
            op.absorb_batch(0, &input, 0..3, &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert_eq!(out.int_col(0).unwrap(), &[1, 2]);
        // Stragglers are dropped, not errors.
        assert_eq!(
            op.absorb_batch(0, &batch(&[4]), 0..1, &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert_eq!(out.rows(), 2);
        assert_eq!(op.remaining(), 0);
    }

    #[test]
    fn continues_until_quota_fills() {
        let mut op = LimitOp::new(5);
        let mut out = ColumnBatch::shapeless();
        assert_eq!(
            op.absorb_batch(0, &batch(&[1, 2]), 0..2, &mut out).unwrap(),
            Absorb::Continue
        );
        assert_eq!(op.remaining(), 3);
        assert_eq!(
            op.absorb_batch(0, &batch(&[3, 4, 5]), 0..3, &mut out)
                .unwrap(),
            Absorb::Satisfied
        );
        assert_eq!(out.rows(), 5);
    }

    #[test]
    fn limit_zero_is_satisfied_immediately() {
        let mut op = LimitOp::new(0);
        let mut out = ColumnBatch::shapeless();
        assert_eq!(
            op.absorb_batch(0, &batch(&[1]), 0..1, &mut out).unwrap(),
            Absorb::Satisfied
        );
        assert!(out.is_empty());
    }
}
