//! The pipelining hash-join operation process (\[WiA91\], §2.3.2): symmetric,
//! single-phase, producing output as early as possible so both operands can
//! be live pipelines.

use mj_relalg::{EquiJoin, Result};

use crate::metrics::InstanceStats;
use crate::operator::task::{drive_blocking, OpTask};
use crate::operator::OutputPort;
use crate::source::Source;

/// Runs one pipelining hash-join instance to completion on the current
/// thread (a blocking driver over the same [`OpTask`] state machine the
/// worker pool schedules).
///
/// The task's feed loop alternates sides whenever both have tuples
/// available — immediate operands interleave tuple-by-tuple (both-local
/// bottom joins exercise true symmetry), and live streams are drained from
/// whichever side is ready (two-sided pipelining).
pub fn run_pipelining_instance(
    spec: EquiJoin,
    left: Source,
    right: Source,
    output: OutputPort,
    batch_size: usize,
) -> Result<InstanceStats> {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let task = OpTask::join(
        mj_relalg::JoinAlgorithm::Pipelining,
        spec,
        left,
        right,
        output,
        batch_size,
        0,
        0,
        done_tx,
        None,
        false,
        None,
    );
    drive_blocking(task);
    done_rx.recv().expect("task reports exactly once").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Router};
    use mj_relalg::column::ColumnLayout;
    use mj_relalg::{Attribute, Projection, Relation, Schema, Tuple};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn rel(rows: &[[i64; 2]]) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Arc::new(Relation::new_unchecked(
            schema,
            rows.iter().map(|r| Tuple::from_ints(r)).collect(),
        ))
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![1, 3]))
    }

    #[test]
    fn both_local() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let stats = run_pipelining_instance(
            spec(),
            Source::Local(rel(&[[1, 10], [2, 20], [3, 30]])),
            Source::Local(rel(&[[2, 200], [3, 300], [4, 400]])),
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            2,
        )
        .unwrap();
        assert_eq!(stats.tuples_in, [3, 3]);
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn local_left_streamed_right() {
        let (txs, rxs, pool) = operand_channels(1, 1, 4, ColumnLayout::ints(2));
        let collected = Arc::new(Mutex::new(Vec::new()));
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 2, pool);
            for k in 0..10i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let stats = run_pipelining_instance(
            spec(),
            Source::Local(rel(&[[4, 40], [5, 50]])),
            Source::Stream {
                rx: rxs.into_iter().next().unwrap(),
                producers: 1,
            },
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            3,
        )
        .unwrap();
        producer.join().unwrap();
        assert_eq!(stats.tuples_in, [2, 10]);
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn two_streams_from_concurrent_producers() {
        let (ltxs, lrxs, lpool) = operand_channels(1, 1, 4, ColumnLayout::ints(2));
        let (rtxs, rrxs, rpool) = operand_channels(1, 1, 4, ColumnLayout::ints(2));
        let collected = Arc::new(Mutex::new(Vec::new()));
        let lp = std::thread::spawn(move || {
            let mut router = Router::new(ltxs, 0, 2, lpool);
            for k in 0..100i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let rp = std::thread::spawn(move || {
            let mut router = Router::new(rtxs, 0, 2, rpool);
            for k in 50..150i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let stats = run_pipelining_instance(
            spec(),
            Source::Stream {
                rx: lrxs.into_iter().next().unwrap(),
                producers: 1,
            },
            Source::Stream {
                rx: rrxs.into_iter().next().unwrap(),
                producers: 1,
            },
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            8,
        )
        .unwrap();
        lp.join().unwrap();
        rp.join().unwrap();
        assert_eq!(stats.tuples_in, [100, 100]);
        assert_eq!(collected.lock().len(), 50, "keys 50..100 overlap");
    }
}
