//! The pipelining hash-join operation process (\[WiA91\], §2.3.2): symmetric,
//! single-phase, producing output as early as possible so both operands can
//! be live pipelines.

use crossbeam::channel::Select;
use mj_join::PipeliningJoinState;
use mj_relalg::{EquiJoin, RelalgError, Result, Tuple};

use crate::metrics::InstanceStats;
use crate::operator::OutputPort;
use crate::source::Source;
use crate::stream::Msg;

/// Runs one pipelining hash-join instance to completion.
///
/// Immediate operands (base fragments; FP has no materialized edges, but
/// the code is general) are consumed first — they are available the moment
/// the process starts, exactly like PRISMA's local fragment access. Stream
/// operands are then consumed as tuples arrive, from whichever side is
/// ready (two-sided pipelining).
pub fn run_pipelining_instance(
    spec: EquiJoin,
    left: Source,
    right: Source,
    mut output: OutputPort,
    batch_size: usize,
) -> Result<InstanceStats> {
    let mut stats = InstanceStats::default();
    let mut state = PipeliningJoinState::new(spec);
    let mut out = Vec::with_capacity(batch_size);

    let push = |state: &mut PipeliningJoinState,
                side: usize,
                tuple: Tuple,
                out: &mut Vec<Tuple>,
                output: &mut OutputPort,
                stats: &mut InstanceStats|
     -> Result<()> {
        if side == 0 {
            state.push_left(tuple, out)?;
        } else {
            state.push_right(tuple, out)?;
        }
        stats.tuples_in[side] += 1;
        if out.len() >= batch_size {
            stats.tuples_out += out.len() as u64;
            output.emit(out)?;
        }
        Ok(())
    };

    // Interleave the immediate sides tuple-by-tuple (both-local bottom
    // joins exercise true symmetry); a lone immediate side drains first.
    let mut streams: Vec<(usize, &Source)> = Vec::new();
    match (&left, &right) {
        (l, r) if l.is_immediate() && r.is_immediate() => {
            let mut ltuples: Vec<Tuple> = Vec::new();
            l.for_each_immediate(|t| {
                ltuples.push(t);
                Ok(())
            })?;
            let mut rtuples: Vec<Tuple> = Vec::new();
            r.for_each_immediate(|t| {
                rtuples.push(t);
                Ok(())
            })?;
            let mut li = ltuples.into_iter();
            let mut ri = rtuples.into_iter();
            loop {
                let lt = li.next();
                let rt = ri.next();
                if lt.is_none() && rt.is_none() {
                    break;
                }
                if let Some(t) = lt {
                    push(&mut state, 0, t, &mut out, &mut output, &mut stats)?;
                }
                if let Some(t) = rt {
                    push(&mut state, 1, t, &mut out, &mut output, &mut stats)?;
                }
            }
        }
        (l, r) => {
            if l.is_immediate() {
                l.for_each_immediate(|t| {
                    push(&mut state, 0, t, &mut out, &mut output, &mut stats)
                })?;
            } else {
                streams.push((0, l));
            }
            if r.is_immediate() {
                r.for_each_immediate(|t| {
                    push(&mut state, 1, t, &mut out, &mut output, &mut stats)
                })?;
            } else {
                streams.push((1, r));
            }
        }
    }

    // Drain the stream sides, fairly when both are live.
    match streams.len() {
        0 => {}
        1 => {
            let (side, src) = &streams[0];
            let Source::Stream { rx, producers } = src else {
                unreachable!()
            };
            let mut remaining = *producers;
            while remaining > 0 {
                match rx.recv() {
                    Ok(Msg::Batch(mut batch)) => {
                        for t in batch.drain() {
                            push(&mut state, *side, t, &mut out, &mut output, &mut stats)?;
                        }
                    }
                    Ok(Msg::End) => remaining -= 1,
                    Err(_) => {
                        return Err(RelalgError::InvalidPlan("stream closed before End".into()))
                    }
                }
            }
        }
        2 => {
            let sides: Vec<usize> = streams.iter().map(|(s, _)| *s).collect();
            let rxs: Vec<_> = streams
                .iter()
                .map(|(_, src)| match src {
                    Source::Stream { rx, producers } => (rx, *producers),
                    _ => unreachable!(),
                })
                .collect();
            let mut remaining = [rxs[0].1, rxs[1].1];
            while remaining[0] > 0 || remaining[1] > 0 {
                let mut sel = Select::new();
                let mut live = Vec::new();
                for (i, (rx, _)) in rxs.iter().enumerate() {
                    if remaining[i] > 0 {
                        sel.recv(rx);
                        live.push(i);
                    }
                }
                let op = sel.select();
                let i = live[op.index()];
                match op.recv(rxs[i].0) {
                    Ok(Msg::Batch(mut batch)) => {
                        for t in batch.drain() {
                            push(&mut state, sides[i], t, &mut out, &mut output, &mut stats)?;
                        }
                    }
                    Ok(Msg::End) => remaining[i] -= 1,
                    Err(_) => {
                        return Err(RelalgError::InvalidPlan("stream closed before End".into()))
                    }
                }
            }
        }
        _ => unreachable!("a binary join has at most two stream operands"),
    }

    stats.tuples_out += out.len() as u64;
    output.emit(&mut out)?;
    stats.table_bytes = state.est_bytes() as u64;
    output.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{operand_channels, Router};
    use mj_relalg::{Attribute, Projection, Relation, Schema};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn rel(rows: &[[i64; 2]]) -> Arc<Relation> {
        let schema = Schema::new(vec![Attribute::int("k"), Attribute::int("v")]).shared();
        Arc::new(Relation::new_unchecked(
            schema,
            rows.iter().map(|r| Tuple::from_ints(r)).collect(),
        ))
    }

    fn spec() -> EquiJoin {
        EquiJoin::new(0, 0, Projection::new(vec![1, 3]))
    }

    #[test]
    fn both_local() {
        let collected = Arc::new(Mutex::new(Vec::new()));
        let stats = run_pipelining_instance(
            spec(),
            Source::Local(rel(&[[1, 10], [2, 20], [3, 30]])),
            Source::Local(rel(&[[2, 200], [3, 300], [4, 400]])),
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            2,
        )
        .unwrap();
        assert_eq!(stats.tuples_in, [3, 3]);
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn local_left_streamed_right() {
        let (txs, rxs, pool) = operand_channels(1, 4);
        let collected = Arc::new(Mutex::new(Vec::new()));
        let producer = std::thread::spawn(move || {
            let mut router = Router::new(txs, 0, 2, pool);
            for k in 0..10i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let stats = run_pipelining_instance(
            spec(),
            Source::Local(rel(&[[4, 40], [5, 50]])),
            Source::Stream {
                rx: rxs.into_iter().next().unwrap(),
                producers: 1,
            },
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            3,
        )
        .unwrap();
        producer.join().unwrap();
        assert_eq!(stats.tuples_in, [2, 10]);
        assert_eq!(collected.lock().len(), 2);
    }

    #[test]
    fn two_streams_from_concurrent_producers() {
        let (ltxs, lrxs, lpool) = operand_channels(1, 4);
        let (rtxs, rrxs, rpool) = operand_channels(1, 4);
        let collected = Arc::new(Mutex::new(Vec::new()));
        let lp = std::thread::spawn(move || {
            let mut router = Router::new(ltxs, 0, 2, lpool);
            for k in 0..100i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let rp = std::thread::spawn(move || {
            let mut router = Router::new(rtxs, 0, 2, rpool);
            for k in 50..150i64 {
                router.route(Tuple::from_ints(&[k, k])).unwrap();
            }
            router.finish().unwrap();
        });
        let stats = run_pipelining_instance(
            spec(),
            Source::Stream {
                rx: lrxs.into_iter().next().unwrap(),
                producers: 1,
            },
            Source::Stream {
                rx: rrxs.into_iter().next().unwrap(),
                producers: 1,
            },
            OutputPort::Sink {
                collected: collected.clone(),
                buffer: Vec::new(),
            },
            8,
        )
        .unwrap();
        lp.join().unwrap();
        rp.join().unwrap();
        assert_eq!(stats.tuples_in, [100, 100]);
        assert_eq!(collected.lock().len(), 50, "keys 50..100 overlap");
    }
}
