//! The generic operation-process driver: one cooperative task that runs
//! any [`PhysicalOp`] on the shared worker pool.
//!
//! The seed's operator loops were straight-line blocking code — fine when
//! every instance owned an OS thread, fatal on a fixed pool (a blocked
//! `recv` would park a worker and a handful of stalled instances could
//! deadlock the whole process). PR 2 restructured an instance as an
//! explicit state machine, but that machine *was* the join: algorithms and
//! scheduling were fused. [`OpTask`] is the scheduling skeleton alone —
//! resumable operand cursors, non-blocking output flushing, quantum
//! pacing, startup/fault injection, cancel and early-stop tokens,
//! exactly-once completion reporting — parameterized by the operator it
//! drives. Every channel interaction uses the non-blocking `try_*` forms,
//! and instead of waiting the task returns [`Step::Blocked`], yielding its
//! worker to some other instance — of this query or any other.
//!
//! Completion (stats or error) is reported exactly once on the query's
//! done channel, including when the task is dropped mid-flight (pool
//! shutdown, panic): the `Drop` impl reports non-completion so the query
//! coordinator can never hang waiting for a vanished instance.
//!
//! Two tokens shape teardown. *Cancellation* (client-raised) makes every
//! task report [`RelalgError::Canceled`]. *Early stop* (raised by a
//! satisfied [`LimitOp`](crate::operator::limit::LimitOp) through
//! [`QueryCtrl::stop_early`]) makes every *other* task of the query wind
//! down successfully — the pipeline stops because the answer is complete,
//! not because anything failed — while the satisfying task itself finishes
//! its output port normally so the client still receives the final batch
//! and `End`.

use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, TryRecvError};
use mj_relalg::column::ColumnBatch;
use mj_relalg::{EquiJoin, JoinAlgorithm, RelalgError, Relation, Result};
use mj_storage::scan_bucket_columns;

use crate::handle::QueryCtrl;
use crate::metrics::InstanceStats;
use crate::operator::op::{join_op, Absorb, InputMode, PhysicalOp};
use crate::operator::OutputPort;
use crate::sched::{Step, Task};
use crate::source::Source;
use crate::stream::{Batch, Msg};

/// Rows processed per scheduling step: long enough to amortize queue
/// round-trips, short enough that concurrent queries interleave finely.
const QUANTUM: usize = 512;

/// What a completed (or failed) instance sends to its query coordinator.
pub type DoneMsg = (usize, Result<InstanceStats>);

/// A resumable operand: the task-side view of a [`Source`], holding the
/// current columnar chunk plus an explicit row cursor so a blocked
/// instance picks up exactly where it stopped.
///
/// `Local` and `Filtered` operands convert their fragments to columns
/// *lazily on the worker thread* — one [`ColumnBatch`] per fragment, built
/// the first time the chunk is needed — so conversion cost lands on the
/// instance that consumes the data, not on query setup.
enum Operand {
    /// A processor-local fragment, scanned into columns on first touch.
    Local {
        rel: std::sync::Arc<Relation>,
        cols: Option<ColumnBatch>,
        pos: usize,
        done: bool,
    },
    /// Materialized producer fragments filtered to this instance's bucket:
    /// each fragment is bucket-scanned ([`scan_bucket_columns`]) into one
    /// columnar chunk holding exactly the surviving rows.
    Filtered {
        fragments: Vec<std::sync::Arc<Relation>>,
        key_col: usize,
        bucket: usize,
        of: usize,
        frag: usize,
        cols: Option<ColumnBatch>,
        pos: usize,
    },
    /// A live stream; `current` is a partially consumed in-flight batch.
    Stream {
        rx: Receiver<Msg>,
        remaining: usize,
        current: Option<Batch>,
        pos: usize,
    },
}

/// The state of an operand after [`Operand::ready`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Feed {
    /// A chunk with unconsumed rows is loaded ([`Operand::chunk`] is
    /// valid).
    Ready,
    /// A stream operand has nothing queued right now; yield and retry.
    Pending,
    /// The operand is fully consumed.
    Exhausted,
}

impl Operand {
    fn new(source: Source) -> Operand {
        match source {
            Source::Local(rel) => Operand::Local {
                rel,
                cols: None,
                pos: 0,
                done: false,
            },
            Source::Filtered {
                fragments,
                key_col,
                bucket,
                of,
            } => Operand::Filtered {
                fragments,
                key_col,
                bucket,
                of,
                frag: 0,
                cols: None,
                pos: 0,
            },
            Source::Stream { rx, producers } => Operand::Stream {
                rx,
                remaining: producers,
                current: None,
                pos: 0,
            },
        }
    }

    fn is_stream(&self) -> bool {
        matches!(self, Operand::Stream { .. })
    }

    /// Ensures a chunk with unconsumed rows is loaded, without ever
    /// blocking. Spent chunks are released here (stream buffers return to
    /// their pool; scanned fragments free their columns).
    fn ready(&mut self) -> Result<Feed> {
        match self {
            Operand::Local {
                rel,
                cols,
                pos,
                done,
            } => {
                if *done {
                    return Ok(Feed::Exhausted);
                }
                if cols.is_none() {
                    *cols = Some(ColumnBatch::from_relation(rel)?);
                }
                if *pos >= cols.as_ref().map_or(0, ColumnBatch::rows) {
                    *cols = None;
                    *done = true;
                    return Ok(Feed::Exhausted);
                }
                Ok(Feed::Ready)
            }
            Operand::Filtered {
                fragments,
                key_col,
                bucket,
                of,
                frag,
                cols,
                pos,
            } => loop {
                if let Some(c) = cols {
                    if *pos < c.rows() {
                        return Ok(Feed::Ready);
                    }
                    *cols = None;
                    *pos = 0;
                }
                if *frag >= fragments.len() {
                    return Ok(Feed::Exhausted);
                }
                *cols = Some(scan_bucket_columns(
                    &fragments[*frag],
                    *key_col,
                    *bucket,
                    *of,
                )?);
                *frag += 1;
            },
            Operand::Stream {
                rx,
                remaining,
                current,
                pos,
            } => loop {
                if let Some(batch) = current {
                    if *pos < batch.len() {
                        return Ok(Feed::Ready);
                    }
                    // Dropping the batch returns its buffers to the pool.
                    *current = None;
                    *pos = 0;
                }
                if *remaining == 0 {
                    return Ok(Feed::Exhausted);
                }
                match rx.try_recv() {
                    Ok(Msg::Batch(b)) => {
                        *current = Some(b);
                        *pos = 0;
                    }
                    Ok(Msg::End) => *remaining -= 1,
                    Err(TryRecvError::Empty) => return Ok(Feed::Pending),
                    Err(TryRecvError::Disconnected) => {
                        return Err(RelalgError::InvalidPlan("stream closed before End".into()))
                    }
                }
            },
        }
    }

    /// The current chunk and its cursor. Only valid directly after
    /// [`ready`](Self::ready) returned [`Feed::Ready`].
    fn chunk(&self) -> (&ColumnBatch, usize) {
        match self {
            Operand::Local { cols, pos, .. } | Operand::Filtered { cols, pos, .. } => {
                (cols.as_ref().expect("ready chunk"), *pos)
            }
            Operand::Stream { current, pos, .. } => {
                (current.as_ref().expect("ready chunk").columns(), *pos)
            }
        }
    }

    /// Advances the cursor past `n` consumed rows.
    fn consume(&mut self, n: usize) {
        match self {
            Operand::Local { pos, .. }
            | Operand::Filtered { pos, .. }
            | Operand::Stream { pos, .. } => *pos += n,
        }
    }
}

/// Execution phase of the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Startup gate: fault injection and the configured startup cost.
    Start,
    /// Build-then-probe operators only: drain the (immediate) build side.
    Build,
    /// Feed operand tuples through the operator, flushing output batches.
    Feed,
    /// Drain held state, flush the output backlog, finalize the port.
    Finish,
    /// Completion has been reported; the task is inert.
    Done,
}

/// One operation-process instance as a schedulable [`Task`]: the generic
/// driver over any [`PhysicalOp`].
pub struct OpTask {
    op: Box<dyn PhysicalOp>,
    operands: Vec<Operand>,
    output: OutputPort,
    /// Result rows awaiting emission, column-wise (shared with the
    /// operator, which appends; the port drains).
    out: ColumnBatch,
    /// Emission cursor into `out` (or `resolved`, when a resolver is
    /// attached) for resumable routing.
    out_pos: usize,
    /// Late-materialization resolver: set only on the root join's tasks
    /// of a late plan. When present, `out` holds narrow (ref-carrying)
    /// rows which are resolved into `resolved` before emission, so the
    /// output port only ever sees the original root schema.
    resolver: Option<Arc<crate::late::Resolver>>,
    /// Resolved rows awaiting emission (original root schema).
    resolved: ColumnBatch,
    /// Per-ref-column row-index scratch for the resolver.
    ref_scratch: Vec<Vec<u32>>,
    batch: usize,
    phase: Phase,
    /// Which side the interleaved feed polls first next step (fairness).
    turn: usize,
    /// `finish` has been called on the operator (exactly-once guard).
    drained: bool,
    /// This task declared its output complete (satisfied LIMIT): it keeps
    /// finishing even though the early-stop token it raised is set.
    satisfied: bool,
    stats: InstanceStats,
    op_id: usize,
    instance: usize,
    done_tx: Sender<DoneMsg>,
    startup_deadline: Option<Instant>,
    fail: bool,
    reported: bool,
    /// The query's cancel/early-stop/abort tokens; observed at every step.
    ctrl: Option<Arc<QueryCtrl>>,
    /// Bytes of operator state currently charged against the query's
    /// memory budget (synced to `op.est_bytes()` after every step,
    /// credited back on completion).
    charged: u64,
    /// Bytes charged by an injected allocation spike (credited back on
    /// completion so sibling queries see clean global accounting).
    #[cfg(feature = "faults")]
    spiked: u64,
    /// Armed fault-injection point, if any (test harness).
    #[cfg(feature = "faults")]
    fault: Option<crate::faults::ArmedFault>,
}

impl OpTask {
    /// Builds the task driving `op` over `sources` (one or two operands).
    /// `startup` delays the instance's first progress (the paper's
    /// per-process startup cost); `fail` injects a deterministic fault for
    /// teardown tests.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        op: Box<dyn PhysicalOp>,
        sources: Vec<Source>,
        output: OutputPort,
        batch: usize,
        op_id: usize,
        instance: usize,
        done_tx: Sender<DoneMsg>,
        startup: Option<Duration>,
        fail: bool,
        ctrl: Option<Arc<QueryCtrl>>,
    ) -> OpTask {
        debug_assert!(
            (1..=2).contains(&sources.len()),
            "operators take one or two operands"
        );
        OpTask {
            op,
            operands: sources.into_iter().map(Operand::new).collect(),
            output,
            out: ColumnBatch::shapeless(),
            out_pos: 0,
            resolver: None,
            resolved: ColumnBatch::shapeless(),
            ref_scratch: Vec::new(),
            batch,
            phase: Phase::Start,
            turn: instance, // stagger polling order across instances
            drained: false,
            satisfied: false,
            stats: InstanceStats::default(),
            op_id,
            instance,
            done_tx,
            startup_deadline: startup.map(|d| Instant::now() + d),
            fail,
            reported: false,
            ctrl,
            charged: 0,
            #[cfg(feature = "faults")]
            spiked: 0,
            #[cfg(feature = "faults")]
            fault: None,
        }
    }

    /// Attaches the late-materialization resolver (root join tasks of a
    /// late plan only): every batch is resolved to the original root
    /// schema before it reaches the output port.
    pub(crate) fn set_resolver(&mut self, resolver: Arc<crate::late::Resolver>) {
        self.resolved = ColumnBatch::with_capacity(resolver.layout(), self.batch);
        self.ref_scratch = vec![Vec::new(); resolver.scratch_slots()];
        self.resolver = Some(resolver);
    }

    /// Arms a resolved fault-injection point on this task (test harness;
    /// only available with the `faults` cargo feature).
    #[cfg(feature = "faults")]
    pub fn arm_fault(&mut self, fault: Option<crate::faults::ArmedFault>) {
        self.fault = fault;
    }

    /// Convenience constructor for a hash-join task — the two join
    /// algorithms expressed through the generic driver.
    #[allow(clippy::too_many_arguments)]
    pub fn join(
        algorithm: JoinAlgorithm,
        spec: EquiJoin,
        left: Source,
        right: Source,
        output: OutputPort,
        batch: usize,
        op_id: usize,
        instance: usize,
        done_tx: Sender<DoneMsg>,
        startup: Option<Duration>,
        fail: bool,
        ctrl: Option<Arc<QueryCtrl>>,
    ) -> OpTask {
        OpTask::new(
            join_op(algorithm, spec),
            vec![left, right],
            output,
            batch,
            op_id,
            instance,
            done_tx,
            startup,
            fail,
            ctrl,
        )
    }

    fn report(&mut self, result: Result<InstanceStats>) {
        if !self.reported {
            self.reported = true;
            self.phase = Phase::Done;
            self.release_budget();
            let _ = self.done_tx.send((self.op_id, result));
        }
    }

    /// Returns every byte this instance charged against the query's memory
    /// budget (operator state plus injected spikes). Called exactly once,
    /// from `report`.
    fn release_budget(&mut self) {
        if let Some(ctrl) = &self.ctrl {
            #[allow(unused_mut)]
            let mut total = self.charged;
            #[cfg(feature = "faults")]
            {
                total += self.spiked;
                self.spiked = 0;
            }
            if total > 0 {
                ctrl.budget().credit(total);
            }
        }
        self.charged = 0;
    }

    /// Syncs the budget charge to the operator's current state size and
    /// reports whether the query's budget is now exhausted.
    fn sync_budget(&mut self) -> bool {
        let Some(ctrl) = &self.ctrl else {
            return false;
        };
        let budget = ctrl.budget();
        let held = self.op.est_bytes() as u64;
        match held.cmp(&self.charged) {
            std::cmp::Ordering::Greater => {
                budget.charge(held - self.charged);
            }
            std::cmp::Ordering::Less => budget.credit(self.charged - held),
            std::cmp::Ordering::Equal => {}
        }
        self.charged = held;
        budget.is_exhausted()
    }

    /// Emits rows `out_pos..` of `out`; `Ok(false)` means the output is
    /// backpressured and the task should yield. `tuples_out` counts rows
    /// here — *after* the operator's selection vectors dropped
    /// non-qualifying rows — so the metric reports rows actually produced,
    /// not rows scanned.
    fn flush_out(&mut self) -> Result<bool> {
        if let Some(resolver) = &self.resolver {
            // Late materialization: resolve the narrow backlog into the
            // original schema, then emit the resolved batch. `out` is
            // always fully absorbed here, so between flushes at most one
            // quantum of narrow rows accumulates — memory stays bounded
            // even under backpressure.
            if !self.out.is_empty() {
                resolver.resolve_into(&self.out, &mut self.ref_scratch, &mut self.resolved)?;
                self.out.clear();
            }
            let (emitted, done) = self
                .output
                .try_emit(&mut self.resolved, &mut self.out_pos)?;
            self.stats.tuples_out += emitted;
            return Ok(done);
        }
        let (emitted, done) = self.output.try_emit(&mut self.out, &mut self.out_pos)?;
        self.stats.tuples_out += emitted;
        Ok(done)
    }

    /// The build side index, if the operator has a build phase.
    fn build_side(&self) -> Option<usize> {
        match self.op.input_mode() {
            InputMode::BuildThenProbe { build } if self.operands.len() == 2 => Some(build),
            _ => None,
        }
    }

    fn step_start(&mut self) -> Result<Step> {
        if self.fail {
            return Err(RelalgError::InvalidPlan(format!(
                "injected failure at op {} instance {}",
                self.op_id, self.instance
            )));
        }
        if let Some(deadline) = self.startup_deadline {
            if Instant::now() < deadline {
                return Ok(Step::Blocked);
            }
        }
        self.phase = if self.build_side().is_some() {
            Phase::Build
        } else {
            Phase::Feed
        };
        Ok(Step::Progress)
    }

    /// Build phase: drain the immediate build side into the operator in
    /// chunk-sized bulk inserts. No output is produced, so this never
    /// blocks — it only paces itself by the quantum.
    fn step_build(&mut self) -> Result<Step> {
        let build = self.build_side().expect("build phase implies a build side");
        if self.operands[build].is_stream() {
            return Err(RelalgError::InvalidPlan(format!(
                "{} cannot stream its build operand",
                self.op.kind()
            )));
        }
        let mut budget = QUANTUM;
        while budget > 0 {
            match self.operands[build].ready()? {
                Feed::Ready => {
                    let take;
                    {
                        let (cols, pos) = self.operands[build].chunk();
                        let end = (pos + budget).min(cols.rows());
                        take = end - pos;
                        self.op.build_batch(cols, pos..end)?;
                    }
                    self.operands[build].consume(take);
                    self.stats.tuples_in[build] += take as u64;
                    budget -= take;
                }
                Feed::Exhausted => {
                    self.op.finish_build();
                    self.phase = Phase::Feed;
                    return Ok(Step::Progress);
                }
                Feed::Pending => unreachable!("immediate operands never pend"),
            }
        }
        Ok(Step::Progress)
    }

    /// The common feed loop: absorb a chunk range from whichever operand
    /// has rows ready, and flush full output batches.
    fn step_feed(&mut self) -> Result<Step> {
        if !self.flush_out()? {
            return Ok(Step::Blocked);
        }
        let mut moved = false;
        let mut budget = QUANTUM;
        while budget > 0 {
            // Polling order this iteration: single-input operators and
            // build-then-probe feeds have exactly one live side; the
            // interleaved two-input feed alternates, preferring `turn` so
            // two live streams are drained fairly.
            let sides: [usize; 2] = if self.operands.len() == 1 {
                [0, 0]
            } else {
                match self.op.input_mode() {
                    InputMode::BuildThenProbe { build } => [1 - build, 1 - build],
                    InputMode::Interleaved => [self.turn % 2, (self.turn + 1) % 2],
                }
            };
            self.turn = self.turn.wrapping_add(1);
            let mut chosen = None;
            let mut exhausted = 0usize;
            for &side in if sides[0] == sides[1] {
                &sides[..1]
            } else {
                &sides[..]
            } {
                match self.operands[side].ready()? {
                    Feed::Ready => {
                        chosen = Some(side);
                        break;
                    }
                    Feed::Exhausted => exhausted += 1,
                    Feed::Pending => {}
                }
            }
            let tried = if sides[0] == sides[1] { 1 } else { 2 };
            match chosen {
                Some(side) => {
                    let take;
                    let verdict;
                    {
                        let (cols, pos) = self.operands[side].chunk();
                        let end = (pos + budget).min(cols.rows());
                        take = end - pos;
                        verdict = self.op.absorb_batch(side, cols, pos..end, &mut self.out)?;
                    }
                    self.operands[side].consume(take);
                    self.stats.tuples_in[side] += take as u64;
                    budget -= take;
                    moved = true;
                    if verdict == Absorb::Satisfied {
                        // The output is complete: stop feeding, tell the
                        // rest of the query to wind down, and finish this
                        // instance's port normally.
                        self.satisfied = true;
                        if let Some(ctrl) = &self.ctrl {
                            ctrl.stop_early();
                        }
                        self.phase = Phase::Finish;
                        return Ok(Step::Progress);
                    }
                    if self.out.rows() >= self.batch && !self.flush_out()? {
                        // Output backpressure mid-quantum: we did move
                        // rows, so keep our rotation slot as Progress.
                        return Ok(Step::Progress);
                    }
                }
                None if exhausted == tried => {
                    self.phase = Phase::Finish;
                    return Ok(Step::Progress);
                }
                None => {
                    // At least one live side is pending and none has data.
                    return Ok(if moved { Step::Progress } else { Step::Blocked });
                }
            }
        }
        Ok(Step::Progress)
    }

    fn step_finish(&mut self) -> Result<Step> {
        if !self.drained {
            // Exactly-once drain of held state (aggregation results);
            // flushing below is resumable across backpressure.
            self.op.finish(&mut self.out)?;
            self.drained = true;
        }
        if !self.flush_out()? {
            return Ok(Step::Blocked);
        }
        if !self.output.try_finish()? {
            return Ok(Step::Blocked);
        }
        self.stats.table_bytes = self.op.est_bytes() as u64;
        let stats = self.stats;
        self.report(Ok(stats));
        Ok(Step::Done)
    }

    fn try_step(&mut self) -> Result<Step> {
        #[cfg(feature = "faults")]
        if let Some(fault) = self.fault.as_mut() {
            if fault.stalling() {
                return Ok(Step::Blocked);
            }
            match fault.fire(self.stats.steps) {
                Some(crate::faults::FaultKind::Panic) => panic!(
                    "injected panic at op {} instance {}",
                    self.op_id, self.instance
                ),
                Some(crate::faults::FaultKind::AllocSpike { bytes }) => {
                    if let Some(ctrl) = &self.ctrl {
                        // Raise the abort immediately: the spike may land on
                        // this task's final step, after which no poll of the
                        // budget would run before the query completes.
                        if !ctrl.budget().charge(bytes) {
                            ctrl.abort(ctrl.budget().exhausted_error());
                        }
                        self.spiked += bytes;
                    }
                }
                Some(crate::faults::FaultKind::Stall) => return Ok(Step::Blocked),
                None => {}
            }
        }
        match self.phase {
            Phase::Start => self.step_start(),
            Phase::Build => self.step_build(),
            Phase::Feed => self.step_feed(),
            Phase::Finish => self.step_finish(),
            Phase::Done => Ok(Step::Done),
        }
    }
}

impl Task for OpTask {
    fn step(&mut self) -> Step {
        self.stats.steps += 1;
        if self.phase != Phase::Done {
            if let Some(ctrl) = &self.ctrl {
                // Cancellation preempts whatever phase the instance is in:
                // report once and become inert, releasing endpoints on
                // drop.
                if ctrl.is_canceled() {
                    self.report(Err(RelalgError::Canceled));
                    return Step::Done;
                }
                // Early stop (a satisfied LIMIT downstream) winds every
                // *other* task down successfully; the satisfying task
                // keeps finishing its port so the client sees End.
                if ctrl.early_stopped() && !self.satisfied {
                    let stats = self.stats;
                    self.report(Ok(stats));
                    return Step::Done;
                }
                // A guardrail abort (deadline, budget, contained panic,
                // stall) is a cancel with a typed reason: every task of
                // the query reports that reason and winds down.
                if let Some(reason) = ctrl.abort_error() {
                    self.report(Err(reason));
                    return Step::Done;
                }
                // Deadline enforcement at quantum granularity: the first
                // instance past the deadline raises the abort for the
                // whole query.
                if ctrl.deadline_exceeded() {
                    ctrl.abort(RelalgError::DeadlineExceeded);
                    self.report(Err(RelalgError::DeadlineExceeded));
                    return Step::Done;
                }
            }
        }
        // Contain panics at the task boundary: a panicking operator must
        // unwind its own query, not the worker thread or the process.
        // `AssertUnwindSafe` is sound here because on panic the task is
        // immediately made inert (reported + `Phase::Done`), so its
        // possibly broken operator state is never touched again.
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.try_step()));
        let stepped = match stepped {
            Ok(result) => result,
            Err(payload) => {
                let reason = RelalgError::Internal(panic_message(payload.as_ref()));
                if let Some(ctrl) = &self.ctrl {
                    ctrl.note_panic();
                    ctrl.abort(reason.clone());
                }
                self.report(Err(reason));
                return Step::Done;
            }
        };
        match stepped {
            Ok(step) => {
                if step == Step::Blocked {
                    self.stats.blocked += 1;
                } else if step == Step::Progress {
                    if let Some(ctrl) = &self.ctrl {
                        ctrl.note_progress();
                    }
                }
                // Memory guardrail: keep the budget synced to the
                // operator's held state (hash tables, aggregation groups)
                // and abort this query — engine intact — once its cap is
                // crossed.
                if self.phase != Phase::Done && self.sync_budget() {
                    if let Some(ctrl) = &self.ctrl {
                        let reason = ctrl.budget().exhausted_error();
                        ctrl.abort(reason.clone());
                        self.report(Err(reason));
                        return Step::Done;
                    }
                }
                step
            }
            Err(e) => {
                // After an early stop, teardown races (consumers dropping
                // receivers mid-send) are expected, not failures.
                let early = self
                    .ctrl
                    .as_ref()
                    .map(|c| c.early_stopped() && !c.is_canceled())
                    .unwrap_or(false);
                if early {
                    let stats = self.stats;
                    self.report(Ok(stats));
                } else {
                    // Reporting drops nothing yet; the scheduler drops the
                    // task right after, releasing its channel endpoints so
                    // upstream and downstream instances unwind too.
                    self.report(Err(e));
                }
                Step::Done
            }
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

impl Drop for OpTask {
    fn drop(&mut self) {
        // Dropped before completion (pool shutdown or a panic inside
        // step): tell the coordinator so it never hangs on a vanished
        // instance.
        if !self.reported {
            let op = self.op_id;
            let instance = self.instance;
            self.report(Err(RelalgError::InvalidPlan(format!(
                "op {op} instance {instance} dropped before completing"
            ))));
        }
    }
}

/// Drives a task to completion on the current thread (the dedicated-thread
/// path used by unit tests and benches). Yields, then naps, while blocked —
/// the counterpart of the worker pool's backoff.
pub fn drive_blocking(mut task: OpTask) -> Step {
    let mut blocked = 0u32;
    loop {
        match task.step() {
            Step::Done => return Step::Done,
            Step::Progress => blocked = 0,
            Step::Blocked => {
                blocked += 1;
                if blocked < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}
